//! A rational θ=1 collusion tries the fork attack against pRFT — and pays
//! for it: the Reveal phase exposes the double signatures, everyone burns
//! their deposits, and no fork materializes. The attackers' utility is
//! strictly negative; Lemma 4 in action.
//!
//! ```sh
//! cargo run --example rational_attack
//! ```

use prft::adversary::{blackboard, EquivocatingLeader, ForkColluder};
use prft::core::{analysis, Harness, NetworkChoice};
use prft::sim::SimTime;
use prft::types::{NodeId, Round};
use std::collections::HashSet;

fn main() {
    // n = 9: t0 = 2, quorum 7. Collusion: byzantine equivocating leader P0
    // plus rational colluders P1–P3 (k + t = 4 < n/2 ✓, t = 1 < n/4 ✓).
    let n = 9;
    let board = blackboard();
    let b_group: HashSet<NodeId> = [NodeId(7), NodeId(8)].into_iter().collect();

    let mut harness = Harness::new(n, 99)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3)
        .with_behavior(
            NodeId(0),
            Box::new(
                EquivocatingLeader::new(board.clone(), b_group.clone(), n).only_rounds([Round(0)]),
            ),
        );
    for i in 1..=3 {
        harness = harness.with_behavior(
            NodeId(i),
            Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
        );
    }
    let mut sim = harness.build();
    sim.run_until(SimTime(1_000_000));

    let report = analysis::analyze(&sim);
    println!("== fork attack against pRFT (round 0) ==");
    println!("collusion: P0 (byzantine leader) + P1,P2,P3 (rational, π_fork)");
    println!();
    println!("fork on finalized blocks: {}", !report.agreement);
    println!("exposes applied by honest players: {}", report.exposes);
    println!("burned deposits: {:?}", report.burned);
    println!(
        "blocks still finalized (liveness intact): {}",
        report.min_final_height
    );

    // The deviators' ledger view from an honest replica.
    let honest = sim.node(NodeId(4));
    println!("\nP4's collateral ledger after the attack:");
    for i in 0..n {
        let id = NodeId(i);
        println!(
            "  {id}: deposit {} {}",
            honest.collateral().balance(id),
            if honest.collateral().is_burned(id) {
                "(BURNED — named in a verified Proof-of-Fraud)"
            } else {
                ""
            }
        );
    }

    assert!(report.agreement, "the fork must fail");
    assert!(
        report.burned.len() > 2,
        "more than t0 deviators burned — the Expose fired"
    );
    for h in 4..9 {
        assert!(
            !report.burned.contains(&NodeId(h)),
            "no honest player is ever framed"
        );
    }
    println!("\nDeviation was dominated: the attack produced no fork, cost the");
    println!("collusion its deposits, and the chain kept growing — exactly the");
    println!("DSIC incentive structure of Lemma 4.");
}
