//! Blockchain state-machine replication under partial synchrony: a longer
//! run with continuous client traffic, a pre-GST chaos window, a crashed
//! replica, and the common-prefix / c-strict-ordering properties checked
//! at the end — the workload the paper's introduction motivates.
//!
//! ```sh
//! cargo run --example blockchain_smr
//! ```

use prft::core::{analysis, Harness, NetworkChoice, Replica};
use prft::sim::{SimTime, Simulation};
use prft::types::{Chain, NodeId, Transaction};

/// Injects a batch of client transactions into every live replica's
/// mempool (the deterministic-simulation equivalent of client gossip).
fn submit_wave(sim: &mut Simulation<Replica>, ids: std::ops::Range<u64>) {
    for id in ids {
        let tx = Transaction::new(id, NodeId((id % 5) as usize), vec![0u8; 48]);
        for i in 0..sim.n() {
            sim.node_mut(NodeId(i)).mempool_mut().submit(tx.clone());
        }
    }
}

fn main() {
    let n = 9; // t0 = 2, quorum 7
    let gst = SimTime(3_000);
    let mut sim = Harness::new(n, 777)
        .network(NetworkChoice::PartiallySynchronous {
            gst,
            delta: SimTime(10),
        })
        .max_rounds(60)
        .build();

    // One replica is down for the whole run (within the t0 budget).
    sim.crash(NodeId(8));

    // Interleave client waves with protocol execution: run → inject → run.
    submit_wave(&mut sim, 0..40);
    sim.run_until(SimTime(2_000));
    submit_wave(&mut sim, 40..80);
    sim.run_until(SimTime(4_000));
    submit_wave(&mut sim, 80..120);
    sim.run_until(SimTime(5_000_000));

    let report = analysis::analyze(&sim);
    println!("== run summary (n = {n}, GST = {gst}, P8 crashed) ==");
    println!("blocks finalized everywhere: {}", report.min_final_height);
    println!("view changes (pre-GST chaos): {}", report.view_changes);
    println!("agreement: {}", report.agreement);
    println!("1-strict ordering: {}", report.strict_ordering);

    // Common-prefix across every pair of live honest replicas.
    let chains: Vec<&Chain> = report
        .honest
        .iter()
        .map(|&id| sim.node(id).chain())
        .collect();
    let mut min_common = usize::MAX;
    for a in &chains {
        for b in &chains {
            min_common = min_common.min(a.common_prefix_len(b));
        }
    }
    println!(
        "shortest common prefix among honest chains: {} blocks (min final height {})",
        min_common - 1, // exclude genesis
        report.min_final_height,
    );

    // Throughput: which transactions made it?
    let included = (0..120)
        .filter(|&id| analysis::tx_finalized_everywhere(&sim, prft::types::TxId(id)))
        .count();
    println!("client transactions finalized everywhere: {included}/120");

    let latencies: Vec<u64> = report
        .honest
        .first()
        .map(|&id| {
            sim.node(id)
                .stats()
                .finalize_times
                .windows(2)
                .map(|w| w[1].1 .0 - w[0].1 .0)
                .collect()
        })
        .unwrap_or_default();
    if !latencies.is_empty() {
        let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
        println!("mean inter-block time after GST: {mean:.0} ticks");
    }

    assert!(report.agreement && report.strict_ordering);
    assert!(
        report.min_final_height >= 20,
        "sustained throughput post-GST"
    );
    assert!(
        included >= 100,
        "nearly all client traffic confirms ({included}/120)"
    );
}
