//! Quickstart: run a 7-player pRFT committee over a synchronous network,
//! submit a transaction, and watch it finalize.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use prft::core::{analysis, Harness, NetworkChoice};
use prft::sim::SimTime;
use prft::types::{NodeId, Transaction, TxId};

fn main() {
    // A committee of 7 → t0 = ⌈7/4⌉ − 1 = 1, quorum n − t0 = 6.
    let n = 7;

    // Submit one transaction to every player's mempool and run 3 rounds.
    let mut sim = Harness::new(n, 2024)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .submit(
            None,
            Transaction::new(1, NodeId(3), b"hello, pRFT".to_vec()),
        )
        .max_rounds(3)
        .build();
    sim.run_until(SimTime(1_000_000));

    // Inspect one replica's ledger.
    let chain = sim.node(NodeId(0)).chain();
    println!("P0's chain after 3 rounds:");
    for (height, entry) in chain.iter().enumerate() {
        println!(
            "  height {height}: {:?} [{:?}] proposed by {} with {} tx(s)",
            entry.block.id(),
            entry.status,
            entry.block.proposer,
            entry.block.txs.len(),
        );
    }

    // The whole committee agrees, and the transaction is final everywhere.
    let report = analysis::analyze(&sim);
    println!("\nagreement among honest players: {}", report.agreement);
    println!(
        "blocks finalized by everyone:   {}",
        report.min_final_height
    );
    println!(
        "tx#1 finalized at every player: {}",
        analysis::tx_finalized_everywhere(&sim, TxId(1))
    );
    println!(
        "messages exchanged: {} ({} bytes)",
        sim.meter().total_messages(),
        sim.meter().total_bytes()
    );

    assert!(report.agreement);
    assert!(analysis::tx_finalized_everywhere(&sim, TxId(1)));
}
