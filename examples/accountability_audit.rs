//! Accountability audit: construct a Proof-of-Fraud from raw signed
//! ballots, verify it as a third party would (Definition 6's `V(π)`), and
//! demonstrate that framing an honest player is impossible.
//!
//! ```sh
//! cargo run --example accountability_audit
//! ```

use prft::core::{construct_proof, signed_ballot, verify_expose, Phase};
use prft::crypto::KeyRegistry;
use prft::types::{Digest, Round};

fn main() {
    // Trusted setup for a committee of 9 (t0 = 2).
    let n = 9;
    let t0 = 2;
    let (registry, keys) = KeyRegistry::trusted_setup(n, 1234);

    let block_a = Digest::of_bytes(b"block A");
    let block_b = Digest::of_bytes(b"block B");

    // The reveal phase hands every player the committee's commit ballots.
    // Here players 0, 1, 2 committed to *both* blocks in round 5 (π_ds);
    // everyone else committed once.
    println!("== assembling the ballot matrix (round 5, commit phase) ==");
    let mut ballots = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        ballots.push(signed_ballot(key, Round(5), Phase::Commit, block_a));
        if i < 3 {
            ballots.push(signed_ballot(key, Round(5), Phase::Commit, block_b));
            println!("  P{i} double-signed (A and B)");
        }
    }
    println!("  P3–P8 committed to A only\n");

    // ConstructProof (paper Figure 4).
    let proof = construct_proof(&ballots);
    println!("ConstructProof found {} conflicting pairs:", proof.len());
    for ev in &proof {
        println!(
            "  accused {}: {:?} vs {:?} in the same (round, phase) slot",
            ev.accused(),
            ev.first.payload.value,
            ev.second.payload.value,
        );
    }

    // Third-party verification: the registry is public, so anyone can run
    // V(π) and (in a deployment) submit the burn transaction.
    match verify_expose(&proof, &registry, t0) {
        Some(guilty) => {
            println!(
                "\nV(π) verdict: GUILTY — {guilty:?} (|D| = {} > t0 = {t0})",
                guilty.len()
            );
            println!("→ the deposit-burn transaction is justified for each of them.");
        }
        None => println!("\nV(π) verdict: insufficient evidence"),
    }

    // Framing attempt: pair an honest player's real ballot with a tampered
    // copy claiming a different value.
    println!("\n== framing attempt against honest P5 ==");
    let real = signed_ballot(&keys[5], Round(5), Phase::Commit, block_a);
    let mut forged = real.clone();
    forged.payload.value = block_b; // signature no longer matches
    let frame = construct_proof(&[real, forged]);
    match verify_expose(&frame, &registry, 0) {
        Some(_) => println!("framed! (this must never print)"),
        None => println!(
            "V(π) rejects the pair: the tampered ballot's signature does not\n\
             verify, so an honest player can only be convicted by two ballots\n\
             they actually signed — which honest players never produce."
        ),
    }

    // Sub-threshold evidence does not justify an expose.
    let small = construct_proof(&ballots[..4]); // only P0's conflict visible
    assert!(verify_expose(&small, &registry, t0).is_none());
    println!(
        "\nWith only {} conviction(s) ≤ t0 = {t0}, no Expose is justified —\n\
         the paper tolerates up to t0 double-signers without aborting a round.",
        small.len()
    );
}
