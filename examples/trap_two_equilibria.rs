//! The TRAP dilemma (Theorem 3): the baiting game has two Nash equilibria,
//! and the insecure one is the focal point. This example builds the full
//! normal-form game for a rational collusion and prints both equilibria
//! with their utilities.
//!
//! ```sh
//! cargo run --example trap_two_equilibria
//! ```

use prft::baselines::trap::{TrapGame, TrapStrategy};
use prft::game::{analytic, EmpiricalGame, UtilityParams};

fn main() {
    // Theorem 3's regime: n = 20, t = 6 byzantine, k = 3 rational —
    // inside TRAP's advertised tolerance (3t < n, 2(k+t) < n) and with
    // k > 2 + t0 − t, so a lone baiter cannot stop the fork.
    let n: usize = 20;
    let (t, k) = (6usize, 3usize);
    let t0 = n.div_ceil(3) - 1;
    let params = UtilityParams {
        gain_g: 8.0,
        reward_r: 2.0,
        penalty_l: 10.0,
        ..UtilityParams::default()
    };
    let game = TrapGame::new(n, t, k, params);

    println!("== the TRAP baiting game ==");
    println!(
        "n = {n}, t = {t}, k = {k}, t0 = {t0}; G = {}, R = {}, L = {}",
        params.gain_g, params.reward_r, params.penalty_l
    );
    println!(
        "TRAP tolerates this configuration: {}",
        analytic::trap_tolerates(n, k, t)
    );
    println!(
        "fork-NE condition k > 2 + t0 − t:  {}",
        analytic::trap_fork_is_nash(k, t, t0)
    );
    println!(
        "baiters needed to avert the fork:  > {:.0}\n",
        game.min_baiters()
    );

    // Enumerate the full 2^k game.
    let strategies = [TrapStrategy::Fork, TrapStrategy::Bait];
    let labels = ["π_fork", "π_bait"];
    let eg = EmpiricalGame::explore(vec![2; k], |profile| {
        let chosen: Vec<TrapStrategy> = profile.iter().map(|&i| strategies[i]).collect();
        game.play(&chosen).utilities
    });

    println!("full payoff table ({} profiles):", 1usize << k);
    for f1 in 0..2 {
        for f2 in 0..2 {
            for f3 in 0..2 {
                let profile = vec![f1, f2, f3];
                let us = eg.utilities(&profile);
                let ne = if eg.is_nash(&profile, 1e-9) {
                    "  ← NASH EQUILIBRIUM"
                } else {
                    ""
                };
                println!(
                    "  ({:6}, {:6}, {:6}) → ({:5.2}, {:5.2}, {:5.2}){ne}",
                    labels[f1], labels[f2], labels[f3], us[0], us[1], us[2]
                );
            }
        }
    }

    let ne = eg.nash_equilibria(1e-9);
    let players: Vec<usize> = (0..k).collect();
    let focal = eg.focal_among(&ne, &players).unwrap();
    println!("\nNash equilibria: {}", ne.len());
    println!(
        "focal equilibrium (highest collusion utility): ({}, {}, {})",
        labels[focal[0]], labels[focal[1]], labels[focal[2]]
    );
    println!(
        "all-fork Pareto-dominates all-bait for the rational players: {}",
        eg.pareto_dominates_for(&vec![0; k], &vec![1; k], &players)
    );

    assert!(ne.contains(&vec![0; k]), "the insecure equilibrium exists");
    assert!(
        ne.contains(&vec![1; k]),
        "TRAP's secure equilibrium exists too"
    );
    assert_eq!(focal, &vec![0; k], "…but the insecure one is focal");
    println!(
        "\nThis is Theorem 3: TRAP's security argument selects the all-bait\n\
         equilibrium, but rational players prefer (and will coordinate on)\n\
         the all-fork one. pRFT removes the second equilibrium entirely by\n\
         making honest play dominant (see `cargo run --example rational_attack`)."
    );
}
