//! Workspace-level integration tests: scenarios that span the protocol,
//! the adversary strategies, the game layer, and the baselines together.

use prft::adversary::{blackboard, Abstain, EquivocatingLeader, ForkColluder, PartialCensor};
use prft::core::analysis::{analyze, tx_finalized_everywhere, tx_included_anywhere};
use prft::core::{Config, Harness, NetworkChoice};
use prft::game::{analytic, SystemState, Theta, UtilityParams};
use prft::metrics::{classify, StateObservation};
use prft::sim::SimTime;
use prft::types::{NodeId, Round, Transaction, TxId};
use std::collections::HashSet;

const HORIZON: SimTime = SimTime(2_000_000);

/// The full DSIC story in one test: honest run earns 0; the fork attack
/// earns −L; abstention earns −α per stalled round (all at θ=1).
#[test]
fn rational_incentives_end_to_end() {
    let n = 9;
    let params = UtilityParams::default();

    // Honest baseline.
    let mut honest_sim = Harness::new(n, 1)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3)
        .build();
    honest_sim.run_until(HORIZON);
    let honest_state = {
        let chains = analyze(&honest_sim)
            .honest
            .iter()
            .map(|&id| honest_sim.node(id).chain())
            .collect();
        classify(&StateObservation {
            chains,
            watched: vec![],
            baseline_height: 0,
        })
    };
    assert_eq!(honest_state, SystemState::HonestExecution);

    // Fork attack → burned.
    let board = blackboard();
    let b_group: HashSet<NodeId> = [NodeId(7), NodeId(8)].into_iter().collect();
    let mut h = Harness::new(n, 2)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3)
        .with_behavior(
            NodeId(0),
            Box::new(
                EquivocatingLeader::new(board.clone(), b_group.clone(), n).only_rounds([Round(0)]),
            ),
        );
    for i in 1..=3 {
        h = h.with_behavior(
            NodeId(i),
            Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
        );
    }
    let mut fork_sim = h.build();
    fork_sim.run_until(HORIZON);
    let fork_report = analyze(&fork_sim);
    assert!(fork_report.agreement, "no fork against pRFT");
    assert!(fork_report.burned.len() > 2, "deviators burned");

    // θ=1 utility of a colluder: −L (plus any σ penalty) < 0 = honest.
    let burned = fork_report.burned.contains(&NodeId(1));
    assert!(burned);
    let colluder_utility = -params.penalty_l; // state σ_0 ⇒ f = 0
    assert!(colluder_utility < 0.0);
}

/// Censorship-resistance holds when the committee is honest, and breaks
/// exactly when a π_pc coalition appears — Definition 2 measured both ways.
#[test]
fn censorship_resistance_boundary() {
    let n = 4;
    let watched = TxId(50);

    // Honest: the transaction confirms everywhere.
    let mut sim = Harness::new(n, 3)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .submit(None, Transaction::new(50, NodeId(1), b"watch me".to_vec()))
        .max_rounds(3)
        .build();
    sim.run_until(HORIZON);
    assert!(tx_finalized_everywhere(&sim, watched));

    // π_pc coalition: it never confirms, anywhere, ever.
    let collusion: HashSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
    let censor: HashSet<TxId> = [watched].into_iter().collect();
    let mut h = Harness::new(n, 4)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .submit(None, Transaction::new(50, NodeId(1), b"watch me".to_vec()))
        .submit(None, Transaction::new(51, NodeId(2), b"decoy".to_vec()))
        .max_rounds(8);
    for &m in &collusion {
        h = h.with_behavior(
            m,
            Box::new(PartialCensor::new(n, collusion.clone(), censor.clone())),
        );
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);
    assert!(!tx_included_anywhere(&sim, watched), "censored");
    assert!(
        tx_included_anywhere(&sim, TxId(51)),
        "liveness for the rest"
    );
    assert!(analyze(&sim).burned.is_empty(), "unpunishable");
}

/// pRFT's bounds are exactly the paper's Table 1 cell: inside → live+safe,
/// outside (coalition ≥ n/2 abstaining) → σ_NP but still safe.
#[test]
fn prft_threat_model_boundary() {
    let n = 9;
    assert!(analytic::prft_tolerates(n, 2, 2));
    assert!(!analytic::prft_tolerates(n, 4, 1));

    // Inside: rational players at equilibrium (π_0) + t byzantine crashes.
    let mut sim = Harness::new(n, 5)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(4)
        .build();
    sim.crash(NodeId(7));
    sim.crash(NodeId(8));
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement && r.min_final_height >= 3);

    // Outside: k + t ≥ n/2 abstaining coalition.
    let mut h = Harness::new(n, 6)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(4);
    for i in 4..9 {
        h = h.with_behavior(NodeId(i), Box::new(Abstain));
    }
    let mut sim = h.build();
    sim.run_until(SimTime(100_000));
    let r = analyze(&sim);
    assert!(r.agreement, "safety unconditional");
    assert_eq!(r.min_final_height, 0, "liveness gone");
}

/// Determinism across the whole stack: a partially synchronous run with a
/// partition, a crash, and an adversary replays bit-identically.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let board = blackboard();
        let b_group: HashSet<NodeId> = [NodeId(7), NodeId(8)].into_iter().collect();
        let groups = vec![
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(5), NodeId(6), NodeId(7), NodeId(8)],
        ];
        let mut sim = Harness::new(9, 1234)
            .partitioned_until_gst(SimTime(1_500), SimTime(10), groups)
            .with_behavior(
                NodeId(0),
                Box::new(
                    EquivocatingLeader::new(board.clone(), b_group.clone(), 9)
                        .only_rounds([Round(0)]),
                ),
            )
            .with_behavior(NodeId(4), Box::new(ForkColluder::new(board, b_group, 9)))
            .max_rounds(4)
            .build();
        sim.crash(NodeId(6));
        sim.run_until(HORIZON);
        let r = analyze(&sim);
        (
            r.min_final_height,
            r.max_final_height,
            r.view_changes,
            r.exposes,
            r.burned.clone(),
            sim.meter().total_messages(),
            sim.meter().total_bytes(),
        )
    };
    assert_eq!(run(), run());
}

/// The utility model and the protocol agree about θ: the same abstention
/// run is a *gain* for θ=3 and a *loss* for θ=1 (Table 2's sign flips).
#[test]
fn theta_changes_the_sign_of_the_same_attack() {
    let n = 8;
    let mut h = Harness::new(n, 7)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3);
    for i in 6..8 {
        h = h.with_behavior(NodeId(i), Box::new(Abstain));
    }
    let mut sim = h.build();
    sim.run_until(SimTime(100_000));

    let chains = analyze(&sim)
        .honest
        .iter()
        .map(|&id| sim.node(id).chain())
        .collect();
    let state = classify(&StateObservation {
        chains,
        watched: vec![],
        baseline_height: 0,
    });
    assert_eq!(state, SystemState::NoProgress);

    let table = prft::game::PayoffTable::new(1.0);
    assert!(table.f(state, Theta::LivenessAttacking) > 0.0);
    assert!(table.f(state, Theta::ForkSeeking) < 0.0);
    assert!(table.f(state, Theta::Honest) < 0.0);
}

/// Claim 1 wiring: the configurable τ rejects unsafe windows analytically
/// and the protocol respects the configured threshold.
#[test]
fn tau_override_is_respected() {
    let n = 10;
    let cfg = Config::for_committee(n).with_tau(9); // above n − t0 = 8
    assert!(!cfg.tau_in_safe_window());
    // With τ = 9 even two silent players (≤ t0) stall the protocol.
    let mut h = Harness::new(n, 8)
        .config(cfg.with_max_rounds(3))
        .network(NetworkChoice::Synchronous { delta: SimTime(10) });
    for i in 8..10 {
        h = h.with_behavior(NodeId(i), Box::new(Abstain));
    }
    let mut sim = h.build();
    sim.run_until(SimTime(60_000));
    assert_eq!(analyze(&sim).min_final_height, 0);
}
