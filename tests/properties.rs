//! Property-based tests (proptest) over the core data structures and
//! invariants: chains, PoF soundness/completeness, signatures, quorum
//! arithmetic, the mempool, and simulator determinism.

use prft::core::{construct_proof, signed_ballot, verify_expose, Config, Phase};
use prft::crypto::{KeyRegistry, Sha256};
use prft::game::analytic;
use prft::types::{Block, Chain, Digest, Height, Mempool, NodeId, Round, Transaction};
use proptest::prelude::*;

// ---------------------------------------------------------------- chains

/// Builds a chain of `len` blocks deterministically from a seed.
fn chain_of(len: usize, seed: u8) -> Chain {
    let mut c = Chain::new(Block::genesis());
    for r in 0..len {
        let tx = Transaction::new(r as u64, NodeId(0), vec![seed]);
        let b = Block::new(Round(r as u64 + 1), c.tip(), NodeId(0), vec![tx]);
        c.append_tentative(b).unwrap();
    }
    c
}

proptest! {
    /// `C^{⌊c}` never grows, never drops genesis, and is idempotent at 0.
    #[test]
    fn drop_suffix_is_monotone(len in 0usize..40, c in 0usize..50) {
        let chain = chain_of(len, 1);
        let dropped = chain.drop_suffix(c);
        prop_assert!(dropped.len() <= chain.len());
        prop_assert!(!dropped.is_empty());
        prop_assert_eq!(chain.drop_suffix(0).len(), chain.len());
        prop_assert!(dropped.is_prefix_of(&chain));
    }

    /// A prefix plus its extension always satisfies c-strict ordering, at
    /// every window size.
    #[test]
    fn shared_history_always_orders(len in 1usize..30, cut in 0usize..30, c in 0usize..5) {
        let long = chain_of(len, 2);
        let short = long.drop_suffix(cut.min(len));
        prop_assert!(Chain::c_strict_ordering(&short, &long, c));
    }

    /// Chains diverging only in their last block order at c ≥ 1 but not at
    /// c = 0; and the fork detector finds exactly the divergence height.
    #[test]
    fn divergence_is_windowed(common in 1usize..20) {
        let base = chain_of(common, 3);
        let mut a = base.clone();
        let mut b = base.clone();
        let tx_a = Transaction::new(900, NodeId(1), vec![1]);
        let tx_b = Transaction::new(901, NodeId(2), vec![2]);
        a.append_tentative(Block::new(Round(99), a.tip(), NodeId(1), vec![tx_a])).unwrap();
        b.append_tentative(Block::new(Round(99), b.tip(), NodeId(2), vec![tx_b])).unwrap();
        prop_assert!(!Chain::c_strict_ordering(&a, &b, 0));
        prop_assert!(Chain::c_strict_ordering(&a, &b, 1));
        prop_assert_eq!(Chain::find_fork(&a, &b, false), Some(Height(common as u64 + 1)));
        // Tentative divergence is not a final fork.
        prop_assert_eq!(Chain::find_fork(&a, &b, true), None);
    }

    /// finalize → rollback keeps exactly the finalized prefix.
    #[test]
    fn rollback_keeps_final_prefix(len in 1usize..30, fin in 0usize..30) {
        let mut c = chain_of(len, 4);
        let fin = fin.min(len);
        c.finalize_upto(Height(fin as u64)).unwrap();
        let rolled = c.rollback_tentative();
        prop_assert_eq!(rolled.len(), len - fin);
        prop_assert_eq!(c.height(), fin as u64);
        prop_assert_eq!(c.final_height(), fin as u64);
    }
}

// ------------------------------------------------------------ PoF / crypto

proptest! {
    /// Completeness: every double-signer (and nobody else) is convicted,
    /// for arbitrary cheat patterns.
    #[test]
    fn pof_complete_and_sound(n in 2usize..12, cheat_mask in 0u16..4096) {
        let (registry, keys) = KeyRegistry::trusted_setup(n, 9);
        let va = Digest::of_bytes(b"a");
        let vb = Digest::of_bytes(b"b");
        let mut ballots = Vec::new();
        let mut cheaters = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            ballots.push(signed_ballot(key, Round(1), Phase::Commit, va));
            if cheat_mask & (1 << i) != 0 {
                ballots.push(signed_ballot(key, Round(1), Phase::Commit, vb));
                cheaters.push(NodeId(i));
            }
        }
        let proof = construct_proof(&ballots);
        let convicted: Vec<NodeId> = proof.iter().map(|e| e.accused()).collect();
        prop_assert_eq!(&convicted, &cheaters);
        // The verifier agrees and applies the > t0 bar exactly.
        for t0 in 0..n {
            let verdict = verify_expose(&proof, &registry, t0);
            prop_assert_eq!(verdict.is_some(), cheaters.len() > t0);
        }
    }

    /// Signatures from one setup never verify under another, and tampering
    /// any byte of the payload breaks verification.
    #[test]
    fn signature_isolation(seed_a in 0u64..1000, seed_b in 1000u64..2000, v in any::<[u8; 8]>()) {
        let (reg_a, keys_a) = KeyRegistry::trusted_setup(3, seed_a);
        let (_, keys_b) = KeyRegistry::trusted_setup(3, seed_b);
        let value = Digest::of_bytes(&v);
        let fine = signed_ballot(&keys_a[0], Round(1), Phase::Vote, value);
        prop_assert!(fine.verify(&reg_a));
        let foreign = signed_ballot(&keys_b[0], Round(1), Phase::Vote, value);
        prop_assert!(!foreign.verify(&reg_a));
        let mut tampered = fine.clone();
        tampered.payload.value = Digest::of_bytes(b"other");
        prop_assert!(!tampered.verify(&reg_a));
    }

    /// SHA-256 streaming equals one-shot for arbitrary data and splits.
    #[test]
    fn sha256_streaming(data in proptest::collection::vec(any::<u8>(), 0..512), cut in 0usize..512) {
        let cut = cut.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }
}

// ------------------------------------------------------------ quorum math

proptest! {
    /// For every committee size: pRFT's quorum intersects itself in more
    /// than t0 players, the τ window is nonempty, and a double quorum is
    /// infeasible at the threat model's boundary.
    #[test]
    fn quorum_arithmetic_holds(n in 2usize..300) {
        let cfg = Config::for_committee(n);
        let q = cfg.quorum();
        prop_assert!(2 * q as i64 - n as i64 > cfg.t0 as i64);
        let (lo, hi) = analytic::tau_window(n, cfg.t0);
        prop_assert!(lo <= hi, "window nonempty: [{}, {}]", lo, hi);
        prop_assert!(analytic::tau_is_safe(n, cfg.t0, q));
        if n >= 5 {
            let kt_max = n.div_ceil(2) - 1;
            prop_assert!(!analytic::double_quorum_feasible(n, cfg.t0, kt_max, 0));
        }
    }

    /// Leader rotation is a bijection over each window of n rounds.
    #[test]
    fn leader_rotation_is_fair(n in 1usize..50, offset in 0u64..1000) {
        let leaders: std::collections::HashSet<NodeId> =
            (0..n as u64).map(|i| Round(offset + i).leader(n)).collect();
        prop_assert_eq!(leaders.len(), n);
    }
}

// ------------------------------------------------------------- mempool

proptest! {
    /// The mempool never duplicates, never resurrects, and take(batch)
    /// preserves FIFO order.
    #[test]
    fn mempool_invariants(ops in proptest::collection::vec((0u64..50, any::<bool>()), 0..100)) {
        let mut mp = Mempool::new();
        let mut reference: Vec<u64> = Vec::new();
        let mut ever: std::collections::HashSet<u64> = Default::default();
        for (id, take) in ops {
            if take {
                let batch = mp.take(2);
                for tx in &batch {
                    prop_assert_eq!(tx.id.0, reference.remove(0));
                }
            } else {
                let added = mp.submit(Transaction::new(id, NodeId(0), vec![]));
                prop_assert_eq!(added, !ever.contains(&id));
                if added {
                    reference.push(id);
                    ever.insert(id);
                }
            }
            prop_assert_eq!(mp.len(), reference.len());
        }
    }
}

// ------------------------------------------------ simulator determinism

proptest! {
    // Whole-protocol runs are expensive; a handful of random cases is
    // plenty for a determinism check.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed and committee size replays identically (two fresh sims).
    #[test]
    fn simulation_is_deterministic(seed in 0u64..500, n in 4usize..10) {
        use prft::core::{Harness, NetworkChoice};
        use prft::sim::SimTime;
        let run = || {
            let mut sim = Harness::new(n, seed)
                .network(NetworkChoice::PartiallySynchronous {
                    gst: SimTime(300),
                    delta: SimTime(10),
                })
                .max_rounds(2)
                .build();
            sim.run_until(SimTime(1_000_000));
            (
                sim.meter().total_messages(),
                sim.meter().total_bytes(),
                sim.node(NodeId(0)).chain().tip(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
