//! Cross-protocol integration tests: pRFT and the baselines agree on what
//! "consensus" means, and the mixed-θ analysis of the paper's model holds
//! end to end.

use prft::adversary::{Abstain, PartialCensor};
use prft::baselines::{hotstuff, pbft};
use prft::core::analysis::analyze;
use prft::core::{Harness, NetworkChoice};
use prft::game::Theta;
use prft::sim::{SimTime, Simulation};
use prft::types::{Digest, NodeId, Transaction, TxId};
use std::collections::HashSet;

const HORIZON: SimTime = SimTime(3_000_000);

/// Under identical network conditions, pRFT, pBFT, and HotStuff all decide
/// the same number of slots with internal agreement — a sanity bar for the
/// complexity comparison of Table 3 (same work, different cost).
#[test]
fn all_protocols_decide_under_identical_conditions() {
    let n = 8;
    let rounds = 3u64;

    let mut prft_sim = Harness::new(n, 7)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(rounds)
        .build();
    prft_sim.run_until(HORIZON);
    let prft_report = analyze(&prft_sim);
    assert!(prft_report.agreement);
    assert_eq!(prft_report.min_final_height, rounds);

    let cfg = pbft::PbftConfig::new(n, rounds);
    let (replicas, _) = pbft::committee(&cfg, 1, &vec![pbft::PbftMode::Honest; n]);
    let mut pbft_sim = Simulation::new(
        replicas,
        Box::new(prft::net::SynchronousNet::new(SimTime(10))),
        7,
    );
    pbft_sim.run_until(HORIZON);
    let logs: Vec<Vec<Digest>> = (0..n).map(|i| pbft_sim.node(NodeId(i)).log()).collect();
    assert!(logs.iter().all(|l| l.len() == rounds as usize));
    assert!(logs.iter().all(|l| *l == logs[0]));

    let hs_cfg = hotstuff::HsConfig::new(n, rounds);
    let mut hs_sim = Simulation::new(
        hotstuff::committee(&hs_cfg, 11),
        Box::new(prft::net::SynchronousNet::new(SimTime(10))),
        7,
    );
    hs_sim.run_until(HORIZON);
    let hs_logs: Vec<Vec<Digest>> = (0..n)
        .map(|i| hs_sim.node(NodeId(i)).log().to_vec())
        .collect();
    assert!(hs_logs.iter().all(|l| l.len() == rounds as usize));
    assert!(hs_logs.iter().all(|l| *l == hs_logs[0]));

    // And the Table 3 cost ordering holds on these very runs.
    assert!(hs_sim.meter().total_bytes() < pbft_sim.meter().total_bytes());
    assert!(pbft_sim.meter().total_bytes() < prft_sim.meter().total_bytes());
}

/// The paper's worst-type rule: a mixed rational set is analysed at
/// θ = max{i : K_i ≠ ∅}. A committee with both θ=2 (censorship) and θ=3
/// (abstention) players fails at the θ=3 level — liveness dies, which is
/// strictly worse than the censorship-only outcome.
#[test]
fn mixed_theta_committee_fails_at_worst_type() {
    assert_eq!(
        Theta::worst_of([Theta::CensorSeeking, Theta::LivenessAttacking]),
        Theta::LivenessAttacking
    );

    let n = 8; // t0 = 1, quorum 7
    let watched = TxId(7);
    let censors: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
    let censor_set: HashSet<TxId> = [watched].into_iter().collect();

    // θ=2 player P0 (π_pc) + θ=3 players P6, P7 (π_abs): the abstainers
    // already exceed the quorum slack, so the system lands in σ_NP — the
    // θ=3 outcome — regardless of the censor's subtler strategy.
    let mut sim = Harness::new(n, 31)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .submit(None, Transaction::new(7, NodeId(2), b"x".to_vec()))
        .with_behavior(
            NodeId(0),
            Box::new(PartialCensor::new(n, censors, censor_set)),
        )
        .with_behavior(NodeId(6), Box::new(Abstain))
        .with_behavior(NodeId(7), Box::new(Abstain))
        .max_rounds(5)
        .build();
    sim.run_until(SimTime(150_000));
    let r = analyze(&sim);
    assert!(r.agreement, "safety unconditional");
    assert_eq!(
        r.min_final_height, 0,
        "the worst type (θ=3) dictates the outcome: no progress"
    );
}

/// Protocol isolation: pRFT signatures never validate in pBFT (different
/// signing domains), so cross-protocol replay is structurally impossible.
#[test]
fn cross_protocol_signature_domains_are_disjoint() {
    use prft::crypto::{KeyRegistry, Signable};
    let (_, keys) = KeyRegistry::trusted_setup(2, 5);

    let prft_ballot = prft::core::Ballot::new(
        prft::types::Round(1),
        prft::core::Phase::Vote,
        Digest::of_bytes(b"v"),
    );
    let pbft_ballot = pbft::PbftBallot {
        view: 0,
        seq: 1,
        phase: pbft::PbftPhase::Prepare,
        value: Digest::of_bytes(b"v"),
    };
    // Same signer, same value, same numeric slot components — different
    // domains ⇒ different signing digests.
    assert_ne!(prft_ballot.signing_digest(), pbft_ballot.signing_digest());
    let sig = keys[0].sign(prft_ballot.signing_digest());
    assert_ne!(
        sig,
        keys[0].sign(pbft_ballot.signing_digest()),
        "a pRFT signature cannot be replayed as a pBFT signature"
    );
}
