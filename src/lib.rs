//! # prft — a reproduction of *"Towards Rational Consensus in Honest
//! Majority"* (Srivastava & Gujar, ICDCS 2024)
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the pRFT protocol (Propose/Vote/Commit/Reveal, view change,
//!   Proof-of-Fraud accountability, collateral burning) plus the
//!   [`core::Harness`] for assembling committees with mixed strategies;
//! * [`types`] — blocks, chains, transactions, identifiers;
//! * [`crypto`] — simulated PKI: SHA-256, keyed-MAC signatures, conflict
//!   evidence;
//! * [`sim`] / [`net`] — the deterministic discrete-event kernel and the
//!   synchrony models (sync / partial-sync GST / async, partitions with
//!   adversarial bridges, targeted delays);
//! * [`adversary`] — the strategy space: `π_abs`, `π_pc`, `π_ds`/`π_fork`,
//!   byzantine noise;
//! * [`game`] — θ types, σ states, Table 2 payoffs, discounted utilities,
//!   Nash/DSIC/Pareto checkers, and the paper's closed-form algebra;
//! * [`baselines`] — pBFT / Polygraph-style accountable BFT / HotStuff /
//!   Raft-lite / Dolev–Strong / Bracha / the TRAP baiting game;
//! * [`metrics`] — σ-state classification, power-law fitting, tables;
//! * [`lab`] — declarative scenario specs, the ≥10-scenario registry, the
//!   multi-threaded batch runner (deterministic across thread counts), and
//!   JSON/CSV reporting (`prft-lab list` / `prft-lab run <scenario>`).
//!
//! ## Quick start
//!
//! ```
//! use prft::core::{Harness, NetworkChoice};
//! use prft::sim::SimTime;
//!
//! let mut sim = Harness::new(8, 42)
//!     .network(NetworkChoice::PartiallySynchronous {
//!         gst: SimTime(1_000),
//!         delta: SimTime(10),
//!     })
//!     .max_rounds(5)
//!     .build();
//! sim.run_until(SimTime(1_000_000));
//! let report = prft::core::analysis::analyze(&sim);
//! assert!(report.agreement);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the per-table/figure experiment harness (indexed in DESIGN.md §5).

#![forbid(unsafe_code)]

pub use prft_adversary as adversary;
pub use prft_baselines as baselines;
pub use prft_core as core;
pub use prft_crypto as crypto;
pub use prft_game as game;
pub use prft_lab as lab;
pub use prft_metrics as metrics;
pub use prft_net as net;
pub use prft_sim as sim;
pub use prft_types as types;
