//! Network partitions: cross-group traffic is *held*, never dropped.
//!
//! The impossibility proofs (Claim 1, Theorem 3, Lemma 4) all reason about
//! partitions of the honest players into sets `A`, `B` that communicate only
//! through the adversary. In a partially synchronous network a partition is
//! just a period of very high delay, which is exactly how we model it:
//! messages crossing the partition during an active window are released when
//! the window closes and then travel under the wrapped model.

use prft_sim::{LinkModel, SimRng, SimTime};
use prft_types::NodeId;

/// A time window during which the committee is split into groups.
///
/// Nodes not mentioned in any group form one implicit "rest" group (so
/// isolating `{P0}` from everyone else is `split(start, end, vec![vec![P0]])`).
#[derive(Debug, Clone)]
pub struct PartitionWindow {
    start: SimTime,
    end: SimTime,
    groups: Vec<Vec<NodeId>>,
    bridges: Vec<NodeId>,
}

impl PartitionWindow {
    /// Creates a window `[start, end)` splitting the committee into `groups`.
    ///
    /// # Panics
    /// Panics if `start >= end` or a node appears in two groups.
    pub fn split(start: SimTime, end: SimTime, groups: Vec<Vec<NodeId>>) -> Self {
        Self::split_with_bridges(start, end, groups, Vec::new())
    }

    /// Like [`PartitionWindow::split`], but `bridges` communicate with
    /// everyone throughout the window.
    ///
    /// This is the paper's partition model: the honest subsets `A` and `B`
    /// are "unable to communicate with each other except through the set of
    /// adversaries T" — the adversaries are the bridges.
    ///
    /// # Panics
    /// Panics if `start >= end` or a node appears in two groups.
    pub fn split_with_bridges(
        start: SimTime,
        end: SimTime,
        groups: Vec<Vec<NodeId>>,
        bridges: Vec<NodeId>,
    ) -> Self {
        assert!(start < end, "window must have positive length");
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for node in g {
                assert!(seen.insert(*node), "{node} appears in two groups");
            }
        }
        PartitionWindow {
            start,
            end,
            groups,
            bridges,
        }
    }

    /// The window's end (heal) time.
    pub fn end(&self) -> SimTime {
        self.end
    }

    fn group_of(&self, node: NodeId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&node))
    }

    /// Whether `a` and `b` cannot communicate at time `at` under this window.
    pub fn separates(&self, a: NodeId, b: NodeId, at: SimTime) -> bool {
        if at < self.start || at >= self.end {
            return false;
        }
        if self.bridges.contains(&a) || self.bridges.contains(&b) {
            return false;
        }
        self.group_of(a) != self.group_of(b)
    }
}

/// Wraps a [`LinkModel`], holding cross-partition traffic until heal time.
pub struct PartitionedNet {
    inner: Box<dyn LinkModel>,
    windows: Vec<PartitionWindow>,
}

impl PartitionedNet {
    /// Wraps `inner` with no partitions yet.
    pub fn new(inner: Box<dyn LinkModel>) -> Self {
        PartitionedNet {
            inner,
            windows: Vec::new(),
        }
    }

    /// Adds a partition window. Overlapping windows compose: a message is
    /// held until every window separating its endpoints has closed.
    pub fn add_window(&mut self, window: PartitionWindow) -> &mut Self {
        self.windows.push(window);
        self
    }
}

impl LinkModel for PartitionedNet {
    fn deliver_at(&mut self, from: NodeId, to: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime {
        // A held message re-enters the network at the heal time; iterate in
        // case the release lands inside another separating window.
        let mut depart = sent;
        loop {
            let held_until = self
                .windows
                .iter()
                .filter(|w| w.separates(from, to, depart))
                .map(|w| w.end())
                .max();
            match held_until {
                Some(t) if t > depart => depart = t,
                _ => break,
            }
        }
        self.inner.deliver_at(from, to, depart, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_sim::ConstantDelay;

    fn net_with(windows: Vec<PartitionWindow>) -> PartitionedNet {
        let mut net = PartitionedNet::new(Box::new(ConstantDelay(SimTime(1))));
        for w in windows {
            net.add_window(w);
        }
        net
    }

    #[test]
    fn same_group_unaffected() {
        let mut net = net_with(vec![PartitionWindow::split(
            SimTime(0),
            SimTime(100),
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]],
        )]);
        let mut rng = SimRng::new(1);
        assert_eq!(
            net.deliver_at(NodeId(0), NodeId(1), SimTime(10), &mut rng),
            SimTime(11)
        );
    }

    #[test]
    fn cross_group_held_until_heal() {
        let mut net = net_with(vec![PartitionWindow::split(
            SimTime(0),
            SimTime(100),
            vec![vec![NodeId(0)], vec![NodeId(1)]],
        )]);
        let mut rng = SimRng::new(1);
        assert_eq!(
            net.deliver_at(NodeId(0), NodeId(1), SimTime(10), &mut rng),
            SimTime(101),
            "released at heal (100) plus inner delay (1)"
        );
    }

    #[test]
    fn message_after_heal_unaffected() {
        let mut net = net_with(vec![PartitionWindow::split(
            SimTime(0),
            SimTime(100),
            vec![vec![NodeId(0)], vec![NodeId(1)]],
        )]);
        let mut rng = SimRng::new(1);
        assert_eq!(
            net.deliver_at(NodeId(0), NodeId(1), SimTime(100), &mut rng),
            SimTime(101)
        );
    }

    #[test]
    fn unlisted_nodes_form_rest_group() {
        let mut net = net_with(vec![PartitionWindow::split(
            SimTime(0),
            SimTime(50),
            vec![vec![NodeId(0)]],
        )]);
        let mut rng = SimRng::new(1);
        // 1 and 2 are both "rest": connected.
        assert_eq!(
            net.deliver_at(NodeId(1), NodeId(2), SimTime(0), &mut rng),
            SimTime(1)
        );
        // 0 is isolated from rest.
        assert_eq!(
            net.deliver_at(NodeId(0), NodeId(1), SimTime(0), &mut rng),
            SimTime(51)
        );
    }

    #[test]
    fn chained_windows_hold_repeatedly() {
        let mut net = net_with(vec![
            PartitionWindow::split(
                SimTime(0),
                SimTime(100),
                vec![vec![NodeId(0)], vec![NodeId(1)]],
            ),
            PartitionWindow::split(
                SimTime(100),
                SimTime(200),
                vec![vec![NodeId(0)], vec![NodeId(1)]],
            ),
        ]);
        let mut rng = SimRng::new(1);
        assert_eq!(
            net.deliver_at(NodeId(0), NodeId(1), SimTime(10), &mut rng),
            SimTime(201),
            "release at 100 lands in the second window, held to 200"
        );
    }

    #[test]
    fn bridges_cross_the_partition() {
        let mut net = net_with(vec![PartitionWindow::split_with_bridges(
            SimTime(0),
            SimTime(100),
            vec![vec![NodeId(1)], vec![NodeId(2)]],
            vec![NodeId(0)],
        )]);
        let mut rng = SimRng::new(1);
        // Bridge ↔ both groups: unimpeded.
        assert_eq!(
            net.deliver_at(NodeId(0), NodeId(1), SimTime(0), &mut rng),
            SimTime(1)
        );
        assert_eq!(
            net.deliver_at(NodeId(2), NodeId(0), SimTime(0), &mut rng),
            SimTime(1)
        );
        // Non-bridge cross traffic still held.
        assert_eq!(
            net.deliver_at(NodeId(1), NodeId(2), SimTime(0), &mut rng),
            SimTime(101)
        );
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn duplicate_membership_rejected() {
        let _ = PartitionWindow::split(
            SimTime(0),
            SimTime(1),
            vec![vec![NodeId(0)], vec![NodeId(0)]],
        );
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_window_rejected() {
        let _ = PartitionWindow::split(SimTime(5), SimTime(5), vec![]);
    }
}
