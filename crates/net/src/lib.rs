//! Network models for the three synchrony flavours of the paper
//! (Section 3.3 / Appendix A.3), plus partitions and adversarial scheduling.
//!
//! All models implement [`prft_sim::LinkModel`] and compose by wrapping:
//!
//! * [`SynchronousNet`] — delay uniformly in `[1, Δ_sync]`, known bound;
//! * [`PartiallySynchronousNet`] — before GST the adversary controls delays
//!   (up to delivery by `GST + Δ`); after GST, bounded by `Δ`. Every message
//!   sent at `s` arrives by `max(s, GST) + Δ` — the Dwork-Lynch-Stockmeyer
//!   guarantee;
//! * [`AsynchronousNet`] — finite but unbounded delays (geometric tail);
//! * [`PartitionedNet`] — wraps another model and holds cross-partition
//!   traffic until the window closes (messages are *delayed*, never dropped:
//!   channels are reliable);
//! * [`TargetedDelay`] — an adversarial scheduler that slows selected
//!   sender/receiver pairs, used to build the split-vote schedules in the
//!   impossibility experiments.
//!
//! # Example
//!
//! ```
//! use prft_net::{PartiallySynchronousNet, PartitionedNet, PartitionWindow};
//! use prft_sim::{LinkModel, SimRng, SimTime};
//! use prft_types::NodeId;
//!
//! let base = PartiallySynchronousNet::new(SimTime(1_000), SimTime(10));
//! let mut net = PartitionedNet::new(Box::new(base));
//! net.add_window(PartitionWindow::split(
//!     SimTime(0),
//!     SimTime(500),
//!     vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
//! ));
//! let mut rng = SimRng::new(1);
//! // Cross-partition message sent during the window is held past t=500.
//! let at = net.deliver_at(NodeId(0), NodeId(2), SimTime(100), &mut rng);
//! assert!(at >= SimTime(500));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod delay;
mod partition;

pub use adversarial::{DelayRule, DelayRuleHandle, TargetedDelay};
pub use delay::{AsynchronousNet, PartiallySynchronousNet, SynchronousNet};
pub use partition::{PartitionWindow, PartitionedNet};
