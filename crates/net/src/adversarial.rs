//! Adversarial message scheduling: targeted slow-downs.
//!
//! In partial synchrony the adversary controls delays before GST. Beyond the
//! blunt instrument of a partition, the impossibility constructions need
//! finer control — e.g. "delay every message *from honest players to the
//! other half* but let collusion traffic race ahead". [`TargetedDelay`]
//! wraps a base model and adds rule-based extra delay.

use prft_sim::{LinkModel, SimRng, SimTime};
use prft_types::NodeId;

/// One scheduling rule: during `[from_time, until_time)`, messages matching
/// the (sender, receiver) pattern get `extra` ticks of added delay.
///
/// `None` in `from`/`to` is a wildcard.
#[derive(Debug, Clone)]
pub struct DelayRule {
    /// Matching sender (wildcard if `None`).
    pub from: Option<NodeId>,
    /// Matching receiver (wildcard if `None`).
    pub to: Option<NodeId>,
    /// Window start.
    pub from_time: SimTime,
    /// Window end (exclusive).
    pub until_time: SimTime,
    /// Extra delay in ticks.
    pub extra: SimTime,
}

impl DelayRule {
    /// Rule slowing everything a given node *sends*.
    pub fn slow_sender(
        node: NodeId,
        from_time: SimTime,
        until_time: SimTime,
        extra: SimTime,
    ) -> Self {
        DelayRule {
            from: Some(node),
            to: None,
            from_time,
            until_time,
            extra,
        }
    }

    /// Rule slowing everything a given node *receives*.
    pub fn slow_receiver(
        node: NodeId,
        from_time: SimTime,
        until_time: SimTime,
        extra: SimTime,
    ) -> Self {
        DelayRule {
            from: None,
            to: Some(node),
            from_time,
            until_time,
            extra,
        }
    }

    fn matches(&self, from: NodeId, to: NodeId, at: SimTime) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && at >= self.from_time
            && at < self.until_time
    }
}

/// A [`LinkModel`] wrapper applying [`DelayRule`]s on top of a base model.
pub struct TargetedDelay {
    inner: Box<dyn LinkModel>,
    rules: Vec<DelayRule>,
}

impl TargetedDelay {
    /// Wraps `inner` with no rules.
    pub fn new(inner: Box<dyn LinkModel>) -> Self {
        TargetedDelay {
            inner,
            rules: Vec::new(),
        }
    }

    /// Adds a scheduling rule.
    pub fn add_rule(&mut self, rule: DelayRule) -> &mut Self {
        self.rules.push(rule);
        self
    }
}

impl LinkModel for TargetedDelay {
    fn deliver_at(&mut self, from: NodeId, to: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime {
        let base = self.inner.deliver_at(from, to, sent, rng);
        let extra: u64 = self
            .rules
            .iter()
            .filter(|r| r.matches(from, to, sent))
            .map(|r| r.extra.0)
            .sum();
        base + SimTime(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_sim::ConstantDelay;

    fn delivery(net: &mut TargetedDelay, from: usize, to: usize, sent: u64) -> u64 {
        let mut rng = SimRng::new(1);
        net.deliver_at(NodeId(from), NodeId(to), SimTime(sent), &mut rng)
            .0
    }

    #[test]
    fn unmatched_traffic_uses_base_delay() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        assert_eq!(delivery(&mut net, 1, 2, 10), 12);
    }

    #[test]
    fn sender_rule_applies() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        assert_eq!(delivery(&mut net, 0, 2, 10), 62);
    }

    #[test]
    fn receiver_rule_applies() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_receiver(
            NodeId(2),
            SimTime(0),
            SimTime(100),
            SimTime(7),
        ));
        assert_eq!(delivery(&mut net, 1, 2, 10), 19);
    }

    #[test]
    fn rules_expire() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        assert_eq!(delivery(&mut net, 0, 2, 100), 102, "window is exclusive");
    }

    #[test]
    fn overlapping_rules_stack() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(10),
        ));
        net.add_rule(DelayRule::slow_receiver(
            NodeId(2),
            SimTime(0),
            SimTime(100),
            SimTime(5),
        ));
        assert_eq!(delivery(&mut net, 0, 2, 10), 27);
    }
}
