//! Adversarial message scheduling: targeted slow-downs.
//!
//! In partial synchrony the adversary controls delays before GST. Beyond the
//! blunt instrument of a partition, the impossibility constructions need
//! finer control — e.g. "delay every message *from honest players to the
//! other half* but let collusion traffic race ahead". [`TargetedDelay`]
//! wraps a base model and adds rule-based extra delay.
//!
//! The rule set lives behind a shared [`DelayRuleHandle`], so a driver can
//! keep adding rules *after* the simulation has taken ownership of the
//! model — the timeline executor in `prft-lab` schedules `AddDelayRule`
//! events at deterministic ticks between run segments. Because rules carry
//! their own absolute windows and rule evaluation draws no randomness,
//! mid-run additions cannot perturb determinism.

use prft_sim::{LinkModel, SimRng, SimTime};
use prft_types::NodeId;
use std::sync::{Arc, Mutex};

/// One scheduling rule: during `[from_time, until_time)`, messages matching
/// the (sender, receiver) pattern get `extra` ticks of added delay.
///
/// `None` in `from`/`to` is a wildcard.
#[derive(Debug, Clone)]
pub struct DelayRule {
    /// Matching sender (wildcard if `None`).
    pub from: Option<NodeId>,
    /// Matching receiver (wildcard if `None`).
    pub to: Option<NodeId>,
    /// Window start.
    pub from_time: SimTime,
    /// Window end (exclusive).
    pub until_time: SimTime,
    /// Extra delay in ticks.
    pub extra: SimTime,
}

impl DelayRule {
    /// Rule slowing everything a given node *sends*.
    pub fn slow_sender(
        node: NodeId,
        from_time: SimTime,
        until_time: SimTime,
        extra: SimTime,
    ) -> Self {
        DelayRule {
            from: Some(node),
            to: None,
            from_time,
            until_time,
            extra,
        }
    }

    /// Rule slowing everything a given node *receives*.
    pub fn slow_receiver(
        node: NodeId,
        from_time: SimTime,
        until_time: SimTime,
        extra: SimTime,
    ) -> Self {
        DelayRule {
            from: None,
            to: Some(node),
            from_time,
            until_time,
            extra,
        }
    }

    fn matches(&self, from: NodeId, to: NodeId, at: SimTime) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && at >= self.from_time
            && at < self.until_time
    }
}

/// A cloneable handle onto a [`TargetedDelay`]'s live rule set: the way to
/// add rules after the wrapped model has been moved into a simulation.
#[derive(Clone)]
pub struct DelayRuleHandle {
    rules: Arc<Mutex<Vec<DelayRule>>>,
}

impl DelayRuleHandle {
    /// Adds a scheduling rule to the live model.
    pub fn add_rule(&self, rule: DelayRule) {
        self.rules.lock().expect("delay rules").push(rule);
    }

    /// Removes every installed rule whose `(from, to)` pattern equals the
    /// given one (both wildcards compare as written, not as "matches"),
    /// returning how many rules were dropped. Removal takes effect from
    /// the *next* delivery computed — already-scheduled deliveries keep
    /// the delay the rule imposed when they were sent, so a mid-run
    /// removal cannot reorder in-flight traffic.
    pub fn remove_matching(&self, from: Option<NodeId>, to: Option<NodeId>) -> usize {
        let mut rules = self.rules.lock().expect("delay rules");
        let before = rules.len();
        rules.retain(|r| !(r.from == from && r.to == to));
        before - rules.len()
    }

    /// Number of rules currently installed.
    pub fn rule_count(&self) -> usize {
        self.rules.lock().expect("delay rules").len()
    }
}

/// A [`LinkModel`] wrapper applying [`DelayRule`]s on top of a base model.
///
/// Composes by wrapping: the base may itself be a `PartitionedNet` over a
/// synchrony flavour, in which case rules match on the original *send*
/// time and the extra delay lands on top of any partition hold.
pub struct TargetedDelay {
    inner: Box<dyn LinkModel>,
    rules: Arc<Mutex<Vec<DelayRule>>>,
}

impl TargetedDelay {
    /// Wraps `inner` with no rules.
    pub fn new(inner: Box<dyn LinkModel>) -> Self {
        TargetedDelay {
            inner,
            rules: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Adds a scheduling rule.
    pub fn add_rule(&mut self, rule: DelayRule) -> &mut Self {
        self.rules.lock().expect("delay rules").push(rule);
        self
    }

    /// A handle for adding rules after this model has been boxed into a
    /// simulation (mid-run rule installation).
    pub fn handle(&self) -> DelayRuleHandle {
        DelayRuleHandle {
            rules: Arc::clone(&self.rules),
        }
    }
}

impl LinkModel for TargetedDelay {
    fn deliver_at(&mut self, from: NodeId, to: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime {
        let base = self.inner.deliver_at(from, to, sent, rng);
        let extra: u64 = self
            .rules
            .lock()
            .expect("delay rules")
            .iter()
            .filter(|r| r.matches(from, to, sent))
            .map(|r| r.extra.0)
            .sum();
        base + SimTime(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_sim::ConstantDelay;

    fn delivery(net: &mut TargetedDelay, from: usize, to: usize, sent: u64) -> u64 {
        let mut rng = SimRng::new(1);
        net.deliver_at(NodeId(from), NodeId(to), SimTime(sent), &mut rng)
            .0
    }

    #[test]
    fn unmatched_traffic_uses_base_delay() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        assert_eq!(delivery(&mut net, 1, 2, 10), 12);
    }

    #[test]
    fn sender_rule_applies() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        assert_eq!(delivery(&mut net, 0, 2, 10), 62);
    }

    #[test]
    fn receiver_rule_applies() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_receiver(
            NodeId(2),
            SimTime(0),
            SimTime(100),
            SimTime(7),
        ));
        assert_eq!(delivery(&mut net, 1, 2, 10), 19);
    }

    #[test]
    fn rules_expire() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        assert_eq!(delivery(&mut net, 0, 2, 100), 102, "window is exclusive");
    }

    #[test]
    fn handle_adds_rules_to_a_live_model() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        let handle = net.handle();
        assert_eq!(handle.rule_count(), 0);
        // Simulate "the model is already owned elsewhere": add via handle.
        handle.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        assert_eq!(handle.rule_count(), 1);
        assert_eq!(delivery(&mut net, 0, 2, 10), 62);
        assert_eq!(delivery(&mut net, 1, 2, 10), 12);
    }

    #[test]
    fn remove_matching_drops_exact_patterns_only() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        let handle = net.handle();
        handle.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(50),
        ));
        handle.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(7),
        ));
        handle.add_rule(DelayRule::slow_receiver(
            NodeId(2),
            SimTime(0),
            SimTime(100),
            SimTime(5),
        ));
        // Pattern mismatch removes nothing.
        assert_eq!(handle.remove_matching(Some(NodeId(1)), None), 0);
        assert_eq!(handle.remove_matching(None, None), 0);
        // The (from=0, to=*) pattern drops both sender rules at once.
        assert_eq!(handle.remove_matching(Some(NodeId(0)), None), 2);
        assert_eq!(handle.rule_count(), 1);
        // The receiver rule survives and still applies.
        assert_eq!(delivery(&mut net, 0, 2, 10), 17);
        assert_eq!(handle.remove_matching(None, Some(NodeId(2))), 1);
        assert_eq!(delivery(&mut net, 0, 2, 10), 12);
    }

    #[test]
    fn composes_over_a_partition_stack() {
        use crate::{PartitionWindow, PartitionedNet};
        // sync base → partition → targeted delay: rule matches on the
        // original send time; extra delay lands after the partition hold.
        let mut partitioned = PartitionedNet::new(Box::new(ConstantDelay(SimTime(1))));
        partitioned.add_window(PartitionWindow::split(
            SimTime(0),
            SimTime(100),
            vec![vec![NodeId(0)], vec![NodeId(1)]],
        ));
        let mut net = TargetedDelay::new(Box::new(partitioned));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(50),
            SimTime(7),
        ));
        // Sent at 10 (inside the rule window): held to 100, inner delay 1,
        // plus the targeted 7.
        assert_eq!(delivery(&mut net, 0, 1, 10), 108);
        // Sent at 60 (rule expired): partition hold only.
        assert_eq!(delivery(&mut net, 0, 1, 60), 101);
    }

    #[test]
    fn overlapping_rules_stack() {
        let mut net = TargetedDelay::new(Box::new(ConstantDelay(SimTime(2))));
        net.add_rule(DelayRule::slow_sender(
            NodeId(0),
            SimTime(0),
            SimTime(100),
            SimTime(10),
        ));
        net.add_rule(DelayRule::slow_receiver(
            NodeId(2),
            SimTime(0),
            SimTime(100),
            SimTime(5),
        ));
        assert_eq!(delivery(&mut net, 0, 2, 10), 27);
    }
}
