//! The three synchrony flavours.

use prft_sim::{LinkModel, SimRng, SimTime};
use prft_types::NodeId;

/// Fully synchronous network: every message arrives within a known `Δ_sync`.
///
/// Protocols may be parameterized by this bound (the paper: "synchronized is
/// when the delay is upper bounded by a known bound Δ").
#[derive(Debug, Clone, Copy)]
pub struct SynchronousNet {
    delta: SimTime,
}

impl SynchronousNet {
    /// Creates a synchronous network with bound `delta` (≥ 1).
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn new(delta: SimTime) -> Self {
        assert!(delta.0 >= 1, "delay bound must be at least one tick");
        SynchronousNet { delta }
    }

    /// The known delay bound.
    pub fn delta(&self) -> SimTime {
        self.delta
    }
}

impl LinkModel for SynchronousNet {
    fn deliver_at(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        sent: SimTime,
        rng: &mut SimRng,
    ) -> SimTime {
        sent + SimTime(rng.range(1, self.delta.0))
    }
}

/// Partially synchronous network (Dwork–Lynch–Stockmeyer): before the Global
/// Stabilization Time the adversary picks delays; after GST every message is
/// delivered within `Δ`. The invariant is that a message sent at `s` arrives
/// by `max(s, GST) + Δ`.
#[derive(Debug, Clone, Copy)]
pub struct PartiallySynchronousNet {
    gst: SimTime,
    delta: SimTime,
}

impl PartiallySynchronousNet {
    /// Creates a partially synchronous network that stabilizes at `gst` with
    /// post-GST bound `delta`.
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn new(gst: SimTime, delta: SimTime) -> Self {
        assert!(delta.0 >= 1, "delay bound must be at least one tick");
        PartiallySynchronousNet { gst, delta }
    }

    /// The Global Stabilization Time.
    pub fn gst(&self) -> SimTime {
        self.gst
    }

    /// The post-GST delay bound.
    pub fn delta(&self) -> SimTime {
        self.delta
    }
}

impl LinkModel for PartiallySynchronousNet {
    fn deliver_at(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        sent: SimTime,
        rng: &mut SimRng,
    ) -> SimTime {
        let deadline = self.gst.max(sent) + self.delta;
        // Uniform in (sent, deadline]: before GST this spans the whole
        // asynchronous window; after GST it degenerates to [1, Δ].
        SimTime(rng.range(sent.0 + 1, deadline.0))
    }
}

/// Asynchronous network: no bound on delay, but every delay is finite
/// (reliable channels). Delays follow a geometric tail: with probability
/// `1 − p_slow` a message takes `[1, base]`; otherwise the delay doubles per
/// extra "slow" draw, capped at `cap` so runs terminate.
#[derive(Debug, Clone, Copy)]
pub struct AsynchronousNet {
    base: SimTime,
    p_slow: f64,
    cap: SimTime,
}

impl AsynchronousNet {
    /// Creates an asynchronous network with typical delay `base`, slow-path
    /// probability `p_slow`, and hard cap `cap` (finiteness).
    ///
    /// # Panics
    /// Panics if `base` is zero or `cap < base`.
    pub fn new(base: SimTime, p_slow: f64, cap: SimTime) -> Self {
        assert!(base.0 >= 1, "base delay must be at least one tick");
        assert!(cap >= base, "cap must be at least the base delay");
        AsynchronousNet { base, p_slow, cap }
    }

    /// A default profile used across experiments.
    pub fn typical() -> Self {
        AsynchronousNet::new(SimTime(10), 0.1, SimTime(10_000))
    }
}

impl LinkModel for AsynchronousNet {
    fn deliver_at(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        sent: SimTime,
        rng: &mut SimRng,
    ) -> SimTime {
        let mut bound = self.base.0;
        while bound < self.cap.0 && rng.chance(self.p_slow) {
            bound = (bound * 2).min(self.cap.0);
        }
        sent + SimTime(rng.range(1, bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread<M: LinkModel>(model: &mut M, sent: u64, draws: usize) -> (u64, u64) {
        let mut rng = SimRng::new(99);
        let mut lo = u64::MAX;
        let mut hi = 0;
        for _ in 0..draws {
            let t = model
                .deliver_at(NodeId(0), NodeId(1), SimTime(sent), &mut rng)
                .0;
            lo = lo.min(t);
            hi = hi.max(t);
        }
        (lo, hi)
    }

    #[test]
    fn synchronous_respects_bound() {
        let mut net = SynchronousNet::new(SimTime(10));
        let (lo, hi) = spread(&mut net, 100, 2000);
        assert!(lo >= 101);
        assert!(hi <= 110);
    }

    #[test]
    fn partial_sync_before_gst_can_stall_until_gst_plus_delta() {
        let mut net = PartiallySynchronousNet::new(SimTime(1_000), SimTime(10));
        let (lo, hi) = spread(&mut net, 0, 5000);
        assert!(lo >= 1);
        assert!(hi > 500, "pre-GST deliveries can be very late (saw {hi})");
        assert!(hi <= 1_010, "but never after GST+Δ");
    }

    #[test]
    fn partial_sync_after_gst_is_synchronous() {
        let mut net = PartiallySynchronousNet::new(SimTime(1_000), SimTime(10));
        let (lo, hi) = spread(&mut net, 2_000, 2000);
        assert!(lo >= 2_001);
        assert!(hi <= 2_010);
    }

    #[test]
    fn async_is_finite_but_heavy_tailed() {
        let mut net = AsynchronousNet::new(SimTime(10), 0.5, SimTime(1_000));
        let (lo, hi) = spread(&mut net, 0, 5000);
        assert!(lo >= 1);
        assert!(hi > 100, "tail should exceed the base bound (saw {hi})");
        assert!(hi <= 1_000, "cap keeps delays finite");
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_delta_rejected() {
        let _ = SynchronousNet::new(SimTime(0));
    }

    #[test]
    #[should_panic(expected = "cap must be at least")]
    fn async_cap_below_base_rejected() {
        let _ = AsynchronousNet::new(SimTime(10), 0.1, SimTime(5));
    }
}
