//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no crates.io access, so the
//! benches under `crates/bench/benches/` link against this API-compatible
//! shim instead of the real crate. It implements exactly the surface those
//! benches use: `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. `Bencher::iter` runs the closure a small fixed number of times
//! and reports wall-clock time per iteration — enough to smoke-run every
//! bench and get a rough number, without statistics, warm-up, or plotting.
//! Swap the workspace `criterion` entry back to the real crate when a
//! registry is available; no bench source needs to change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Number of timed iterations per `Bencher::iter` call.
const ITERS: u32 = 10;

/// The timing loop handed to bench closures.
pub struct Bencher {
    label: String,
}

impl Bencher {
    /// Runs `f` a fixed number of times and prints mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        let per = start.elapsed() / ITERS;
        println!("bench {:<40} {:>12.3?}/iter", self.label, per);
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored: the shim always runs a fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id),
        };
        f(&mut b);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.text),
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: id.to_string(),
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// Bundles bench functions into a single runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_nothing(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5).throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn shim_surface_runs() {
        let mut c = Criterion::default();
        bench_nothing(&mut c);
        assert_eq!(BenchmarkId::from_parameter(7).text, "7");
    }
}
