//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so `tests/properties.rs`
//! links against this shim. It covers the surface that file uses:
//!
//! * the [`proptest!`] macro (including a leading
//!   `#![proptest_config(...)]`), expanding each property into a plain
//!   `#[test]` that samples inputs for a fixed number of cases;
//! * [`Strategy`] implementations for integer ranges, tuples of strategies,
//!   [`any`] over primitives and byte arrays, and
//!   [`collection::vec`];
//! * `prop_assert!`/`prop_assert_eq!`, which panic like their `assert!`
//!   cousins (no shrinking — the failing input is printed by the panic
//!   message of the assertion itself).
//!
//! Sampling is deterministic: the RNG is seeded from the property name and
//! case index, so failures reproduce across runs and machines.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic SplitMix64 used for input generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening-multiply reduction; bias is irrelevant for test sampling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Seeds the per-case RNG from the property name and case index.
pub fn test_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng {
        state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    }
}

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Panicking assertion (the shim does not shrink, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panicking equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Panicking inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Expands each property into a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::test_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn composites_sample(v in crate::collection::vec((0u64..50, any::<bool>()), 0..20),
                             bytes in any::<[u8; 8]>()) {
            prop_assert!(v.len() < 20);
            for (n, _flag) in &v {
                prop_assert!(*n < 50);
            }
            prop_assert_eq!(bytes.len(), 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_honoured(x in 0u8..255) {
            let _ = x;
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_rng("p", 1);
        let mut b = crate::test_rng("p", 1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
