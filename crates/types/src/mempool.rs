//! A bounded FIFO mempool with censorship bookkeeping and backpressure
//! accounting.

use crate::{Transaction, TxId};
use std::collections::HashSet;

/// Why a [`Mempool::push`] did not admit a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MempoolError {
    /// The id was already seen (pending now or included earlier).
    Duplicate,
    /// The pool is at capacity: the submitter must back off and retry.
    Full,
}

/// Pending transactions a player would include when leading.
///
/// Order of insertion is preserved (FIFO batching). The mempool also
/// remembers everything it has *ever* seen so the state classifier can ask
/// "was `tx` input to this player but never included?" — the censorship
/// predicate of Definition 2.
///
/// The pool is optionally **bounded**: [`Mempool::bounded`] caps the
/// pending queue, [`Mempool::push`] reports `Full` instead of growing past
/// it, and the pool keeps backpressure accounting (occupancy high-water
/// mark, rejected-at-capacity count) for the workload-layer gauges.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    pending: Vec<Transaction>,
    seen: HashSet<TxId>,
    ever_seen: HashSet<TxId>,
    capacity: Option<usize>,
    peak_len: usize,
    rejected_full: u64,
}

impl Mempool {
    /// Creates an empty, unbounded mempool.
    pub fn new() -> Self {
        Mempool::default()
    }

    /// Creates an empty mempool holding at most `capacity` pending txs.
    pub fn bounded(capacity: usize) -> Self {
        Mempool {
            capacity: Some(capacity),
            ..Mempool::default()
        }
    }

    /// Caps (or uncaps, with `None`) the pending queue. Existing pending
    /// txs are never evicted; only future pushes see the new bound.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Submits a transaction; duplicates (by id) are ignored.
    /// Returns `true` if the transaction was newly added.
    ///
    /// Compatibility wrapper over [`Mempool::push`]: a `Full` rejection
    /// also returns `false` (callers that care which it was use `push`).
    pub fn submit(&mut self, tx: Transaction) -> bool {
        self.push(tx).is_ok()
    }

    /// Submits a transaction, reporting *why* it was not admitted:
    /// duplicates (by id, pending or ever-included) and capacity
    /// rejections are distinct — backpressure means "retry later",
    /// a duplicate means "stop resending".
    pub fn push(&mut self, tx: Transaction) -> Result<(), MempoolError> {
        if self.seen.contains(&tx.id) || self.ever_seen.contains(&tx.id) {
            return Err(MempoolError::Duplicate);
        }
        if let Some(cap) = self.capacity {
            if self.pending.len() >= cap {
                self.rejected_full += 1;
                return Err(MempoolError::Full);
            }
        }
        self.seen.insert(tx.id);
        self.ever_seen.insert(tx.id);
        self.pending.push(tx);
        self.peak_len = self.peak_len.max(self.pending.len());
        Ok(())
    }

    /// The most txs ever simultaneously pending (occupancy high-water).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// How many pushes were rejected at capacity.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Takes up to `max` transactions in FIFO order (removing them).
    pub fn take(&mut self, max: usize) -> Vec<Transaction> {
        let n = max.min(self.pending.len());
        let batch: Vec<Transaction> = self.pending.drain(..n).collect();
        for tx in &batch {
            self.seen.remove(&tx.id);
        }
        batch
    }

    /// Takes up to `max` transactions, skipping any whose id is in `censor`.
    ///
    /// This is the leader-side primitive of the partial-censorship strategy
    /// `π_pc` (Theorem 2): censored transactions stay in the pool.
    pub fn take_censoring(&mut self, max: usize, censor: &HashSet<TxId>) -> Vec<Transaction> {
        let mut batch = Vec::new();
        let mut rest = Vec::new();
        for tx in self.pending.drain(..) {
            if batch.len() < max && !censor.contains(&tx.id) {
                self.seen.remove(&tx.id);
                batch.push(tx);
            } else {
                rest.push(tx);
            }
        }
        self.pending = rest;
        batch
    }

    /// Removes transactions that appear in a decided block.
    pub fn remove_included<'a>(&mut self, ids: impl IntoIterator<Item = &'a TxId>) {
        let remove: HashSet<TxId> = ids.into_iter().copied().collect();
        self.pending.retain(|tx| !remove.contains(&tx.id));
        for id in &remove {
            self.seen.remove(id);
        }
    }

    /// Whether `id` is currently pending.
    pub fn contains(&self, id: TxId) -> bool {
        self.seen.contains(&id)
    }

    /// Whether `id` was ever submitted to this player.
    pub fn ever_saw(&self, id: TxId) -> bool {
        self.ever_seen.contains(&id)
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether there is nothing pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Iterates over pending transactions in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.pending.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn tx(id: u64) -> Transaction {
        Transaction::new(id, NodeId(0), vec![id as u8])
    }

    #[test]
    fn fifo_order_preserved() {
        let mut mp = Mempool::new();
        for i in 0..5 {
            assert!(mp.submit(tx(i)));
        }
        let batch = mp.take(3);
        assert_eq!(
            batch.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(mp.len(), 2);
    }

    #[test]
    fn duplicates_rejected() {
        let mut mp = Mempool::new();
        assert!(mp.submit(tx(1)));
        assert!(!mp.submit(tx(1)));
        assert_eq!(mp.len(), 1);
    }

    #[test]
    fn resubmission_after_take_rejected() {
        // A tx that was included must not reappear.
        let mut mp = Mempool::new();
        mp.submit(tx(1));
        let _ = mp.take(1);
        assert!(!mp.submit(tx(1)));
    }

    #[test]
    fn censoring_take_skips_censored() {
        let mut mp = Mempool::new();
        for i in 0..4 {
            mp.submit(tx(i));
        }
        let censor: HashSet<TxId> = [TxId(1), TxId(2)].into_iter().collect();
        let batch = mp.take_censoring(10, &censor);
        assert_eq!(batch.iter().map(|t| t.id.0).collect::<Vec<_>>(), vec![0, 3]);
        // Censored txs remain pending — they are withheld, not dropped.
        assert!(mp.contains(TxId(1)));
        assert!(mp.contains(TxId(2)));
    }

    #[test]
    fn remove_included_clears_pending() {
        let mut mp = Mempool::new();
        for i in 0..3 {
            mp.submit(tx(i));
        }
        mp.remove_included(&[TxId(0), TxId(2)]);
        assert_eq!(mp.len(), 1);
        assert!(mp.contains(TxId(1)));
        assert!(mp.ever_saw(TxId(0)), "history survives inclusion");
    }

    #[test]
    fn bounded_pool_rejects_at_capacity_and_counts() {
        let mut mp = Mempool::bounded(2);
        assert_eq!(mp.capacity(), Some(2));
        assert_eq!(mp.push(tx(0)), Ok(()));
        assert_eq!(mp.push(tx(1)), Ok(()));
        assert_eq!(mp.push(tx(2)), Err(MempoolError::Full));
        assert_eq!(mp.push(tx(2)), Err(MempoolError::Full));
        // A duplicate of a *pending* tx is Duplicate, not Full.
        assert_eq!(mp.push(tx(0)), Err(MempoolError::Duplicate));
        assert_eq!(mp.rejected_full(), 2);
        assert_eq!(mp.peak_len(), 2);
        // Draining frees a slot; the rejected tx was never marked seen,
        // so a retry now succeeds.
        let _ = mp.take(1);
        assert_eq!(mp.push(tx(2)), Ok(()));
        assert_eq!(mp.peak_len(), 2, "high-water survives the drain");
    }

    #[test]
    fn duplicate_beats_full_for_included_txs() {
        // A retried submit of an already-included tx must read Duplicate
        // even when the pool is at capacity — the client should stop
        // retrying, not back off.
        let mut mp = Mempool::bounded(1);
        mp.submit(tx(7));
        let _ = mp.take(1);
        mp.submit(tx(8));
        assert_eq!(mp.push(tx(7)), Err(MempoolError::Duplicate));
        assert_eq!(mp.rejected_full(), 0);
    }

    #[test]
    fn unbounded_pool_never_rejects_full() {
        let mut mp = Mempool::new();
        assert_eq!(mp.capacity(), None);
        for i in 0..100 {
            assert_eq!(mp.push(tx(i)), Ok(()));
        }
        assert_eq!(mp.peak_len(), 100);
        assert_eq!(mp.rejected_full(), 0);
    }

    #[test]
    fn take_censoring_respects_max() {
        let mut mp = Mempool::new();
        for i in 0..10 {
            mp.submit(tx(i));
        }
        let batch = mp.take_censoring(4, &HashSet::new());
        assert_eq!(batch.len(), 4);
        assert_eq!(mp.len(), 6);
    }
}
