//! A minimal FIFO mempool with censorship bookkeeping.

use crate::{Transaction, TxId};
use std::collections::HashSet;

/// Pending transactions a player would include when leading.
///
/// Order of insertion is preserved (FIFO batching). The mempool also
/// remembers everything it has *ever* seen so the state classifier can ask
/// "was `tx` input to this player but never included?" — the censorship
/// predicate of Definition 2.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    pending: Vec<Transaction>,
    seen: HashSet<TxId>,
    ever_seen: HashSet<TxId>,
}

impl Mempool {
    /// Creates an empty mempool.
    pub fn new() -> Self {
        Mempool::default()
    }

    /// Submits a transaction; duplicates (by id) are ignored.
    /// Returns `true` if the transaction was newly added.
    pub fn submit(&mut self, tx: Transaction) -> bool {
        if self.seen.contains(&tx.id) || self.ever_seen.contains(&tx.id) {
            return false;
        }
        self.seen.insert(tx.id);
        self.ever_seen.insert(tx.id);
        self.pending.push(tx);
        true
    }

    /// Takes up to `max` transactions in FIFO order (removing them).
    pub fn take(&mut self, max: usize) -> Vec<Transaction> {
        let n = max.min(self.pending.len());
        let batch: Vec<Transaction> = self.pending.drain(..n).collect();
        for tx in &batch {
            self.seen.remove(&tx.id);
        }
        batch
    }

    /// Takes up to `max` transactions, skipping any whose id is in `censor`.
    ///
    /// This is the leader-side primitive of the partial-censorship strategy
    /// `π_pc` (Theorem 2): censored transactions stay in the pool.
    pub fn take_censoring(&mut self, max: usize, censor: &HashSet<TxId>) -> Vec<Transaction> {
        let mut batch = Vec::new();
        let mut rest = Vec::new();
        for tx in self.pending.drain(..) {
            if batch.len() < max && !censor.contains(&tx.id) {
                self.seen.remove(&tx.id);
                batch.push(tx);
            } else {
                rest.push(tx);
            }
        }
        self.pending = rest;
        batch
    }

    /// Removes transactions that appear in a decided block.
    pub fn remove_included<'a>(&mut self, ids: impl IntoIterator<Item = &'a TxId>) {
        let remove: HashSet<TxId> = ids.into_iter().copied().collect();
        self.pending.retain(|tx| !remove.contains(&tx.id));
        for id in &remove {
            self.seen.remove(id);
        }
    }

    /// Whether `id` is currently pending.
    pub fn contains(&self, id: TxId) -> bool {
        self.seen.contains(&id)
    }

    /// Whether `id` was ever submitted to this player.
    pub fn ever_saw(&self, id: TxId) -> bool {
        self.ever_seen.contains(&id)
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether there is nothing pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Iterates over pending transactions in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.pending.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn tx(id: u64) -> Transaction {
        Transaction::new(id, NodeId(0), vec![id as u8])
    }

    #[test]
    fn fifo_order_preserved() {
        let mut mp = Mempool::new();
        for i in 0..5 {
            assert!(mp.submit(tx(i)));
        }
        let batch = mp.take(3);
        assert_eq!(
            batch.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(mp.len(), 2);
    }

    #[test]
    fn duplicates_rejected() {
        let mut mp = Mempool::new();
        assert!(mp.submit(tx(1)));
        assert!(!mp.submit(tx(1)));
        assert_eq!(mp.len(), 1);
    }

    #[test]
    fn resubmission_after_take_rejected() {
        // A tx that was included must not reappear.
        let mut mp = Mempool::new();
        mp.submit(tx(1));
        let _ = mp.take(1);
        assert!(!mp.submit(tx(1)));
    }

    #[test]
    fn censoring_take_skips_censored() {
        let mut mp = Mempool::new();
        for i in 0..4 {
            mp.submit(tx(i));
        }
        let censor: HashSet<TxId> = [TxId(1), TxId(2)].into_iter().collect();
        let batch = mp.take_censoring(10, &censor);
        assert_eq!(batch.iter().map(|t| t.id.0).collect::<Vec<_>>(), vec![0, 3]);
        // Censored txs remain pending — they are withheld, not dropped.
        assert!(mp.contains(TxId(1)));
        assert!(mp.contains(TxId(2)));
    }

    #[test]
    fn remove_included_clears_pending() {
        let mut mp = Mempool::new();
        for i in 0..3 {
            mp.submit(tx(i));
        }
        mp.remove_included(&[TxId(0), TxId(2)]);
        assert_eq!(mp.len(), 1);
        assert!(mp.contains(TxId(1)));
        assert!(mp.ever_saw(TxId(0)), "history survives inclusion");
    }

    #[test]
    fn take_censoring_respects_max() {
        let mut mp = Mempool::new();
        for i in 0..10 {
            mp.submit(tx(i));
        }
        let batch = mp.take_censoring(4, &HashSet::new());
        assert_eq!(batch.len(), 4);
        assert_eq!(mp.len(), 6);
    }
}
