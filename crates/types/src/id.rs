//! Identifier newtypes: [`NodeId`], [`Round`], [`Height`], and [`Digest`].

use std::fmt;

/// Identity of a player `P_i` in the committee `P = {P_0, …, P_{n−1}}`.
///
/// The paper indexes players from 1; we use 0-based indices throughout, so
/// the leader of round `r` is `P_{r mod n}` (same rotation as the paper's
/// `l = 1 + (r mod n)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub usize);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// A consensus round `r`. One block is agreed (or the round is abandoned via
/// view change / expose) per round.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Round(pub u64);

impl Round {
    /// The round after this one.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The leader of this round under round-robin rotation over `n` players.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn leader(self, n: usize) -> NodeId {
        assert!(n > 0, "committee must be non-empty");
        NodeId((self.0 % n as u64) as usize)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A position in the chain (genesis is height 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Debug)]
pub struct Height(pub u64);

impl Height {
    /// The height above this one.
    #[must_use]
    pub fn next(self) -> Height {
        Height(self.0 + 1)
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A 32-byte content address.
///
/// `Digest::of_bytes` is a fast, well-mixed content hash used for block
/// identity inside the simulation. Cryptographic hashing for signatures uses
/// `prft-crypto`'s SHA-256 (which also produces a `Digest`), so the two are
/// interchangeable at the type level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the genesis parent sentinel.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Number of bytes in a digest.
    pub const LEN: usize = 32;

    /// Hashes arbitrary bytes into a digest.
    ///
    /// Implementation: four lanes of the 64-bit FNV-1a/xor-fold family with
    /// distinct offsets plus a final avalanche; collision-resistant enough
    /// for content addressing in a closed simulation (protocol security never
    /// rests on this — see `prft-crypto::Sha256` for the signed path).
    pub fn of_bytes(data: &[u8]) -> Digest {
        const SEEDS: [u64; 4] = [
            0xcbf2_9ce4_8422_2325,
            0x9e37_79b9_7f4a_7c15,
            0xbf58_476d_1ce4_e5b9,
            0x94d0_49bb_1331_11eb,
        ];
        let mut lanes = SEEDS;
        for (i, &b) in data.iter().enumerate() {
            let lane = &mut lanes[i & 3];
            *lane ^= b as u64;
            *lane = lane.wrapping_mul(0x1000_0000_01b3);
        }
        // Length + cross-lane avalanche so prefixes don't collide.
        let len = data.len() as u64;
        let mut out = [0u8; 32];
        for i in 0..4 {
            let mut x = lanes[i] ^ len.rotate_left(16 * i as u32) ^ lanes[(i + 1) & 3];
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            out[i * 8..(i + 1) * 8].copy_from_slice(&x.to_le_bytes());
        }
        Digest(out)
    }

    /// Short hex prefix for human-readable logs.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::ZERO
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_leader_rotates() {
        assert_eq!(Round(0).leader(4), NodeId(0));
        assert_eq!(Round(1).leader(4), NodeId(1));
        assert_eq!(Round(4).leader(4), NodeId(0));
        assert_eq!(Round(7).leader(4), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn round_leader_rejects_empty_committee() {
        let _ = Round(0).leader(0);
    }

    #[test]
    fn round_next_increments() {
        assert_eq!(Round(3).next(), Round(4));
        assert_eq!(Height(3).next(), Height(4));
    }

    #[test]
    fn digest_distinguishes_content() {
        assert_ne!(Digest::of_bytes(b"a"), Digest::of_bytes(b"b"));
        assert_ne!(Digest::of_bytes(b""), Digest::of_bytes(b"\0"));
        assert_ne!(Digest::of_bytes(b"ab"), Digest::of_bytes(b"ba"));
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(Digest::of_bytes(b"hello"), Digest::of_bytes(b"hello"));
    }

    #[test]
    fn digest_prefix_lengths_differ() {
        // A value and its zero-extension must not collide.
        let a = Digest::of_bytes(&[1, 2, 3]);
        let b = Digest::of_bytes(&[1, 2, 3, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_display_is_short_hex() {
        let d = Digest::of_bytes(b"x");
        let s = format!("{d}");
        assert!(s.starts_with('#') && s.len() == 9);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(3).to_string(), "P3");
        assert_eq!(format!("{:?}", NodeId(3)), "P3");
    }
}
