//! The per-player ledger `C_i`: a chain of blocks with tentative/final
//! status, rollback, and the prefix operations from the paper.
//!
//! pRFT (like Algorand) first reaches *tentative* consensus on a block and
//! finalizes it later; tentative blocks may be rolled back after view change
//! or an `Expose`. The paper's common-prefix property is stated as: chains
//! with the `z` most recent blocks removed (`C^{⌊z}`) are prefixes of every
//! player's chain.

use crate::{Block, Digest, Height, TxId};
use std::collections::HashMap;
use std::fmt;

/// Whether a block has been finalized or may still be rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockStatus {
    /// Reached tentative consensus (commit quorum) but may be rolled back.
    Tentative,
    /// Finalized: will never be rolled back.
    Final,
}

/// A block together with its finality status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// The block.
    pub block: Block,
    /// Its status in this player's view.
    pub status: BlockStatus,
}

/// Errors from chain mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The appended block's parent digest does not match the current tip.
    ParentMismatch {
        /// What the block claimed.
        expected: Digest,
        /// The actual tip digest.
        tip: Digest,
    },
    /// Tried to finalize a height that does not exist.
    NoSuchHeight(Height),
    /// Tried to finalize above a still-tentative gap (finality is prefix-closed).
    NonContiguousFinality(Height),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::ParentMismatch { expected, tip } => {
                write!(f, "parent mismatch: block claims {expected}, tip is {tip}")
            }
            ChainError::NoSuchHeight(h) => write!(f, "no block at height {h}"),
            ChainError::NonContiguousFinality(h) => {
                write!(f, "cannot finalize {h}: an earlier block is not final")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// A player's ledger: genesis plus agreed blocks, each tentative or final.
///
/// Invariants maintained:
/// * entry 0 is genesis and always [`BlockStatus::Final`];
/// * every block's `parent` equals the digest of the previous block;
/// * final entries form a prefix (no final block above a tentative one).
#[derive(Clone)]
pub struct Chain {
    entries: Vec<BlockEntry>,
    /// Digest of `entries[h].block`, computed once at append time. Block
    /// hashing is the dominant cost of membership probes on long chains;
    /// caching it turns `tip()` into a copy and keeps `height_of` O(1).
    ids: Vec<Digest>,
    /// Block digest → height, for O(1) membership lookups.
    index: HashMap<Digest, u64>,
}

impl PartialEq for Chain {
    fn eq(&self, other: &Self) -> bool {
        // `ids`/`index` are pure functions of `entries`.
        self.entries == other.entries
    }
}

impl Eq for Chain {}

impl Chain {
    /// Creates a chain rooted at the given genesis block (always final).
    pub fn new(genesis: Block) -> Self {
        Chain::from_entries(vec![BlockEntry {
            block: genesis,
            status: BlockStatus::Final,
        }])
    }

    fn from_entries(entries: Vec<BlockEntry>) -> Self {
        let ids: Vec<Digest> = entries.iter().map(|e| e.block.id()).collect();
        let index = ids
            .iter()
            .enumerate()
            .map(|(h, id)| (*id, h as u64))
            .collect();
        Chain {
            entries,
            ids,
            index,
        }
    }

    /// Height of the block with digest `id`, if it is in the chain.
    pub fn height_of(&self, id: &Digest) -> Option<Height> {
        self.index.get(id).copied().map(Height)
    }

    /// Height of the tip (genesis = 0).
    pub fn height(&self) -> u64 {
        (self.entries.len() - 1) as u64
    }

    /// Number of entries including genesis.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// A chain always contains at least genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Digest of the tip block.
    pub fn tip(&self) -> Digest {
        *self.ids.last().expect("chain is never empty")
    }

    /// The tip entry.
    pub fn tip_entry(&self) -> &BlockEntry {
        self.entries.last().expect("chain is never empty")
    }

    /// Height of the highest *final* block.
    pub fn final_height(&self) -> u64 {
        self.entries
            .iter()
            .rposition(|e| e.status == BlockStatus::Final)
            .expect("genesis is final") as u64
    }

    /// Entry at `height`, if present.
    pub fn at(&self, height: Height) -> Option<&BlockEntry> {
        self.entries.get(height.0 as usize)
    }

    /// Appends a block as tentative.
    ///
    /// # Errors
    /// Returns [`ChainError::ParentMismatch`] if the block does not extend
    /// the current tip.
    pub fn append_tentative(&mut self, block: Block) -> Result<Height, ChainError> {
        let tip = self.tip();
        if block.parent != tip {
            return Err(ChainError::ParentMismatch {
                expected: block.parent,
                tip,
            });
        }
        let id = block.id();
        self.entries.push(BlockEntry {
            block,
            status: BlockStatus::Tentative,
        });
        self.ids.push(id);
        self.index.insert(id, self.height());
        Ok(Height(self.height()))
    }

    /// Marks the block at `height` (and implicitly everything below it,
    /// which must already be final) as final.
    ///
    /// Finalizing a block also finalizes its ancestors — the paper adopts
    /// Algorand's rule that a tentative block becomes final once a final
    /// block follows it, so we finalize the whole prefix up to `height`.
    ///
    /// # Errors
    /// Returns [`ChainError::NoSuchHeight`] if `height` is above the tip.
    pub fn finalize_upto(&mut self, height: Height) -> Result<(), ChainError> {
        if height.0 as usize >= self.entries.len() {
            return Err(ChainError::NoSuchHeight(height));
        }
        // Finality is prefix-contiguous, so everything below the current
        // final height is already marked — start there, not at genesis.
        let start = self.final_height() as usize + 1;
        if start <= height.0 as usize {
            for e in &mut self.entries[start..=height.0 as usize] {
                e.status = BlockStatus::Final;
            }
        }
        Ok(())
    }

    /// Drops all tentative blocks above the last final block, returning them
    /// (most recent last). Used after `Expose` or an abandoned view.
    pub fn rollback_tentative(&mut self) -> Vec<Block> {
        let keep = self.final_height() as usize + 1;
        for id in self.ids.split_off(keep) {
            self.index.remove(&id);
        }
        self.entries
            .split_off(keep)
            .into_iter()
            .map(|e| e.block)
            .collect()
    }

    /// The paper's `C^{⌊c}`: this chain with the last `c` blocks removed.
    pub fn drop_suffix(&self, c: usize) -> Chain {
        let keep = self.entries.len().saturating_sub(c).max(1);
        Chain::from_entries(self.entries[..keep].to_vec())
    }

    /// Whether `self` is a prefix of `other` (block-wise, ignoring status).
    pub fn is_prefix_of(&self, other: &Chain) -> bool {
        self.entries.len() <= other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.block == b.block)
    }

    /// Length of the longest common prefix (in blocks) with `other`.
    pub fn common_prefix_len(&self, other: &Chain) -> usize {
        self.entries
            .iter()
            .zip(&other.entries)
            .take_while(|(a, b)| a.block == b.block)
            .count()
    }

    /// Checks the paper's `c`-strict-ordering between two honest ledgers:
    /// with `|C1| ≤ |C2|`, `C1^{⌊c} ⊆ C2^{⌊c}` must hold.
    pub fn c_strict_ordering(c1: &Chain, c2: &Chain, c: usize) -> bool {
        let (shorter, longer) = if c1.len() <= c2.len() {
            (c1, c2)
        } else {
            (c2, c1)
        };
        shorter.drop_suffix(c).is_prefix_of(&longer.drop_suffix(c))
    }

    /// Whether a transaction is included in any block (at any status).
    pub fn contains_tx(&self, id: TxId) -> bool {
        self.entries.iter().any(|e| e.block.contains_tx(id))
    }

    /// Whether a transaction is included in a *final* block.
    pub fn contains_tx_final(&self, id: TxId) -> bool {
        self.entries
            .iter()
            .filter(|e| e.status == BlockStatus::Final)
            .any(|e| e.block.contains_tx(id))
    }

    /// Iterates over entries from genesis to tip.
    pub fn iter(&self) -> impl Iterator<Item = &BlockEntry> {
        self.entries.iter()
    }

    /// Detects disagreement (`σ_Fork`) between two ledgers: a height at which
    /// both have a block but the blocks differ. Returns the first such height.
    ///
    /// The paper's fork state compares *confirmed* blocks; pass
    /// `final_only = true` to restrict to finalized entries.
    pub fn find_fork(a: &Chain, b: &Chain, final_only: bool) -> Option<Height> {
        let upto = if final_only {
            (a.final_height().min(b.final_height()) + 1) as usize
        } else {
            a.len().min(b.len())
        };
        for h in 0..upto {
            if a.entries[h].block != b.entries[h].block {
                return Some(Height(h as u64));
            }
        }
        None
    }
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chain[h={} f={}]", self.height(), self.final_height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Round, Transaction};

    fn block_on(chain: &Chain, round: u64, tx_ids: &[u64]) -> Block {
        let txs = tx_ids
            .iter()
            .map(|&i| Transaction::new(i, NodeId(0), vec![]))
            .collect();
        Block::new(Round(round), chain.tip(), NodeId((round % 4) as usize), txs)
    }

    fn chain_of(rounds: usize) -> Chain {
        let mut c = Chain::new(Block::genesis());
        for r in 0..rounds {
            let b = block_on(&c, r as u64 + 1, &[r as u64]);
            c.append_tentative(b).unwrap();
        }
        c
    }

    #[test]
    fn genesis_chain_has_height_zero() {
        let c = Chain::new(Block::genesis());
        assert_eq!(c.height(), 0);
        assert_eq!(c.final_height(), 0);
        assert!(!c.is_empty());
    }

    #[test]
    fn append_checks_parent() {
        let mut c = Chain::new(Block::genesis());
        let bad = Block::new(Round(1), Digest::of_bytes(b"junk"), NodeId(0), vec![]);
        assert!(matches!(
            c.append_tentative(bad),
            Err(ChainError::ParentMismatch { .. })
        ));
    }

    #[test]
    fn finalize_upto_finalizes_prefix() {
        let mut c = chain_of(3);
        assert_eq!(c.final_height(), 0);
        c.finalize_upto(Height(2)).unwrap();
        assert_eq!(c.final_height(), 2);
        assert_eq!(c.at(Height(1)).unwrap().status, BlockStatus::Final);
        assert_eq!(c.at(Height(3)).unwrap().status, BlockStatus::Tentative);
    }

    #[test]
    fn finalize_above_tip_errors() {
        let mut c = chain_of(1);
        assert!(matches!(
            c.finalize_upto(Height(5)),
            Err(ChainError::NoSuchHeight(_))
        ));
    }

    #[test]
    fn rollback_returns_tentative_suffix() {
        let mut c = chain_of(4);
        c.finalize_upto(Height(2)).unwrap();
        let rolled = c.rollback_tentative();
        assert_eq!(rolled.len(), 2);
        assert_eq!(c.height(), 2);
        assert_eq!(c.final_height(), 2);
    }

    #[test]
    fn rollback_on_all_final_is_noop() {
        let mut c = chain_of(2);
        c.finalize_upto(Height(2)).unwrap();
        assert!(c.rollback_tentative().is_empty());
        assert_eq!(c.height(), 2);
    }

    #[test]
    fn drop_suffix_keeps_genesis() {
        let c = chain_of(3);
        assert_eq!(c.drop_suffix(2).height(), 1);
        assert_eq!(c.drop_suffix(100).height(), 0, "never drops genesis");
    }

    #[test]
    fn prefix_relation() {
        let c4 = chain_of(4);
        let c2 = c4.drop_suffix(2);
        assert!(c2.is_prefix_of(&c4));
        assert!(!c4.is_prefix_of(&c2));
        assert_eq!(c2.common_prefix_len(&c4), 3); // genesis + 2 blocks
    }

    #[test]
    fn c_strict_ordering_holds_for_shared_history() {
        let c5 = chain_of(5);
        let c3 = c5.drop_suffix(2);
        assert!(Chain::c_strict_ordering(&c3, &c5, 0));
        assert!(Chain::c_strict_ordering(&c5, &c3, 0), "order-insensitive");
    }

    #[test]
    fn c_strict_ordering_detects_divergence_within_window() {
        let base = chain_of(2);
        let mut a = base.clone();
        let mut b = base.clone();
        a.append_tentative(block_on(&a, 3, &[100])).unwrap();
        b.append_tentative(block_on(&b, 3, &[200])).unwrap();
        assert!(!Chain::c_strict_ordering(&a, &b, 0));
        // Divergence only in the last block is tolerated at c = 1.
        assert!(Chain::c_strict_ordering(&a, &b, 1));
    }

    #[test]
    fn find_fork_detects_divergence() {
        let base = chain_of(2);
        let mut a = base.clone();
        let mut b = base.clone();
        a.append_tentative(block_on(&a, 3, &[100])).unwrap();
        b.append_tentative(block_on(&b, 3, &[200])).unwrap();
        assert_eq!(Chain::find_fork(&a, &b, false), Some(Height(3)));
        // Not a fork on *final* blocks until both finalize the divergent block.
        assert_eq!(Chain::find_fork(&a, &b, true), None);
        a.finalize_upto(Height(3)).unwrap();
        b.finalize_upto(Height(3)).unwrap();
        assert_eq!(Chain::find_fork(&a, &b, true), Some(Height(3)));
    }

    #[test]
    fn contains_tx_distinguishes_finality() {
        let mut c = Chain::new(Block::genesis());
        let b = block_on(&c, 1, &[42]);
        c.append_tentative(b).unwrap();
        assert!(c.contains_tx(TxId(42)));
        assert!(!c.contains_tx_final(TxId(42)));
        c.finalize_upto(Height(1)).unwrap();
        assert!(c.contains_tx_final(TxId(42)));
    }
}
