//! Transactions: the payload that blocks carry and censorship targets.

use crate::NodeId;
use std::fmt;

/// Globally unique transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TxId(pub u64);

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl From<u64> for TxId {
    fn from(value: u64) -> Self {
        TxId(value)
    }
}

/// A state-change request submitted by a client/sender.
///
/// The censorship-resistance property ((t,k)-censorship resistance,
/// Definition 2) is stated over transactions: if all honest players have
/// `tx` as input, eventually some finalized block contains `tx`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Unique id.
    pub id: TxId,
    /// Submitting player (or client mapped to a player).
    pub sender: NodeId,
    /// Opaque payload bytes (size matters for wire accounting only).
    pub payload: Vec<u8>,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(id: u64, sender: NodeId, payload: Vec<u8>) -> Self {
        Transaction {
            id: TxId(id),
            sender,
            payload,
        }
    }

    /// Wire size: id + sender + payload bytes.
    pub fn wire_bytes(&self) -> usize {
        8 + 8 + self.payload.len()
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tx({}, from {}, {}B)",
            self.id,
            self.sender,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_includes_payload() {
        let tx = Transaction::new(1, NodeId(0), vec![0; 10]);
        assert_eq!(tx.wire_bytes(), 26);
    }

    #[test]
    fn tx_equality_is_structural() {
        let a = Transaction::new(1, NodeId(0), vec![1]);
        let b = Transaction::new(1, NodeId(0), vec![1]);
        let c = Transaction::new(1, NodeId(0), vec![2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
