//! Core data types shared by every crate in the pRFT reproduction.
//!
//! This crate is dependency-free and holds the vocabulary of the system:
//! identifiers ([`NodeId`], [`Round`], [`Height`]), content-address digests
//! ([`Digest`]), [`Transaction`]s, [`Block`]s, and the per-player [`Chain`]
//! (the ledger `C_i` of the paper) with *tentative*/*final* status and the
//! `C^{⌊c}` prefix operations used by the `c`-strict-ordering and
//! common-prefix properties.
//!
//! # Example
//!
//! ```
//! use prft_types::{Block, Chain, Digest, NodeId, Round, Transaction};
//!
//! let genesis = Block::genesis();
//! let mut chain = Chain::new(genesis.clone());
//! let tx = Transaction::new(1, NodeId(0), b"pay alice 5".to_vec());
//! let block = Block::new(Round(0), genesis.id(), NodeId(0), vec![tx]);
//! chain.append_tentative(block).unwrap();
//! assert_eq!(chain.height(), 1);
//! assert_eq!(chain.final_height(), 0); // only genesis is final so far
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod encode;
mod id;
mod mempool;
mod transaction;

pub use chain::{BlockEntry, BlockStatus, Chain, ChainError};
pub use encode::Encoder;
pub use id::{Digest, Height, NodeId, Round};
pub use mempool::{Mempool, MempoolError};
pub use transaction::{Transaction, TxId};

use std::fmt;

/// A block: the unit of agreement in Atomic Broadcast.
///
/// Each block points to its parent by [`Digest`] and carries the round it was
/// proposed in, the proposer, and a batch of transactions. The block's own
/// identity is the digest of its canonical encoding (computed via
/// [`Block::id`]). Digests here are *content addresses*; protocol signatures
/// always go through `prft-crypto`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    /// The consensus round in which this block was proposed.
    pub round: Round,
    /// Digest of the parent block (the block agreed immediately before).
    pub parent: Digest,
    /// The proposing leader.
    pub proposer: NodeId,
    /// The transaction batch.
    pub txs: Vec<Transaction>,
}

impl Block {
    /// The genesis block: round 0 sentinel with no parent and no payload.
    pub fn genesis() -> Self {
        Block {
            round: Round(0),
            parent: Digest::ZERO,
            proposer: NodeId(0),
            txs: Vec::new(),
        }
    }

    /// Creates a block proposed in `round` on top of `parent` by `proposer`.
    pub fn new(round: Round, parent: Digest, proposer: NodeId, txs: Vec<Transaction>) -> Self {
        Block {
            round,
            parent,
            proposer,
            txs,
        }
    }

    /// Returns whether this is the genesis sentinel.
    pub fn is_genesis(&self) -> bool {
        self.parent == Digest::ZERO && self.round == Round(0) && self.txs.is_empty()
    }

    /// Canonical byte encoding used for hashing and signing.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u64(self.round.0);
        enc.bytes(&self.parent.0);
        enc.u64(self.proposer.0 as u64);
        enc.u64(self.txs.len() as u64);
        for tx in &self.txs {
            enc.u64(tx.id.0);
            enc.u64(tx.sender.0 as u64);
            enc.bytes(&tx.payload);
        }
        enc.into_bytes()
    }

    /// Content address of the block (digest of the canonical encoding).
    ///
    /// The paper writes `h_l := H(Block || r)`; the round is part of the
    /// canonical encoding, so signed block hashes cannot be replayed across
    /// rounds (paper, footnote 11).
    pub fn id(&self) -> Digest {
        Digest::of_bytes(&self.canonical_bytes())
    }

    /// Returns true if the block contains a transaction with the given id.
    pub fn contains_tx(&self, id: TxId) -> bool {
        self.txs.iter().any(|t| t.id == id)
    }

    /// Size of the block in "wire bytes" for message-size accounting.
    pub fn wire_bytes(&self) -> usize {
        8 + 32 + 8 + self.txs.iter().map(Transaction::wire_bytes).sum::<usize>()
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Block")
            .field("round", &self.round)
            .field("proposer", &self.proposer)
            .field("txs", &self.txs.len())
            .field("id", &self.id())
            .finish()
    }
}

#[cfg(test)]
mod block_tests {
    use super::*;

    #[test]
    fn genesis_is_genesis() {
        assert!(Block::genesis().is_genesis());
        let b = Block::new(Round(0), Digest::ZERO, NodeId(0), vec![]);
        assert!(b.is_genesis());
    }

    #[test]
    fn id_changes_with_round() {
        let a = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![]);
        let b = Block::new(Round(2), Digest::ZERO, NodeId(0), vec![]);
        assert_ne!(a.id(), b.id(), "round is hashed, preventing replay");
    }

    #[test]
    fn id_changes_with_content() {
        let tx = Transaction::new(7, NodeId(1), vec![1, 2, 3]);
        let a = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![]);
        let b = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![tx]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn id_is_deterministic() {
        let tx = Transaction::new(7, NodeId(1), vec![1, 2, 3]);
        let a = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![tx.clone()]);
        let b = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![tx]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn contains_tx_works() {
        let tx = Transaction::new(7, NodeId(1), vec![1]);
        let b = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![tx]);
        assert!(b.contains_tx(TxId(7)));
        assert!(!b.contains_tx(TxId(8)));
    }

    #[test]
    fn wire_bytes_counts_payload() {
        let tx = Transaction::new(7, NodeId(1), vec![0u8; 100]);
        let empty = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![]);
        let full = Block::new(Round(1), Digest::ZERO, NodeId(0), vec![tx]);
        assert!(full.wire_bytes() > empty.wire_bytes() + 100);
    }
}
