//! Canonical byte encoding for hashing and signing.
//!
//! Every signed or hashed payload in the system is first rendered into a
//! deterministic byte string with [`Encoder`]. The format is
//! length-prefixed little-endian, so distinct structures never encode to the
//! same bytes (no ambiguity between e.g. `["ab","c"]` and `["a","bc"]`).

/// A small canonical encoder: deterministic, prefix-free where it matters.
///
/// # Example
/// ```
/// use prft_types::Encoder;
/// let mut enc = Encoder::new();
/// enc.u64(7);
/// enc.bytes(b"payload");
/// let bytes = enc.into_bytes();
/// assert_eq!(bytes.len(), 8 + 8 + 7); // u64 + length prefix + payload
/// ```
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Appends a `u64` in little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a domain-separation tag (length-prefixed ASCII label).
    ///
    /// Used so that e.g. a `Vote` payload can never be confused with a
    /// `Commit` payload even if their fields coincide.
    pub fn tag(&mut self, label: &str) -> &mut Self {
        self.bytes(label.as_bytes())
    }

    /// Consumes the encoder and returns the canonical bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length of the encoding.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_is_little_endian() {
        let mut e = Encoder::new();
        e.u64(0x0102_0304_0506_0708);
        assert_eq!(
            e.into_bytes(),
            vec![0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]
        );
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let mut a = Encoder::new();
        a.bytes(b"ab").bytes(b"c");
        let mut b = Encoder::new();
        b.bytes(b"a").bytes(b"bc");
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn tags_separate_domains() {
        let mut a = Encoder::new();
        a.tag("Vote").u64(1);
        let mut b = Encoder::new();
        b.tag("Commit").u64(1);
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn len_and_is_empty() {
        let mut e = Encoder::new();
        assert!(e.is_empty());
        e.u8(1);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
    }
}
