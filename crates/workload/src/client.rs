//! The client actor: an open-loop transaction source with per-tx
//! retry/timeout state, driven through the same event queue as the
//! committee it loads.

use crate::arrival::ArrivalModel;
use crate::retry::{RejectAction, RetryPolicy};
use crate::spec::WorkloadSpec;
use prft_core::PrftMsg;
use prft_sim::{Context, Node, SimTime, TimerId};
use prft_types::{NodeId, Transaction, TxId};
use std::collections::HashMap;

/// Base of the client transaction-id namespace: far above anything the
/// scenario layer injects by hand, so workload txs never collide with
/// scripted ones.
pub const CLIENT_TX_BASE: u64 = 1 << 32;

/// Id stride per client: each client owns a disjoint window of this many
/// transaction ids.
pub const CLIENT_TX_STRIDE: u64 = 1 << 20;

/// Counters a client keeps about its own traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Distinct transactions generated (not counting retries).
    pub submitted: u64,
    /// Transactions acknowledged as finalized.
    pub committed: u64,
    /// Transactions given up (attempts exhausted or dropped on reject).
    pub dropped: u64,
    /// Resubmissions after a timeout or requeued rejection.
    pub retries: u64,
    /// `TxRejected` backpressure signals received.
    pub backpressure_rejects: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    tx: Transaction,
    /// Submission attempts performed so far (≥ 1 once sent).
    attempt: u32,
    submitted_at: SimTime,
    /// Replica index of the first submission; retries rotate from here.
    first_target: usize,
    timer: TimerId,
}

#[derive(Debug, Clone, Copy)]
enum Purpose {
    Arrival,
    Retry(TxId),
}

/// A single open-loop client: generates transactions on its
/// [`ArrivalModel`] schedule, submits them round-robin across the
/// committee, and retries per its [`RetryPolicy`] until each transaction
/// is either acknowledged (`TxCommitted`) or given up.
///
/// Clients are full simulation actors (they live behind the committee in
/// the same node population), so their traffic interleaves with protocol
/// messages under the engine's deterministic dispatch order.
#[derive(Debug, Clone)]
pub struct Client {
    me: NodeId,
    committee_n: usize,
    index: usize,
    arrival: ArrivalModel,
    retry: RetryPolicy,
    txs_total: u64,
    payload_bytes: usize,
    next_seq: u64,
    in_flight: HashMap<TxId, InFlight>,
    purposes: HashMap<TimerId, Purpose>,
    stats: ClientStats,
    /// Commit latencies in ticks, in commit order.
    latencies: Vec<u64>,
}

impl Client {
    /// Creates client number `index` of the population, running as
    /// simulation node `me`, against a committee of `committee_n`
    /// replicas.
    pub fn new(me: NodeId, committee_n: usize, index: usize, spec: &WorkloadSpec) -> Self {
        assert!(committee_n > 0, "a client needs a committee to talk to");
        assert!(
            spec.txs_per_client < CLIENT_TX_STRIDE,
            "txs_per_client must fit the per-client id window"
        );
        Client {
            me,
            committee_n,
            index,
            arrival: spec.arrival,
            retry: spec.retry,
            txs_total: spec.txs_per_client,
            payload_bytes: spec.payload_bytes,
            next_seq: 0,
            in_flight: HashMap::new(),
            purposes: HashMap::new(),
            stats: ClientStats::default(),
            latencies: Vec::new(),
        }
    }

    /// This client's counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Transactions still awaiting an ack (neither committed nor dropped).
    pub fn pending(&self) -> u64 {
        self.in_flight.len() as u64
    }

    /// Commit latencies (ticks), in the order the acks arrived.
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }

    fn tx_id(&self, seq: u64) -> u64 {
        CLIENT_TX_BASE + self.index as u64 * CLIENT_TX_STRIDE + seq
    }

    fn arm_arrival(&mut self, ctx: &mut Context<PrftMsg>) {
        let delay = self.arrival.next_delay(ctx.now(), ctx.rng());
        let timer = ctx.set_timer(delay);
        self.purposes.insert(timer, Purpose::Arrival);
    }

    fn submit_next(&mut self, ctx: &mut Context<PrftMsg>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tx = Transaction::new(self.tx_id(seq), self.me, vec![0xABu8; self.payload_bytes]);
        // Stagger first targets by client index so a synchronized arrival
        // wave spreads over the committee instead of mobbing replica 0.
        let first_target = (self.index + seq as usize) % self.committee_n;
        ctx.send(NodeId(first_target), PrftMsg::Submit { tx: tx.clone() });
        let timer = ctx.set_timer(self.retry.delay_for(0));
        self.purposes.insert(timer, Purpose::Retry(tx.id));
        self.in_flight.insert(
            tx.id,
            InFlight {
                tx,
                attempt: 1,
                submitted_at: ctx.now(),
                first_target,
                timer,
            },
        );
        self.stats.submitted += 1;
    }

    /// Resends an in-flight tx to the next replica in its rotation, or
    /// gives it up if the attempt budget is spent.
    fn retry_or_drop(&mut self, ctx: &mut Context<PrftMsg>, id: TxId) {
        let Some(f) = self.in_flight.get_mut(&id) else {
            return; // already committed or dropped
        };
        if f.attempt >= self.retry.max_attempts {
            self.in_flight.remove(&id);
            self.stats.dropped += 1;
            return;
        }
        let target = (f.first_target + f.attempt as usize) % self.committee_n;
        let tx = f.tx.clone();
        f.attempt += 1;
        let attempt = f.attempt;
        ctx.send(NodeId(target), PrftMsg::Submit { tx });
        let timer = ctx.set_timer(self.retry.delay_for(attempt - 1));
        self.purposes.insert(timer, Purpose::Retry(id));
        self.in_flight.get_mut(&id).expect("still present").timer = timer;
        self.stats.retries += 1;
    }
}

impl Node for Client {
    type Msg = PrftMsg;

    fn on_start(&mut self, ctx: &mut Context<PrftMsg>) {
        if self.txs_total > 0 {
            self.arm_arrival(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<PrftMsg>, _from: NodeId, msg: PrftMsg) {
        match msg {
            PrftMsg::TxCommitted { id } => {
                // Duplicate acks (retry spread across replicas) are benign.
                if let Some(f) = self.in_flight.remove(&id) {
                    ctx.cancel_timer(f.timer);
                    self.purposes.remove(&f.timer);
                    self.latencies.push(ctx.now().0 - f.submitted_at.0);
                    self.stats.committed += 1;
                }
            }
            PrftMsg::TxRejected { id } => {
                self.stats.backpressure_rejects += 1;
                let Some(f) = self.in_flight.get(&id) else {
                    return;
                };
                match self.retry.on_reject {
                    RejectAction::Drop => {
                        let f = self.in_flight.remove(&id).expect("probed above");
                        ctx.cancel_timer(f.timer);
                        self.purposes.remove(&f.timer);
                        self.stats.dropped += 1;
                    }
                    RejectAction::Requeue => {
                        // Replace the pending timeout with the backoff
                        // delay for the *next* attempt: the rejection
                        // already answered this one.
                        let old = f.timer;
                        ctx.cancel_timer(old);
                        self.purposes.remove(&old);
                        let delay = self.retry.delay_for(f.attempt);
                        let timer = ctx.set_timer(delay);
                        self.purposes.insert(timer, Purpose::Retry(id));
                        self.in_flight.get_mut(&id).expect("probed above").timer = timer;
                    }
                }
            }
            // Clients are not committee members; protocol traffic that
            // somehow reaches one is dropped.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<PrftMsg>, timer: TimerId) {
        match self.purposes.remove(&timer) {
            Some(Purpose::Arrival) => {
                if self.next_seq < self.txs_total {
                    self.submit_next(ctx);
                }
                if self.next_seq < self.txs_total {
                    self.arm_arrival(ctx);
                }
            }
            Some(Purpose::Retry(id)) => self.retry_or_drop(ctx, id),
            // A cancelled-then-fired timer cannot happen (the engine drops
            // cancelled timers); an unknown id is simply stale state.
            None => {}
        }
    }
}
