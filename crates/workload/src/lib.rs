//! # pRFT workload layer — open-loop client traffic
//!
//! Turns a bare committee simulation into a loaded system: a population of
//! deterministic client actors generates transactions on a configurable
//! arrival process ([`ArrivalModel`]), submits them round-robin across the
//! committee, retries on timeout with exponential backoff
//! ([`RetryPolicy`]), and reacts to mempool backpressure (`TxRejected`).
//! Clients are first-class simulation nodes: their timers and messages
//! drain through the same deterministic event queue as the protocol, so a
//! loaded run is byte-identical across thread counts and queue backends.
//!
//! The committee never broadcasts to clients — [`assemble`] pins the
//! simulation's broadcast domain to the committee, keeping protocol
//! fan-out O(n) while clients talk point-to-point.
//!
//! Per-transaction submit→commit latency is measured in virtual time and
//! summarized as nearest-rank percentiles ([`LatencySummary`]); run-level
//! aggregates ([`WorkloadRunStats`]) additionally carry mempool occupancy
//! and backpressure counters and obey the conservation invariant
//! `submitted == committed + dropped + pending`.
//!
//! ## Quick start
//!
//! ```
//! use prft_core::{Config, Harness, NetworkChoice};
//! use prft_sim::{QueueBackend, SimTime};
//! use prft_workload::{assemble, WorkloadRunStats, WorkloadSpec};
//!
//! let n = 8;
//! let spec = WorkloadSpec::steady(20, 400).txs_per_client(2);
//! // Build the committee as usual, then hand the replicas to the
//! // workload assembler (here via a throwaway harness build).
//! let replicas = prft_workload::committee(n, 42, Config::for_committee(n).with_max_rounds(40));
//! let mut sim = assemble(
//!     replicas,
//!     &spec,
//!     Box::new(prft_net::SynchronousNet::new(SimTime(10))),
//!     42,
//!     QueueBackend::Heap,
//! );
//! sim.run_until(SimTime(1_000_000));
//! let stats = WorkloadRunStats::collect(&sim);
//! assert!(stats.conserved());
//! assert_eq!(stats.submitted, 40);
//! assert!(stats.committed > 0, "load made it into finalized blocks");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod arrival;
mod client;
mod latency;
mod retry;
mod spec;
mod stats;

pub use actor::{assemble, Actor};
pub use arrival::ArrivalModel;
pub use client::{Client, ClientStats, CLIENT_TX_BASE, CLIENT_TX_STRIDE};
pub use latency::{percentile, LatencySummary};
pub use retry::{RejectAction, RetryPolicy};
pub use spec::WorkloadSpec;
pub use stats::WorkloadRunStats;

use prft_core::{Config, Honest, Replica};
use prft_crypto::KeyRegistry;

/// Builds an all-honest committee of `n` replicas with the same trusted
/// setup the scenario harness uses (`seed ^ 0x5eed`), ready for
/// [`assemble`]. Callers needing mixed behaviors or custom networks build
/// replicas through their own path and call [`assemble`] directly.
pub fn committee(n: usize, seed: u64, cfg: Config) -> Vec<Replica> {
    let (registry, keys) = KeyRegistry::trusted_setup(n, seed ^ 0x5eed);
    keys.into_iter()
        .map(|key| Replica::new(cfg.clone(), key, registry.clone(), Box::new(Honest)))
        .collect()
}
