//! Commit-latency accounting in virtual time: nearest-rank percentiles
//! over the submit→commit intervals observed by the client population.

/// Nearest-rank percentile over an **ascending-sorted** slice: the value at
/// rank `⌈p/100 · len⌉` (1-based), i.e. the smallest element such that at
/// least `p` percent of the sample is ≤ it. Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Percentile summary of one run's commit latencies, in ticks.
///
/// All fields are integers so the summary serializes byte-identically
/// regardless of thread count or queue backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of committed transactions the sample covers.
    pub count: u64,
    /// Median commit latency (nearest-rank).
    pub p50: u64,
    /// 90th-percentile commit latency.
    pub p90: u64,
    /// 99th-percentile commit latency.
    pub p99: u64,
    /// Worst observed commit latency.
    pub max: u64,
    /// Sum of all latencies (mean = `total / count`, left to readers so
    /// the summary stays integer-only).
    pub total: u64,
}

impl LatencySummary {
    /// Builds the summary from raw latency ticks (order irrelevant; the
    /// sample is sorted internally).
    pub fn from_ticks(mut ticks: Vec<u64>) -> Self {
        ticks.sort_unstable();
        LatencySummary {
            count: ticks.len() as u64,
            p50: percentile(&ticks, 50.0),
            p90: percentile(&ticks, 90.0),
            p99: percentile(&ticks, 99.0),
            max: ticks.last().copied().unwrap_or(0),
            total: ticks.iter().sum(),
        }
    }

    /// Mean latency in ticks, rounded to nearest (0 when empty).
    pub fn mean(&self) -> u64 {
        (self.total + self.count / 2)
            .checked_div(self.count)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_all_zero() {
        let s = LatencySummary::from_ticks(vec![]);
        assert_eq!(s, LatencySummary::default());
        assert_eq!(s.mean(), 0);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_ticks(vec![42]);
        assert_eq!((s.p50, s.p90, s.p99, s.max), (42, 42, 42, 42));
        assert_eq!(s.mean(), 42);
    }

    #[test]
    fn hand_computed_schedule() {
        // Ten latencies 10, 20, ..., 100: nearest-rank p50 is the 5th
        // value (50), p90 the 9th (90), p99 rounds up to the 10th (100).
        let ticks: Vec<u64> = (1..=10).map(|i| i * 10).collect();
        let s = LatencySummary::from_ticks(ticks);
        assert_eq!(s.count, 10);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.total, 550);
        assert_eq!(s.mean(), 55);
    }

    #[test]
    fn order_does_not_matter() {
        let a = LatencySummary::from_ticks(vec![5, 1, 9, 3, 7]);
        let b = LatencySummary::from_ticks(vec![9, 7, 5, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 5);
    }

    #[test]
    fn percentile_extremes() {
        let sorted = [1, 2, 3, 4];
        assert_eq!(percentile(&sorted, 0.0), 1, "p0 clamps to the minimum");
        assert_eq!(percentile(&sorted, 100.0), 4);
        assert_eq!(percentile(&sorted, 25.0), 1);
        assert_eq!(percentile(&sorted, 25.1), 2);
    }

    #[test]
    fn large_uniform_sample() {
        let ticks: Vec<u64> = (1..=1000).collect();
        let s = LatencySummary::from_ticks(ticks);
        assert_eq!(s.p50, 500);
        assert_eq!(s.p90, 900);
        assert_eq!(s.p99, 990);
    }
}
