//! Run-level workload aggregates: what a finished workload simulation
//! reports into `RunRecord`s and benchmark sweeps.

use crate::actor::Actor;
use crate::latency::LatencySummary;
use prft_sim::Simulation;

/// Aggregated workload observables for one finished run.
///
/// All fields are integers, assembled in node-id order from per-actor
/// state, so the struct (and anything serialized from it) is byte-identical
/// across thread counts and queue backends.
///
/// Conservation invariant: `submitted == committed + dropped + pending` —
/// every generated transaction is acknowledged, given up, or still waiting
/// when the run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkloadRunStats {
    /// Client actors in the population.
    pub clients: u64,
    /// Distinct transactions generated across all clients.
    pub submitted: u64,
    /// Transactions acknowledged as finalized.
    pub committed: u64,
    /// Transactions given up (attempt budget spent or dropped on reject).
    pub dropped: u64,
    /// Transactions still in flight when the run ended.
    pub pending: u64,
    /// Resubmissions (timeouts plus requeued rejections).
    pub retries: u64,
    /// Backpressure (`TxRejected`) signals clients received.
    pub backpressure_rejects: u64,
    /// Replica-side pushes rejected at mempool capacity.
    pub mempool_rejected_full: u64,
    /// Highest mempool occupancy any replica reached.
    pub mempool_peak_occupancy: u64,
    /// Submit→commit latency percentiles, in virtual-time ticks.
    pub latency: LatencySummary,
}

impl WorkloadRunStats {
    /// Gathers the aggregate from a finished workload simulation.
    pub fn collect(sim: &Simulation<Actor>) -> WorkloadRunStats {
        let mut out = WorkloadRunStats::default();
        let mut ticks: Vec<u64> = Vec::new();
        for node in sim.nodes() {
            match node {
                Actor::Client(c) => {
                    let s = c.stats();
                    out.clients += 1;
                    out.submitted += s.submitted;
                    out.committed += s.committed;
                    out.dropped += s.dropped;
                    out.pending += c.pending();
                    out.retries += s.retries;
                    out.backpressure_rejects += s.backpressure_rejects;
                    ticks.extend_from_slice(c.latencies());
                }
                Actor::Replica(r) => {
                    out.mempool_rejected_full += r.mempool().rejected_full();
                    out.mempool_peak_occupancy = out
                        .mempool_peak_occupancy
                        .max(r.mempool().peak_len() as u64);
                }
            }
        }
        out.latency = LatencySummary::from_ticks(ticks);
        out
    }

    /// Whether the conservation invariant holds.
    pub fn conserved(&self) -> bool {
        self.submitted == self.committed + self.dropped + self.pending
    }

    /// Committed transactions per 1000 ticks of virtual time (0 when the
    /// run had no duration).
    pub fn throughput_per_kilotick(&self, duration_ticks: u64) -> f64 {
        if duration_ticks == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / duration_ticks as f64
        }
    }
}
