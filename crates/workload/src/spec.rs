//! Declarative description of a client workload — the `workload:` section
//! of a scenario spec.

use crate::arrival::ArrivalModel;
use crate::retry::RetryPolicy;

/// A client population and the load it offers.
///
/// Everything is integer-valued and `Eq` so the spec participates in the
/// scenario fingerprint (`{:?}` canonical form) without platform drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of client actors appended after the committee.
    pub clients: usize,
    /// Transactions each client generates over the run (bounded so the
    /// simulation quiesces; must fit the per-client id window).
    pub txs_per_client: u64,
    /// Payload size per transaction, bytes (wire accounting only).
    pub payload_bytes: usize,
    /// When clients submit.
    pub arrival: ArrivalModel,
    /// How clients wait, back off, and give up.
    pub retry: RetryPolicy,
    /// Per-replica mempool bound (`None` = unbounded): the backpressure
    /// knob. Full pools answer `TxRejected`.
    pub mempool_capacity: Option<usize>,
    /// Overrides the committee's per-block batch limit for this run
    /// (`None` keeps [`prft_core::Config`]'s default); raising it is how
    /// high-throughput sweeps avoid being batch-limited.
    pub max_batch: Option<usize>,
}

impl WorkloadSpec {
    fn base(clients: usize, arrival: ArrivalModel) -> Self {
        WorkloadSpec {
            clients,
            txs_per_client: 4,
            payload_bytes: 32,
            arrival,
            retry: RetryPolicy::default(),
            mempool_capacity: None,
            max_batch: None,
        }
    }

    /// Steady open-loop load: every client submits each `interval` ticks.
    pub fn steady(clients: usize, interval: u64) -> Self {
        Self::base(clients, ArrivalModel::Steady { interval })
    }

    /// Poisson load with the given mean inter-arrival gap.
    pub fn poisson(clients: usize, mean: u64) -> Self {
        Self::base(clients, ArrivalModel::Poisson { mean })
    }

    /// On-off flood: bursts of `interval`-spaced submissions for `on`
    /// ticks, silent for `off` ticks.
    pub fn bursty(clients: usize, on: u64, off: u64, interval: u64) -> Self {
        Self::base(clients, ArrivalModel::Bursty { on, off, interval })
    }

    /// Sets how many transactions each client generates.
    #[must_use]
    pub fn txs_per_client(mut self, txs: u64) -> Self {
        self.txs_per_client = txs;
        self
    }

    /// Sets the transaction payload size in bytes.
    #[must_use]
    pub fn payload_bytes(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Sets the retry/timeout/backoff policy.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Bounds each replica's mempool (enables backpressure).
    #[must_use]
    pub fn mempool_capacity(mut self, capacity: usize) -> Self {
        self.mempool_capacity = Some(capacity);
        self
    }

    /// Overrides the per-block batch limit for this run.
    #[must_use]
    pub fn max_batch(mut self, batch: usize) -> Self {
        self.max_batch = Some(batch);
        self
    }

    /// Total transactions the population will generate.
    pub fn offered_txs(&self) -> u64 {
        self.clients as u64 * self.txs_per_client
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let w = WorkloadSpec::steady(100, 50)
            .txs_per_client(8)
            .payload_bytes(64)
            .mempool_capacity(256)
            .max_batch(128);
        assert_eq!(w.clients, 100);
        assert_eq!(w.arrival, ArrivalModel::Steady { interval: 50 });
        assert_eq!(w.txs_per_client, 8);
        assert_eq!(w.payload_bytes, 64);
        assert_eq!(w.mempool_capacity, Some(256));
        assert_eq!(w.max_batch, Some(128));
        assert_eq!(w.offered_txs(), 800);
    }

    #[test]
    fn debug_form_is_stable_for_fingerprinting() {
        let a = format!("{:?}", WorkloadSpec::poisson(10, 100));
        let b = format!("{:?}", WorkloadSpec::poisson(10, 100));
        assert_eq!(a, b);
        assert!(a.contains("Poisson"));
    }
}
