//! Client-side retry policy: how long to wait for a commit ack, how the
//! wait grows across attempts, and what a backpressure rejection means.

use prft_sim::SimTime;

/// What a client does when a replica answers `TxRejected` (mempool full).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectAction {
    /// Keep the transaction and retry it (against the next replica) after
    /// the backoff delay — the default, models a patient client.
    Requeue,
    /// Give the transaction up immediately and count it as dropped.
    Drop,
}

/// Per-transaction retry/timeout/backoff policy.
///
/// A client arms one timer per in-flight transaction. If no `TxCommitted`
/// arrives before the timer fires, the client resubmits to the *next*
/// replica (round-robin over the committee — leaders only propose from
/// their own mempool, so spreading retries is what bounds commit latency)
/// with the attempt counter bumped and the delay doubled up to
/// `max_backoff`. After `max_attempts` the transaction is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base wait before the first retry, in ticks (≥ 1).
    pub timeout: SimTime,
    /// Ceiling for the exponentially growing delay.
    pub max_backoff: SimTime,
    /// Total submission attempts per transaction (≥ 1) before giving up.
    pub max_attempts: u32,
    /// Reaction to a mempool-full rejection.
    pub on_reject: RejectAction,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimTime(400),
            max_backoff: SimTime(6400),
            max_attempts: 16,
            on_reject: RejectAction::Requeue,
        }
    }
}

impl RetryPolicy {
    /// Wait before retry number `attempt` (0-based: the delay armed right
    /// after attempt `attempt` was sent). Doubles per attempt, capped at
    /// `max_backoff`, never below one tick.
    pub fn delay_for(&self, attempt: u32) -> SimTime {
        let base = self.timeout.0.max(1);
        let shift = attempt.min(32);
        let raw = base.saturating_mul(1u64 << shift.min(63));
        SimTime(raw.min(self.max_backoff.0.max(base)).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_doubles_then_caps() {
        let p = RetryPolicy {
            timeout: SimTime(100),
            max_backoff: SimTime(500),
            max_attempts: 8,
            on_reject: RejectAction::Requeue,
        };
        assert_eq!(p.delay_for(0), SimTime(100));
        assert_eq!(p.delay_for(1), SimTime(200));
        assert_eq!(p.delay_for(2), SimTime(400));
        assert_eq!(p.delay_for(3), SimTime(500), "capped");
        assert_eq!(p.delay_for(30), SimTime(500), "still capped, no overflow");
    }

    #[test]
    fn delay_never_zero() {
        let p = RetryPolicy {
            timeout: SimTime(0),
            max_backoff: SimTime(0),
            max_attempts: 1,
            on_reject: RejectAction::Drop,
        };
        assert_eq!(p.delay_for(0), SimTime(1));
    }
}
