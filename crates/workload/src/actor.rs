//! The mixed node population of a workload run: committee replicas and
//! client actors sharing one simulation.

use crate::client::Client;
use crate::spec::WorkloadSpec;
use prft_core::{AsReplica, PrftMsg, Replica};
use prft_sim::{Context, LinkModel, Node, QueueBackend, Simulation, TimerId};
use prft_types::NodeId;

/// One actor of a workload simulation: either a committee replica
/// (node ids `0..n`) or an open-loop client (ids `n..n+clients`).
///
/// Both variants are boxed so the population vector stays slim — a
/// [`Replica`] is orders of magnitude larger than the enum tag.
///
/// `Clone` puts the mixed population on the same footing as the pure
/// committee for checkpoint/fork warm starts: `SimSnapshot<Actor>` needs
/// it exactly like `SimSnapshot<Replica>` does.
#[derive(Clone)]
pub enum Actor {
    /// A pRFT committee member.
    Replica(Box<Replica>),
    /// An open-loop workload client.
    Client(Box<Client>),
}

impl Actor {
    /// The client behind this actor, if it is one.
    pub fn as_client(&self) -> Option<&Client> {
        match self {
            Actor::Client(c) => Some(c),
            Actor::Replica(_) => None,
        }
    }

    /// The replica behind this actor, mutably (timeline events such as
    /// role changes and transaction injection need write access).
    pub fn as_replica_mut(&mut self) -> Option<&mut Replica> {
        match self {
            Actor::Replica(r) => Some(r),
            Actor::Client(_) => None,
        }
    }
}

impl AsReplica for Actor {
    fn as_replica(&self) -> Option<&Replica> {
        match self {
            Actor::Replica(r) => Some(r),
            Actor::Client(_) => None,
        }
    }
}

impl Node for Actor {
    type Msg = PrftMsg;

    fn on_start(&mut self, ctx: &mut Context<PrftMsg>) {
        match self {
            Actor::Replica(r) => r.on_start(ctx),
            Actor::Client(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<PrftMsg>, from: NodeId, msg: PrftMsg) {
        match self {
            Actor::Replica(r) => r.on_message(ctx, from, msg),
            Actor::Client(c) => c.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<PrftMsg>, timer: TimerId) {
        match self {
            Actor::Replica(r) => r.on_timer(ctx, timer),
            Actor::Client(c) => c.on_timer(ctx, timer),
        }
    }
}

/// Assembles a workload simulation: the committee first (broadcast domain
/// pinned to it, so protocol fan-out stays O(n) no matter how many clients
/// ride along), then `spec.clients` client actors.
///
/// `spec.mempool_capacity` is applied to every replica here;
/// `spec.max_batch` must be applied to the [`prft_core::Config`] *before*
/// the replicas are built (the config is frozen at construction).
pub fn assemble(
    mut replicas: Vec<Replica>,
    spec: &WorkloadSpec,
    network: Box<dyn LinkModel>,
    seed: u64,
    queue: QueueBackend,
) -> Simulation<Actor> {
    let n = replicas.len();
    assert!(n > 0, "workload needs a committee");
    for r in &mut replicas {
        r.mempool_mut().set_capacity(spec.mempool_capacity);
    }
    let mut actors: Vec<Actor> = replicas
        .into_iter()
        .map(|r| Actor::Replica(Box::new(r)))
        .collect();
    for i in 0..spec.clients {
        actors.push(Actor::Client(Box::new(Client::new(
            NodeId(n + i),
            n,
            i,
            spec,
        ))));
    }
    let mut sim = Simulation::with_backend(actors, network, seed, queue);
    sim.set_broadcast_domain(n);
    sim
}
