//! Open-loop arrival processes: when a client generates its next
//! transaction, independent of how the committee is doing (the defining
//! property of an open-loop workload).

use prft_sim::{SimRng, SimTime};

/// How a client spaces its transaction submissions in virtual time.
///
/// All variants are expressed in integer ticks so scenario fingerprints
/// stay platform-independent; only the Poisson draw touches floating
/// point, and that is derived from the node's own [`SimRng`] stream, so it
/// replays identically for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// One transaction every `interval` ticks.
    Steady {
        /// Inter-arrival gap in ticks (≥ 1).
        interval: u64,
    },
    /// Poisson process: exponential inter-arrival times with the given
    /// mean, drawn from the client's private randomness stream.
    Poisson {
        /// Mean inter-arrival gap in ticks (≥ 1).
        mean: u64,
    },
    /// On-off flood: during each `on` window the client submits every
    /// `interval` ticks, then stays silent for `off` ticks.
    Bursty {
        /// Length of the submitting window, in ticks (≥ 1).
        on: u64,
        /// Length of the silent window, in ticks.
        off: u64,
        /// Inter-arrival gap inside an on-window (≥ 1).
        interval: u64,
    },
}

impl ArrivalModel {
    /// Ticks from `now` until this client's next submission (always ≥ 1,
    /// so a client can never wedge the scheduler at a single instant).
    pub fn next_delay(&self, now: SimTime, rng: &mut SimRng) -> SimTime {
        let ticks = match *self {
            ArrivalModel::Steady { interval } => interval.max(1),
            ArrivalModel::Poisson { mean } => {
                // Inverse-CDF sampling; `unit()` is in [0, 1) so the
                // argument of `ln` stays strictly positive.
                let u = rng.unit();
                let d = -(mean.max(1) as f64) * (1.0 - u).ln();
                (d.round() as u64).max(1)
            }
            ArrivalModel::Bursty { on, off, interval } => {
                let on = on.max(1);
                let interval = interval.max(1);
                let cycle = on + off;
                let phase = now.0 % cycle;
                if phase >= on {
                    // Silent window: wake at the start of the next burst.
                    cycle - phase
                } else if phase + interval > on && off > 0 {
                    // The next beat would land in the silent window; skip
                    // straight to the next burst instead.
                    cycle - phase
                } else {
                    interval
                }
            }
        };
        SimTime(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_constant() {
        let mut rng = SimRng::new(1);
        let m = ArrivalModel::Steady { interval: 7 };
        for t in 0..50 {
            assert_eq!(m.next_delay(SimTime(t), &mut rng), SimTime(7));
        }
    }

    #[test]
    fn steady_zero_interval_clamps_to_one() {
        let mut rng = SimRng::new(1);
        let m = ArrivalModel::Steady { interval: 0 };
        assert_eq!(m.next_delay(SimTime(0), &mut rng), SimTime(1));
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = SimRng::new(42);
        let m = ArrivalModel::Poisson { mean: 100 };
        let total: u64 = (0..10_000)
            .map(|_| m.next_delay(SimTime(0), &mut rng).0)
            .sum();
        let mean = total as f64 / 10_000.0;
        assert!((80.0..120.0).contains(&mean), "observed mean {mean}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let m = ArrivalModel::Poisson { mean: 50 };
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            assert_eq!(
                m.next_delay(SimTime(0), &mut a),
                m.next_delay(SimTime(0), &mut b)
            );
        }
    }

    #[test]
    fn bursty_fires_inside_window_and_skips_silence() {
        let mut rng = SimRng::new(1);
        let m = ArrivalModel::Bursty {
            on: 10,
            off: 90,
            interval: 2,
        };
        // Inside the burst: regular beat.
        assert_eq!(m.next_delay(SimTime(0), &mut rng), SimTime(2));
        assert_eq!(m.next_delay(SimTime(4), &mut rng), SimTime(2));
        // Last beat would cross into silence: jump to the next cycle.
        assert_eq!(m.next_delay(SimTime(9), &mut rng), SimTime(91));
        // In the silent window: wake exactly at the next burst start.
        assert_eq!(m.next_delay(SimTime(50), &mut rng), SimTime(50));
        assert_eq!(m.next_delay(SimTime(99), &mut rng), SimTime(1));
    }

    #[test]
    fn bursty_with_no_off_is_steady() {
        let mut rng = SimRng::new(1);
        let m = ArrivalModel::Bursty {
            on: 10,
            off: 0,
            interval: 3,
        };
        for t in 0..30 {
            assert_eq!(m.next_delay(SimTime(t), &mut rng), SimTime(3));
        }
    }
}
