//! The pRFT replica: one player's protocol state machine (paper Figure 1 +
//! Section 5.2 view change).
//!
//! Every player — honest, byzantine, or rational — runs this machine;
//! deviation is injected through [`Behavior`] hooks at each decision point.
//! The normal-path round is:
//!
//! 1. **Propose** — the round's leader (`r mod n`) broadcasts a signed block.
//! 2. **Vote** — players validate and broadcast a vote ballot on its hash.
//! 3. **Commit** — on `n − t0` votes for one value, broadcast a commit
//!    certificate; on `n − t0` commits the block is **tentative**.
//! 4. **Reveal** — broadcast the commit certificates observed (`W_i`);
//!    scan everyone's reveals for double signatures (`ConstructProof`).
//!    * `|D_i| > t0` → broadcast **Expose** (PoF), burn deposits, abandon
//!      the round;
//!    * `|M_i| ≥ n − t0` → broadcast **Final**: the block is finalized;
//!    * `> n/2` Final messages also finalize (catch-up).
//!
//! Timeouts, leader equivocation, or `t0+1` observed double-signers trigger
//! the view-change sub-protocol.
//!
//! ## Reproduction decisions (see DESIGN.md §4)
//!
//! * Phase timeouts route through view change (Section 5.2) rather than the
//!   `⊥`-commit branch of Figure 1 — both abandon the round; one code path.
//! * A player that receives `t0 + 1` view-change requests joins the view
//!   change, and one that receives a valid commit-view echoes it; both are
//!   standard amplifications needed for the Consistency property (Claim 2)
//!   when players time out at different moments.
//! * Round synchronization: messages carry their (signed) round; observing
//!   `t0 + 1` distinct players at a higher round fast-forwards a laggard
//!   (at least one of them is non-byzantine). Finalized blocks are fetched
//!   via the persistent `Final` tallies, so laggards reconcile their chains.

use crate::behavior::{BallotAction, Behavior, ProposeAction};
use crate::collateral::CollateralLedger;
use crate::config::Config;
use crate::messages::{
    view_change_cert_digest, Ballot, CommitCert, CommitViewContent, Phase, PrftMsg, SignedBallot,
    ViewChangeReq,
};
use crate::pof::{verify_expose, FraudDetector};
use crate::verify::VerifyCache;
use prft_crypto::{KeyRegistry, SecretKey, Signed, VerifyMode};
use prft_sim::{Context, KindStats, Node, SimTime, TimerId, WireMessage};
use prft_types::{
    Block, Chain, Digest, Height, Mempool, MempoolError, NodeId, Round, Transaction, TxId,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Observable counters for experiments.
#[derive(Debug, Clone, Default)]
pub struct ReplicaStats {
    /// Rounds this replica has entered.
    pub rounds_entered: u64,
    /// Blocks this replica finalized through its own quorum conditions.
    pub finalized_own: u64,
    /// Blocks finalized through the `> n/2` Final catch-up rule.
    pub finalized_catchup: u64,
    /// View changes completed (round abandoned via commit-view quorum).
    pub view_changes: u64,
    /// `Expose` messages this replica broadcast.
    pub exposes_sent: u64,
    /// Valid `Expose` messages received (incl. own).
    pub exposes_applied: u64,
    /// Round fast-forwards via the `t0+1` round-sync rule.
    pub round_syncs: u64,
    /// Proposals rejected at validation.
    pub invalid_proposals: u64,
    /// Times a conflicting proposal pair from the leader was observed.
    pub leader_equivocations: u64,
    /// Finalization times `(round, time)` for latency measurements.
    pub finalize_times: Vec<(Round, SimTime)>,
    /// Rounds abandoned via completed view change.
    pub view_changed_rounds: Vec<Round>,
    /// Rounds abandoned via a valid `Expose`.
    pub exposed_rounds: Vec<Round>,
    /// Fraud-detector convictions this replica produced (each `observe`
    /// call that returned fresh equivocation evidence).
    pub fraud_detections: u64,
    /// Every message delivered to this replica, counted and byte-metered
    /// by kind. Feeds the `recv.P<i>.<kind>.*` observability counters and
    /// cross-checks the engine's send-side [`prft_sim::Meter`].
    pub recv_msgs: BTreeMap<&'static str, KindStats>,
    /// Phase-transition log `(round, phase, entered_at)`: each entry opens
    /// a span that the next entry (or the end of the run) closes. The
    /// protocol phases plus `ViewChange` — the raw material for the
    /// Chrome-trace export (`prft_core::obs::chrome_trace`).
    pub phase_transitions: Vec<(Round, Phase, SimTime)>,
}

impl ReplicaStats {
    /// Records one delivered message of `kind` with `bytes` on the wire.
    fn record_recv(&mut self, kind: &'static str, bytes: usize) {
        let e = self.recv_msgs.entry(kind).or_default();
        e.count += 1;
        e.bytes += bytes as u64;
    }
}

/// One player's pRFT state machine. Implements [`prft_sim::Node`].
///
/// `Clone` supports checkpoint/fork warm starts: the clone is a deep copy
/// except for behavior-shared coordination state (`Arc`-held blackboards),
/// which stays aliased until the fork driver calls
/// [`Replica::rebind_behavior_state`] with its own copy, and `Arc`-held
/// certificates, which are deliberately shared so the clone's
/// address-keyed [`VerifyCache`] stays valid.
#[derive(Clone)]
pub struct Replica {
    cfg: Config,
    key: SecretKey,
    registry: KeyRegistry,
    behavior: Box<dyn Behavior>,

    chain: Chain,
    mempool: Mempool,
    collateral: CollateralLedger,
    /// Every valid block seen, by hash (for catch-up reconstruction).
    block_store: HashMap<Digest, Block>,
    /// Persistent Final tallies by value (survive round changes: laggards
    /// finalize from them; the signed ballots are kept so they can be
    /// forwarded to recovering peers).
    final_tally: HashMap<Digest, BTreeMap<NodeId, SignedBallot>>,
    /// Signed propose ballots per block (for laggard catch-up).
    propose_store: HashMap<Digest, SignedBallot>,
    /// Highest round at which we already helped each laggard (rate limit).
    helped_at: HashMap<NodeId, Round>,
    /// Whether we already asked for sync this round (rate limit).
    sync_requested: bool,
    /// Client-submitted tx ids seen in finalized blocks: answers retried
    /// `Submit`s with an immediate ack instead of re-pooling an
    /// already-final tx (exactly-once inclusion under client retry).
    finalized_client_txs: HashSet<TxId>,
    /// Chain height up to which finalized blocks have been scanned for
    /// client-tx acknowledgements (the scan is monotone: finalized
    /// prefixes never roll back).
    acked_upto: u64,

    round: Round,
    phase: Phase,
    consecutive_failures: u32,
    passive: bool,
    rounds_done: u64,
    timer: Option<(TimerId, Round, Phase)>,

    // ---- per-round state ----
    proposal: Option<SignedBallot>,
    /// Every valid propose ballot seen this round, by value (an
    /// equivocating leader contributes several).
    proposals_seen: HashMap<Digest, SignedBallot>,
    votes: HashMap<Digest, BTreeMap<NodeId, SignedBallot>>,
    /// Per-value signer bitmask mirroring `votes` membership, so the
    /// per-certificate vote harvest skips its tree probe for every vote
    /// already counted (the common case once the first certificate of a
    /// round has been harvested).
    vote_present: HashMap<Digest, Vec<bool>>,
    /// Per-value signer bitmask of vote ballots already fed to the fraud
    /// detector out of certificates this round (fast verify mode only; see
    /// `observe_cert_votes`).
    votes_observed: HashMap<Digest, Vec<bool>>,
    commits: HashMap<Digest, BTreeMap<NodeId, Arc<CommitCert>>>,
    reveals: HashMap<Digest, BTreeSet<NodeId>>,
    detector: FraudDetector,
    voted: bool,
    committed: bool,
    revealed: bool,
    final_sent: bool,
    exposed: bool,
    tentative: Option<(Digest, Height)>,
    /// Byzantine split commits waiting for their side's vote certificate:
    /// (value, recipients).
    // BTreeSet so queued split sides emit in a stable recipient order —
    // deterministic replay is a workspace-wide invariant.
    pending_commit_splits: Vec<(Digest, BTreeSet<NodeId>)>,
    vc_reqs: BTreeMap<NodeId, Signed<ViewChangeReq>>,
    vc_sent: bool,
    cv_senders: BTreeSet<NodeId>,
    cv_sent: bool,
    discontinued: bool,

    // ---- cross-round machinery ----
    future: BTreeMap<u64, Vec<(NodeId, PrftMsg)>>,
    peer_round: Vec<u64>,
    /// Memoized ballot/certificate verification (the large-n fast path;
    /// pass-through in [`prft_crypto::VerifyMode::Reference`]). Pruned at
    /// round starts, so it spans the rounds that can still be looked up.
    cache: VerifyCache,

    stats: ReplicaStats,
}

impl Replica {
    /// Creates a replica with the given strategy.
    pub fn new(
        cfg: Config,
        key: SecretKey,
        registry: KeyRegistry,
        behavior: Box<dyn Behavior>,
    ) -> Self {
        let n = cfg.n;
        let genesis = Block::genesis();
        let mut block_store = HashMap::new();
        block_store.insert(genesis.id(), genesis.clone());
        Replica {
            collateral: CollateralLedger::new(n, 1),
            cache: VerifyCache::new(cfg.verify_mode),
            cfg,
            key,
            registry,
            behavior,
            chain: Chain::new(genesis),
            mempool: Mempool::new(),
            block_store,
            final_tally: HashMap::new(),
            propose_store: HashMap::new(),
            helped_at: HashMap::new(),
            sync_requested: false,
            finalized_client_txs: HashSet::new(),
            acked_upto: 0,
            round: Round(0),
            phase: Phase::Propose,
            consecutive_failures: 0,
            passive: false,
            rounds_done: 0,
            timer: None,
            proposal: None,
            proposals_seen: HashMap::new(),
            votes: HashMap::new(),
            vote_present: HashMap::new(),
            votes_observed: HashMap::new(),
            commits: HashMap::new(),
            reveals: HashMap::new(),
            detector: FraudDetector::new(),
            voted: false,
            committed: false,
            revealed: false,
            final_sent: false,
            exposed: false,
            tentative: None,
            pending_commit_splits: Vec::new(),
            vc_reqs: BTreeMap::new(),
            vc_sent: false,
            cv_senders: BTreeSet::new(),
            cv_sent: false,
            discontinued: false,
            future: BTreeMap::new(),
            peer_round: vec![0; n],
            stats: ReplicaStats::default(),
        }
    }

    // ---------------------------------------------------------- accessors

    /// This replica's identity.
    pub fn id(&self) -> NodeId {
        self.key.signer()
    }

    /// The ledger.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The mempool (mutable for harness-side transaction submission).
    pub fn mempool_mut(&mut self) -> &mut Mempool {
        &mut self.mempool
    }

    /// The mempool.
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// This replica's view of deposits and burns.
    pub fn collateral(&self) -> &CollateralLedger {
        &self.collateral
    }

    /// Experiment counters.
    pub fn stats(&self) -> &ReplicaStats {
        &self.stats
    }

    /// Current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Swaps this replica's strategy at runtime, returning the previous
    /// one. The protocol state machine is untouched — only the decision
    /// points change — which is exactly the paper's mid-stream deviation
    /// model (a colluder defecting to `π_0`, an honest player turning
    /// `π_abs`): the player keeps its keys, chain, and round position.
    pub fn set_behavior(&mut self, behavior: Box<dyn Behavior>) -> Box<dyn Behavior> {
        std::mem::replace(&mut self.behavior, behavior)
    }

    /// Re-points the behavior's shared coordination state after a
    /// checkpoint fork (see [`Behavior::rebind_shared`]). No-op for
    /// uncoordinated strategies.
    pub fn rebind_behavior_state(&mut self, state: &dyn std::any::Any) {
        self.behavior.rebind_shared(state);
    }

    /// The strategy label of this replica's behavior.
    pub fn behavior_label(&self) -> &'static str {
        self.behavior.label()
    }

    /// Protocol configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    fn leader(&self, round: Round) -> NodeId {
        round.leader(self.cfg.n)
    }

    fn quorum(&self) -> usize {
        self.cfg.quorum()
    }

    // ---------------------------------------------------------- round flow

    fn start_round(&mut self, ctx: &mut Context<PrftMsg>) {
        if self.cfg.max_rounds != 0 && self.rounds_done >= self.cfg.max_rounds {
            self.passive = true;
            self.timer = None;
            return;
        }
        self.stats.rounds_entered += 1;
        self.stats
            .phase_transitions
            .push((self.round, Phase::Propose, ctx.now()));
        self.phase = Phase::Propose;
        self.proposal = None;
        self.proposals_seen.clear();
        self.votes.clear();
        self.vote_present.clear();
        self.votes_observed.clear();
        self.commits.clear();
        self.reveals.clear();
        self.detector.clear();
        self.cache.prune_before(self.round);
        self.voted = false;
        self.committed = false;
        self.revealed = false;
        self.final_sent = false;
        self.exposed = false;
        self.tentative = None;
        self.sync_requested = false;
        self.pending_commit_splits.clear();
        self.vc_reqs.clear();
        self.vc_sent = false;
        self.cv_senders.clear();
        self.cv_sent = false;
        self.discontinued = false;

        self.arm_timer(ctx);

        if self.leader(self.round) == self.id() {
            self.propose(ctx);
        }

        // Replay any buffered messages for this round.
        let mut drained = Vec::new();
        let stale: Vec<u64> = self
            .future
            .range(..=self.round.0)
            .map(|(r, _)| *r)
            .collect();
        for r in stale {
            let msgs = self.future.remove(&r).unwrap_or_default();
            if r == self.round.0 {
                drained = msgs;
            }
        }
        for (from, msg) in drained {
            self.dispatch(ctx, from, msg);
        }
    }

    fn advance_round(&mut self, ctx: &mut Context<PrftMsg>, to: Round) {
        debug_assert!(to > self.round);
        self.round = to;
        self.rounds_done += 1;
        self.start_round(ctx);
    }

    fn arm_timer(&mut self, ctx: &mut Context<PrftMsg>) {
        let delay = self.cfg.timeout_after(self.consecutive_failures);
        let id = ctx.set_timer(delay);
        self.timer = Some((id, self.round, self.phase));
    }

    fn enter_phase(&mut self, ctx: &mut Context<PrftMsg>, phase: Phase) {
        self.stats
            .phase_transitions
            .push((self.round, phase, ctx.now()));
        self.phase = phase;
        self.arm_timer(ctx);
    }

    fn honest_block(&mut self) -> Block {
        let txs = match self.behavior.censor_set() {
            Some(censor) => {
                let censor = censor.clone();
                self.mempool.take_censoring(self.cfg.max_batch, &censor)
            }
            None => self.mempool.take(self.cfg.max_batch),
        };
        Block::new(self.round, self.chain.tip(), self.id(), txs)
    }

    fn propose(&mut self, ctx: &mut Context<PrftMsg>) {
        let honest = self.honest_block();
        let action = self.behavior.on_propose(self.round, &honest);
        match action {
            ProposeAction::Honest => self.broadcast_proposal(ctx, honest, None),
            ProposeAction::Replace(block) => self.broadcast_proposal(ctx, block, None),
            ProposeAction::Equivocate { a, b, b_recipients } => {
                self.broadcast_proposal(ctx, a, Some((b, b_recipients)));
            }
            ProposeAction::Silent => {}
        }
    }

    fn broadcast_proposal(
        &mut self,
        ctx: &mut Context<PrftMsg>,
        block: Block,
        alt: Option<(Block, HashSet<NodeId>)>,
    ) {
        let make = |key: &SecretKey, round: Round, block: &Block| {
            let ballot = Signed::sign(Ballot::new(round, Phase::Propose, block.id()), key);
            PrftMsg::Propose {
                ballot,
                block: block.clone(),
            }
        };
        match alt {
            None => {
                let msg = make(&self.key, self.round, &block);
                ctx.broadcast(msg);
            }
            Some((block_b, b_recipients)) => {
                let msg_a = make(&self.key, self.round, &block);
                let msg_b = make(&self.key, self.round, &block_b);
                for i in 0..self.cfg.n {
                    let to = NodeId(i);
                    if b_recipients.contains(&to) {
                        ctx.send(to, msg_b.clone());
                    } else {
                        ctx.send(to, msg_a.clone());
                    }
                }
            }
        }
    }

    /// Applies a [`BallotAction`] for `phase` around honest value `value`,
    /// attaching `payload(value)` to each ballot (certificates differ by
    /// phase). Returns whether anything was sent.
    fn emit_ballot(
        &mut self,
        ctx: &mut Context<PrftMsg>,
        phase: Phase,
        value: Digest,
        action: BallotAction,
        wrap: &dyn Fn(&Replica, SignedBallot, Digest) -> Option<PrftMsg>,
    ) -> bool {
        let sign =
            |this: &Replica, v: Digest| Signed::sign(Ballot::new(this.round, phase, v), &this.key);
        match action {
            BallotAction::Honest => {
                let ballot = sign(self, value);
                if let Some(msg) = wrap(self, ballot, value) {
                    ctx.broadcast(msg);
                    return true;
                }
                false
            }
            BallotAction::Replace(v) => {
                let ballot = sign(self, v);
                if let Some(msg) = wrap(self, ballot, v) {
                    ctx.broadcast(msg);
                    return true;
                }
                false
            }
            BallotAction::Split { b, b_recipients } => {
                let ballot_a = sign(self, value);
                let ballot_b = sign(self, b);
                let msg_a = wrap(self, ballot_a, value);
                let msg_b = wrap(self, ballot_b, b);
                let mut sent = false;
                for i in 0..self.cfg.n {
                    let to = NodeId(i);
                    let msg = if b_recipients.contains(&to) {
                        msg_b.clone()
                    } else {
                        msg_a.clone()
                    };
                    if let Some(m) = msg {
                        ctx.send(to, m);
                        sent = true;
                    }
                }
                sent
            }
            BallotAction::Silent => false,
        }
    }

    // ------------------------------------------------------------ handlers

    /// Feeds a ballot to the fraud detector and reacts: leader equivocation
    /// triggers a view change (paper Section 5.2 trigger #2); more than t0
    /// convictions trigger an `Expose` (trigger #3 routes through the same
    /// evidence).
    fn observe_and_react(&mut self, ctx: &mut Context<PrftMsg>, ballot: &SignedBallot) {
        if !self.cfg.accountable {
            return; // ablation: no fraud detection at all
        }
        let Some(evidence) = self.detector.observe(ballot) else {
            return;
        };
        self.stats.fraud_detections += 1;
        let round = ballot.payload.round;
        if evidence.accused() == self.leader(round) && ballot.payload.phase == Phase::Propose {
            self.stats.leader_equivocations += 1;
            self.trigger_view_change(ctx);
        }
        self.maybe_expose(ctx);
    }

    fn handle_propose(&mut self, ctx: &mut Context<PrftMsg>, ballot: SignedBallot, block: Block) {
        let round = ballot.payload.round;
        // Validation: signature, phase, sender is the round's leader, hash
        // binds the block, block is for this round.
        if ballot.payload.phase != Phase::Propose
            || !self.cache.verify_ballot(&ballot, &self.registry)
            || ballot.signer() != self.leader(round)
            || block.id() != ballot.payload.value
            || block.round != round
        {
            self.stats.invalid_proposals += 1;
            return;
        }
        self.block_store.insert(block.id(), block.clone());
        self.propose_store
            .entry(block.id())
            .or_insert_with(|| ballot.clone());
        let first_of_value = self
            .proposals_seen
            .insert(ballot.payload.value, ballot.clone())
            .is_none();

        // Leader equivocation is itself double-sign evidence and a
        // view-change trigger.
        let convicted_before = self.detector.convicted_count();
        self.observe_and_react(ctx, &ballot);
        if self.detector.convicted_count() > convicted_before {
            return; // equivocation: don't vote on either proposal
        }
        let _ = first_of_value;

        if self.discontinued || self.voted {
            return;
        }
        // Vote only on proposals extending our tip (validity of txs wrt
        // confirmed state).
        if block.parent != self.chain.tip() {
            // If the parent is nowhere in our chain, we are missing history
            // (e.g. after a crash): ask the committee to re-send it.
            let parent_known = self.chain.height_of(&block.parent).is_some();
            if !parent_known && !self.sync_requested {
                self.sync_requested = true;
                ctx.broadcast_others(PrftMsg::SyncRequest { round: self.round });
            }
            return;
        }
        if self.proposal.is_none() {
            self.proposal = Some(ballot.clone());
            if self.phase == Phase::Propose {
                self.enter_phase(ctx, Phase::Vote);
            }
        }
        let action = self.behavior.on_vote(self.round, ballot.payload.value);
        let value = ballot.payload.value;
        let sent = self.emit_ballot(ctx, Phase::Vote, value, action, &|this, b, v| {
            Some(PrftMsg::Vote {
                ballot: b,
                propose: this.proposals_seen.get(&v).cloned(),
            })
        });
        self.voted = sent;
    }

    fn handle_vote(
        &mut self,
        ctx: &mut Context<PrftMsg>,
        ballot: SignedBallot,
        propose: Option<SignedBallot>,
    ) {
        if ballot.payload.phase != Phase::Vote || !self.cache.verify_ballot(&ballot, &self.registry)
        {
            return;
        }
        // A validly signed ballot is double-sign evidence no matter what —
        // feed the detector before deciding whether the vote can be counted.
        self.observe_and_react(ctx, &ballot);
        let round = ballot.payload.round;
        // Validate the attached propose ballot (`s_pro`): it must be the
        // round leader's signature over the voted value. A valid attachment
        // is how equivocation evidence propagates with the votes.
        match &propose {
            Some(p) => {
                if p.payload.phase != Phase::Propose
                    || p.payload.round != round
                    || p.payload.value != ballot.payload.value
                    || p.signer() != self.leader(round)
                    || !self.cache.verify_ballot(p, &self.registry)
                {
                    return; // malformed attachment: don't count the vote
                }
                self.proposals_seen
                    .entry(p.payload.value)
                    .or_insert_with(|| p.clone());
                let p = p.clone();
                self.observe_and_react(ctx, &p);
            }
            None => {
                // Without `s_pro` the vote only counts if we already hold
                // the proposal it endorses.
                if !self.proposals_seen.contains_key(&ballot.payload.value) {
                    return;
                }
            }
        }
        if self.discontinued {
            return;
        }
        let value = ballot.payload.value;
        Self::mark(
            self.vote_present.entry(value).or_default(),
            ballot.signer().0,
        );
        self.votes
            .entry(value)
            .or_default()
            .insert(ballot.signer(), ballot);
        self.try_commit(ctx, value);
    }

    /// Sets bit `i` of a signer bitmask, growing it as needed; returns
    /// whether the bit was newly set.
    fn mark(bits: &mut Vec<bool>, i: usize) -> bool {
        if bits.len() <= i {
            bits.resize(i + 1, false);
        }
        !std::mem::replace(&mut bits[i], true)
    }

    fn try_commit(&mut self, ctx: &mut Context<PrftMsg>, value: Digest) {
        // Byzantine split commits wait for each side's certificate; drain
        // any that have become emittable before the `committed` guard.
        self.emit_pending_commit_splits(ctx);
        if self.committed || self.discontinued {
            return;
        }
        let quorum = self.quorum();
        let Some(votes) = self.votes.get(&value) else {
            return;
        };
        if votes.len() < quorum {
            return;
        }
        let action = self.behavior.on_commit(self.round, value);
        match action {
            BallotAction::Split { b, b_recipients } => {
                // Queue both sides; each is emitted as soon as a valid vote
                // certificate for its value exists (the collusion harvests
                // the other side's votes from certificates in flight).
                // BTreeSet: recipients are iterated when the queued sides
                // are emitted, and send order must not depend on HashSet
                // hashing state or replays diverge run-to-run.
                let a_recipients: BTreeSet<NodeId> = (0..self.cfg.n)
                    .map(NodeId)
                    .filter(|id| !b_recipients.contains(id))
                    .collect();
                self.pending_commit_splits.push((value, a_recipients));
                self.pending_commit_splits
                    .push((b, b_recipients.into_iter().collect()));
                self.committed = true;
                if self.phase == Phase::Vote {
                    self.enter_phase(ctx, Phase::Commit);
                }
                self.emit_pending_commit_splits(ctx);
            }
            action => {
                let vote_cert: Vec<SignedBallot> = votes.values().take(quorum).cloned().collect();
                let sent = self.emit_ballot(ctx, Phase::Commit, value, action, &|this, b, v| {
                    let votes_for = this
                        .votes
                        .get(&v)
                        .map(|m| m.values().take(quorum).cloned().collect::<Vec<_>>())
                        .unwrap_or_default();
                    let votes = if votes_for.is_empty() {
                        vote_cert.clone()
                    } else {
                        votes_for
                    };
                    Some(PrftMsg::Commit {
                        cert: Arc::new(CommitCert { commit: b, votes }),
                    })
                });
                if sent {
                    self.committed = true;
                    if self.phase == Phase::Vote {
                        self.enter_phase(ctx, Phase::Commit);
                    }
                }
            }
        }
    }

    /// Emits queued split-commit sides whose vote certificate is ready.
    fn emit_pending_commit_splits(&mut self, ctx: &mut Context<PrftMsg>) {
        if self.pending_commit_splits.is_empty() {
            return;
        }
        let quorum = self.quorum();
        let mut remaining = Vec::new();
        let pending = std::mem::take(&mut self.pending_commit_splits);
        for (v, recipients) in pending {
            let ready = self.votes.get(&v).map_or(0, BTreeMap::len) >= quorum;
            if !ready {
                remaining.push((v, recipients));
                continue;
            }
            let votes: Vec<SignedBallot> = self.votes[&v].values().take(quorum).cloned().collect();
            let ballot = Signed::sign(Ballot::new(self.round, Phase::Commit, v), &self.key);
            let msg = PrftMsg::Commit {
                cert: Arc::new(CommitCert {
                    commit: ballot,
                    votes,
                }),
            };
            for to in &recipients {
                ctx.send(*to, msg.clone());
            }
        }
        self.pending_commit_splits = remaining;
    }

    fn handle_commit(&mut self, ctx: &mut Context<PrftMsg>, cert: Arc<CommitCert>) {
        if cert.commit.payload.phase != Phase::Commit
            || !self.cache.verify_ballot(&cert.commit, &self.registry)
        {
            return;
        }
        // Commit certificates must carry a valid vote quorum.
        let quorum = self.quorum();
        let verdict = self.cache.validate_cert(&cert, &self.registry, quorum);
        if !verdict.ok {
            return;
        }
        // A cached verdict means this same allocation was walked and
        // observed earlier this round; re-observing identical ballots is
        // a detector no-op (see `CertVerdict::cached`), so skip it.
        if !verdict.cached {
            self.observe_and_react(ctx, &cert.commit);
            self.observe_cert_votes(ctx, &cert);
        }
        if self.discontinued {
            return;
        }
        let value = cert.commit.payload.value;
        // Harvest the certificate's votes: a valid signed vote counts no
        // matter how it arrived (it may complete our own vote quorum). The
        // walk already proved every vote endorses `value`, and the bitmask
        // skips the tree probe for signers we already hold a vote from —
        // a vote's content is determined by (round, value, signer), so an
        // existing entry is always the identical ballot.
        prft_sim::obs::timed("replica.harvest_votes", || {
            let present = self.vote_present.entry(value).or_default();
            let votes = self.votes.entry(value).or_default();
            for vote in &cert.votes {
                if Self::mark(present, vote.signer().0) {
                    votes.insert(vote.signer(), vote.clone());
                }
            }
        });
        self.commits
            .entry(value)
            .or_default()
            .insert(cert.commit.signer(), cert);
        self.try_commit(ctx, value);
        self.try_reveal(ctx, value);
    }

    /// Feeds a freshly validated certificate's votes to the fraud
    /// detector. On the fast path, a (value, signer) pair already observed
    /// out of a certificate this round is skipped: a *valid* vote's bytes
    /// are fully determined by (round, value, signer) — the MAC tag is a
    /// deterministic function of the payload — so the repeat is exactly
    /// the identical-content no-op `FraudDetector::observe` guarantees.
    /// Equivocations still pair up because the bitmask is per value.
    /// Reference mode observes unconditionally.
    fn observe_cert_votes(&mut self, ctx: &mut Context<PrftMsg>, cert: &CommitCert) {
        if self.cache.mode() == VerifyMode::Fast {
            let seen = self
                .votes_observed
                .entry(cert.commit.payload.value)
                .or_default();
            let fresh: Vec<usize> = cert
                .votes
                .iter()
                .enumerate()
                .filter(|(_, v)| Self::mark(seen, v.signer().0))
                .map(|(i, _)| i)
                .collect();
            for i in fresh {
                self.observe_and_react(ctx, &cert.votes[i]);
            }
        } else {
            for vote in &cert.votes {
                self.observe_and_react(ctx, vote);
            }
        }
    }

    fn try_reveal(&mut self, ctx: &mut Context<PrftMsg>, value: Digest) {
        if self.revealed || self.discontinued {
            return;
        }
        let quorum = self.quorum();
        let Some(commits) = self.commits.get(&value) else {
            return;
        };
        if commits.len() < quorum {
            return;
        }
        // Tentative consensus requires knowing the block and that it
        // extends our chain.
        let Some(block) = self.block_store.get(&value).cloned() else {
            return;
        };
        if block.parent != self.chain.tip() {
            return;
        }
        let height = match self.chain.append_tentative(block.clone()) {
            Ok(h) => h,
            Err(_) => return,
        };
        self.tentative = Some((value, height));
        self.mempool
            .remove_included(block.txs.iter().map(|t| &t.id));

        // Ablation: without the Reveal phase the commit quorum is final —
        // cheaper by a factor of n in bits, but double-signers go uncaught.
        if !self.cfg.accountable {
            self.revealed = true;
            let action = self.behavior.on_final(self.round, value);
            let sent = self.emit_ballot(ctx, Phase::Final, value, action, &|_, b, _| {
                Some(PrftMsg::Final { ballot: b })
            });
            if sent {
                self.final_sent = true;
            }
            self.finalize_current(ctx, value, height, true);
            return;
        }

        // `W_i`: Arc handles onto the certificate allocations already in
        // flight (the Commit broadcasts), shared under one outer Arc so a
        // Reveal fan-out clones 8 bytes per recipient, not q certificates
        // — and receivers' cert memos hit on the very same allocations.
        let certs: Arc<Vec<Arc<CommitCert>>> =
            Arc::new(commits.values().take(quorum).cloned().collect());
        let action = self.behavior.on_reveal(self.round, value);
        let sent = self.emit_ballot(ctx, Phase::Reveal, value, action, &|this, b, v| {
            let certs_for = this
                .commits
                .get(&v)
                .map(|m| Arc::new(m.values().take(quorum).cloned().collect::<Vec<_>>()));
            Some(PrftMsg::Reveal {
                ballot: b,
                certs: certs_for.unwrap_or_else(|| Arc::clone(&certs)),
            })
        });
        if sent {
            self.revealed = true;
            if self.phase == Phase::Commit {
                self.enter_phase(ctx, Phase::Reveal);
            }
        }
    }

    fn handle_reveal(
        &mut self,
        ctx: &mut Context<PrftMsg>,
        ballot: SignedBallot,
        certs: Arc<Vec<Arc<CommitCert>>>,
    ) {
        if ballot.payload.phase != Phase::Reveal
            || !self.cache.verify_ballot(&ballot, &self.registry)
        {
            return;
        }
        self.observe_and_react(ctx, &ballot);
        // Scan the revealed certificates — this is ConstructProof's input
        // matrix M. Invalid certificates are ignored wholesale. On the
        // fast path a certificate already validated at Commit time is a
        // single memo hit here (same allocation), and first-time walks
        // dedupe their vote ballots against the whole batch. Cached
        // certificates also skip detector re-observation — the O(q³)
        // per-replica-round term that would otherwise dominate large-n
        // accountable wall time — because a hit proves the same ballots
        // were already observed this round (see `CertVerdict::cached`).
        // Whole already-seen batches (same allocations, senders converge
        // on the same first-quorum certificate set) replay their logical
        // count in one memo hit without touching the scan at all.
        let quorum = self.quorum();
        if !self.cache.replay_reveal_batch(&certs, quorum) {
            let mut batch_verifies = 0u64;
            for cert in certs.iter() {
                let verdict = self.cache.validate_cert(cert, &self.registry, quorum);
                batch_verifies += verdict.verifies;
                if !verdict.ok || verdict.cached {
                    continue;
                }
                self.observe_and_react(ctx, &cert.commit);
                self.observe_cert_votes(ctx, cert);
            }
            self.cache
                .record_reveal_batch(&certs, quorum, batch_verifies, self.round);
        }
        if self.discontinued {
            return;
        }
        let value = ballot.payload.value;
        self.reveals
            .entry(value)
            .or_default()
            .insert(ballot.signer());
        self.try_finalize(ctx);
    }

    fn try_finalize(&mut self, ctx: &mut Context<PrftMsg>) {
        if self.final_sent || self.exposed || self.discontinued {
            return;
        }
        // Figure 1 ordering: Expose takes priority over Final.
        if self.detector.convicted_count() > self.cfg.t0 {
            self.maybe_expose(ctx);
            return;
        }
        let Some((value, height)) = self.tentative else {
            return;
        };
        let reveal_count = self.reveals.get(&value).map_or(0, BTreeSet::len);
        if reveal_count < self.quorum() {
            return;
        }
        let action = self.behavior.on_final(self.round, value);
        let sent = self.emit_ballot(ctx, Phase::Final, value, action, &|_, b, _| {
            Some(PrftMsg::Final { ballot: b })
        });
        if sent {
            self.final_sent = true;
        }
        // Reaching the Final broadcast conditions *is* final consensus for
        // this player (paper Section 5.1), regardless of strategy quirks.
        self.finalize_current(ctx, value, height, true);
    }

    fn finalize_current(
        &mut self,
        ctx: &mut Context<PrftMsg>,
        value: Digest,
        height: Height,
        own: bool,
    ) {
        debug_assert_eq!(self.tentative.map(|(v, _)| v), Some(value));
        if self.chain.finalize_upto(height).is_err() {
            return;
        }
        self.ack_finalized(ctx);
        if own {
            self.stats.finalized_own += 1;
        } else {
            self.stats.finalized_catchup += 1;
        }
        self.stats.finalize_times.push((self.round, ctx.now()));
        self.consecutive_failures = 0;
        let next = self.round.next();
        self.advance_round(ctx, next);
    }

    fn maybe_expose(&mut self, ctx: &mut Context<PrftMsg>) {
        if self.exposed || self.detector.convicted_count() <= self.cfg.t0 {
            return;
        }
        if !self.behavior.send_expose() {
            return;
        }
        self.exposed = true;
        self.stats.exposes_sent += 1;
        ctx.broadcast(PrftMsg::Expose {
            round: self.round,
            accuser: self.id(),
            evidence: self.detector.evidence(),
        });
    }

    fn handle_expose(
        &mut self,
        ctx: &mut Context<PrftMsg>,
        round: Round,
        evidence: Vec<crate::messages::BallotEvidence>,
    ) {
        // Exposes are valid whenever the PoF verifies, regardless of the
        // receiver's current round (burns are permanent).
        let Some(guilty) = verify_expose(&evidence, &self.registry, self.cfg.t0) else {
            return;
        };
        self.stats.exposes_applied += 1;
        for g in guilty {
            self.collateral.burn(g);
        }
        // Abandon the exposed round: `Stash(D_j), r := r + 1`. The
        // tentative block (if any) stays in the chain to be finalized or
        // reconciled later (Algorand-style).
        if round == self.round {
            self.stats.exposed_rounds.push(self.round);
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            let next = self.round.next();
            self.advance_round(ctx, next);
        }
    }

    fn handle_final(&mut self, ctx: &mut Context<PrftMsg>, ballot: SignedBallot) {
        if ballot.payload.phase != Phase::Final
            || !self.cache.verify_ballot(&ballot, &self.registry)
        {
            return;
        }
        if ballot.payload.round == self.round {
            self.observe_and_react(ctx, &ballot);
        }
        let value = ballot.payload.value;
        self.final_tally
            .entry(value)
            .or_default()
            .insert(ballot.signer(), ballot);
        self.reconcile(ctx);
    }

    /// Adopts any block with a `> n/2` Final tally that connects to our
    /// chain; rolls back conflicting *tentative* suffixes. Runs to fixpoint
    /// so multi-round laggards catch up in one pass.
    fn reconcile(&mut self, ctx: &mut Context<PrftMsg>) {
        let majority = self.cfg.final_majority();
        loop {
            let mut progressed = false;
            let candidates: Vec<Digest> = self
                .final_tally
                .iter()
                .filter(|(_, who)| who.len() >= majority)
                .map(|(v, _)| *v)
                .collect();
            for value in candidates {
                let Some(block) = self.block_store.get(&value).cloned() else {
                    continue;
                };
                // Already in chain? Finalize it (and ancestors).
                if let Some(h) = self.chain.height_of(&value) {
                    if self
                        .chain
                        .at(h)
                        .map(|e| e.status == prft_types::BlockStatus::Tentative)
                        .unwrap_or(false)
                    {
                        let _ = self.chain.finalize_upto(h);
                        progressed = true;
                        if self.tentative.map(|(v, _)| v) == Some(value)
                            && self.round == block.round
                        {
                            // Our own round resolved externally.
                            self.stats.finalized_catchup += 1;
                            self.stats.finalize_times.push((self.round, ctx.now()));
                            self.consecutive_failures = 0;
                            let next = self.round.next();
                            self.advance_round(ctx, next);
                        }
                    }
                    continue;
                }
                // Connects to tip?
                if block.parent == self.chain.tip() {
                    if self.chain.append_tentative(block.clone()).is_ok() {
                        let h = Height(self.chain.height());
                        let _ = self.chain.finalize_upto(h);
                        self.mempool
                            .remove_included(block.txs.iter().map(|t| &t.id));
                        self.stats.finalized_catchup += 1;
                        progressed = true;
                        if self.round <= block.round {
                            let next = Round(block.round.0 + 1);
                            if next > self.round {
                                self.stats.finalize_times.push((block.round, ctx.now()));
                                self.consecutive_failures = 0;
                                self.advance_round(ctx, next);
                            }
                        }
                    }
                    continue;
                }
                // Conflicts with a tentative suffix? ("rolled back once the
                // network synchronizes".) Find the parent inside our chain.
                let parent_pos = self.chain.height_of(&block.parent);
                if let Some(pp) = parent_pos {
                    let conflict_h = pp.0 as usize + 1;
                    let all_tentative = self
                        .chain
                        .iter()
                        .skip(conflict_h)
                        .all(|e| e.status == prft_types::BlockStatus::Tentative);
                    if all_tentative && conflict_h <= self.chain.height() as usize {
                        let _ = self.chain.rollback_tentative();
                        progressed = true;
                        // Next loop iteration will append it via the tip arm.
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        self.ack_finalized(ctx);
    }

    // ------------------------------------------------------- view change

    fn trigger_view_change(&mut self, ctx: &mut Context<PrftMsg>) {
        if self.vc_sent || self.passive {
            return;
        }
        if !self.behavior.join_view_change() {
            return;
        }
        self.vc_sent = true;
        self.stats
            .phase_transitions
            .push((self.round, Phase::ViewChange, ctx.now()));
        let req = Signed::sign(
            ViewChangeReq {
                round: self.round,
                stuck_phase: self.phase,
            },
            &self.key,
        );
        ctx.broadcast(PrftMsg::ViewChange { req });
    }

    fn handle_view_change(&mut self, ctx: &mut Context<PrftMsg>, req: Signed<ViewChangeReq>) {
        if req.payload.round != self.round || !req.verify(&self.registry) {
            return;
        }
        self.vc_reqs.insert(req.signer(), req);
        // Amplification: t0+1 requests imply a non-byzantine player is
        // stuck; join them (Claim 2 consistency).
        if self.vc_reqs.len() > self.cfg.t0 {
            self.trigger_view_change(ctx);
        }
        if self.vc_reqs.len() >= self.quorum() && self.vc_sent && !self.cv_sent {
            self.send_commit_view(ctx);
        }
    }

    fn send_commit_view(&mut self, ctx: &mut Context<PrftMsg>) {
        self.cv_sent = true;
        self.discontinued = true;
        let reqs: Vec<Signed<ViewChangeReq>> =
            self.vc_reqs.values().take(self.quorum()).cloned().collect();
        let cv = Signed::sign(
            CommitViewContent {
                round: self.round,
                cert_digest: view_change_cert_digest(&reqs),
            },
            &self.key,
        );
        ctx.broadcast(PrftMsg::CommitView { cv, reqs });
    }

    fn handle_commit_view(
        &mut self,
        ctx: &mut Context<PrftMsg>,
        cv: Signed<CommitViewContent>,
        reqs: Vec<Signed<ViewChangeReq>>,
    ) {
        if cv.payload.round != self.round || !cv.verify(&self.registry) {
            return;
        }
        // Certificate check: n − t0 valid, distinct view-change requests
        // for this round, bound by the signed digest.
        if cv.payload.cert_digest != view_change_cert_digest(&reqs) {
            return;
        }
        let mut signers = BTreeSet::new();
        for r in &reqs {
            if r.payload.round != self.round || !r.verify(&self.registry) {
                return;
            }
            signers.insert(r.signer());
        }
        if signers.len() < self.quorum() {
            return;
        }
        self.cv_senders.insert(cv.signer());
        // Echo: commit to the view change ourselves (paper step 4).
        if !self.cv_sent && self.behavior.join_view_change() {
            for r in reqs {
                self.vc_reqs.insert(r.signer(), r);
            }
            self.vc_sent = true;
            self.send_commit_view(ctx);
            self.cv_senders.insert(self.id());
        }
        // Completion (paper step 5, read as ≥ n − t0; see DESIGN.md §4).
        if self.cv_senders.len() >= self.quorum() {
            self.stats.view_changes += 1;
            self.stats.view_changed_rounds.push(self.round);
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            let next = self.round.next();
            self.advance_round(ctx, next);
        }
    }

    /// Forwards our finalized chain's proposals and Final certificates to a
    /// peer that is visibly behind. Rate-limited to once per round per peer.
    fn help_laggard(&mut self, ctx: &mut Context<PrftMsg>, peer: NodeId) {
        if self.helped_at.get(&peer).copied() >= Some(self.round) {
            return;
        }
        self.helped_at.insert(peer, self.round);
        let majority = self.cfg.final_majority();
        let entries: Vec<(Digest, Block)> = self
            .chain
            .iter()
            .skip(1) // genesis needs no help
            .filter(|e| e.status == prft_types::BlockStatus::Final)
            .map(|e| (e.block.id(), e.block.clone()))
            .collect();
        for (value, block) in entries {
            if let Some(pb) = self.propose_store.get(&value) {
                ctx.send(
                    peer,
                    PrftMsg::Propose {
                        ballot: pb.clone(),
                        block,
                    },
                );
            }
            if let Some(tally) = self.final_tally.get(&value) {
                for sb in tally.values().take(majority) {
                    ctx.send(peer, PrftMsg::Final { ballot: sb.clone() });
                }
            }
        }
    }

    // ------------------------------------------------------- client traffic

    /// Handles a client submission: an already-final tx is acked straight
    /// away (exactly-once inclusion under client retry), a fresh tx enters
    /// the mempool, and a full pool answers with the backpressure signal.
    /// Pending duplicates get no reply — the ack arrives on finalization.
    fn handle_submit(&mut self, ctx: &mut Context<PrftMsg>, tx: Transaction) {
        let id = tx.id;
        let sender = tx.sender;
        if self.finalized_client_txs.contains(&id) {
            ctx.send(sender, PrftMsg::TxCommitted { id });
            return;
        }
        match self.mempool.push(tx) {
            Ok(()) | Err(MempoolError::Duplicate) => {}
            Err(MempoolError::Full) => ctx.send(sender, PrftMsg::TxRejected { id }),
        }
    }

    /// Scans newly finalized blocks for client-submitted transactions
    /// (`tx.sender` ≥ `n` names a client actor) and acknowledges the ones
    /// this replica was a submission target for. The `ever_saw` gate keeps
    /// the ack fan-in at the client's retry spread instead of `n` replies
    /// per tx; the finalized-id set answers late retries in
    /// [`Replica::handle_submit`]. Monotone in height — finalized prefixes
    /// never roll back — so each tx is acked at most once per replica.
    fn ack_finalized(&mut self, ctx: &mut Context<PrftMsg>) {
        let height = self.chain.height();
        while self.acked_upto < height {
            let next = self.acked_upto + 1;
            let finalized = self
                .chain
                .at(Height(next))
                .map(|e| e.status == prft_types::BlockStatus::Final)
                .unwrap_or(false);
            if !finalized {
                break;
            }
            let acks: Vec<(NodeId, TxId)> = self
                .chain
                .at(Height(next))
                .expect("probed above")
                .block
                .txs
                .iter()
                .filter(|tx| tx.sender.0 >= self.cfg.n)
                .map(|tx| (tx.sender, tx.id))
                .collect();
            self.acked_upto = next;
            for (sender, id) in acks {
                self.finalized_client_txs.insert(id);
                if self.mempool.ever_saw(id) {
                    ctx.send(sender, PrftMsg::TxCommitted { id });
                }
            }
        }
    }

    // ------------------------------------------------------- round sync

    fn note_peer_round(&mut self, from: NodeId, round: Round) {
        if from.0 < self.peer_round.len() && round.0 > self.peer_round[from.0] {
            self.peer_round[from.0] = round.0;
        }
    }

    fn round_sync_target(&self) -> Option<Round> {
        // The highest r such that ≥ t0+1 peers have sent a message in a
        // round ≥ r: sort descending, take index t0.
        let mut rounds: Vec<u64> = self.peer_round.clone();
        rounds.sort_unstable_by(|a, b| b.cmp(a));
        let idx = self.cfg.t0;
        let target = *rounds.get(idx)?;
        (target > self.round.0).then_some(Round(target))
    }

    fn maybe_round_sync(&mut self, ctx: &mut Context<PrftMsg>) {
        if let Some(target) = self.round_sync_target() {
            self.stats.round_syncs += 1;
            self.advance_round(ctx, target);
        }
    }

    // ------------------------------------------------------- dispatch

    fn msg_round(msg: &PrftMsg) -> Option<Round> {
        match msg {
            PrftMsg::Propose { ballot, .. }
            | PrftMsg::Vote { ballot, .. }
            | PrftMsg::Final { ballot } => Some(ballot.payload.round),
            PrftMsg::Commit { cert } => Some(cert.commit.payload.round),
            PrftMsg::Reveal { ballot, .. } => Some(ballot.payload.round),
            PrftMsg::Expose { round, .. } => Some(*round),
            PrftMsg::ViewChange { req } => Some(req.payload.round),
            PrftMsg::CommitView { cv, .. } => Some(cv.payload.round),
            PrftMsg::SyncRequest { round } => Some(*round),
            // Client traffic is round-free; `Submit` is intercepted in
            // `on_message`, and the acks are client-bound (a replica that
            // somehow receives one drops it here).
            PrftMsg::Submit { .. } | PrftMsg::TxCommitted { .. } | PrftMsg::TxRejected { .. } => {
                None
            }
        }
    }

    fn dispatch(&mut self, ctx: &mut Context<PrftMsg>, _from: NodeId, msg: PrftMsg) {
        // `timed` scopes are no-ops unless built with `--features
        // profiling`; they exist so `prft-bench profile` can attribute
        // wall time per message kind at large n.
        use prft_sim::obs::timed;
        match msg {
            PrftMsg::Propose { ballot, block } => {
                timed("replica.handle_propose", || {
                    self.handle_propose(ctx, ballot, block)
                });
            }
            PrftMsg::Vote { ballot, propose } => {
                timed("replica.handle_vote", || {
                    self.handle_vote(ctx, ballot, propose)
                });
            }
            PrftMsg::Commit { cert } => {
                timed("replica.handle_commit", || self.handle_commit(ctx, cert));
            }
            PrftMsg::Reveal { ballot, certs } => {
                timed("replica.handle_reveal", || {
                    self.handle_reveal(ctx, ballot, certs)
                });
            }
            PrftMsg::Expose {
                round, evidence, ..
            } => self.handle_expose(ctx, round, evidence),
            PrftMsg::Final { ballot } => {
                timed("replica.handle_final", || self.handle_final(ctx, ballot));
            }
            PrftMsg::ViewChange { req } => self.handle_view_change(ctx, req),
            PrftMsg::CommitView { cv, reqs } => self.handle_commit_view(ctx, cv, reqs),
            PrftMsg::SyncRequest { .. } => {} // answered in on_message
            PrftMsg::Submit { .. } | PrftMsg::TxCommitted { .. } | PrftMsg::TxRejected { .. } => {} // handled (or dropped) in on_message
        }
    }
}

impl Node for Replica {
    type Msg = PrftMsg;

    fn on_start(&mut self, ctx: &mut Context<PrftMsg>) {
        self.start_round(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<PrftMsg>, from: NodeId, msg: PrftMsg) {
        self.stats.record_recv(msg.kind(), msg.wire_bytes());
        // Client submissions are round-independent and survive passivity:
        // a passive replica still acks already-final txs, so late retries
        // converge instead of spinning against an exhausted committee.
        if let PrftMsg::Submit { tx } = msg {
            self.handle_submit(ctx, tx);
            return;
        }
        if self.passive {
            // Passive replicas have exhausted their round budget but remain
            // responsive witnesses: they still help laggards reconcile.
            match &msg {
                PrftMsg::ViewChange { req }
                    if req.payload.round < self.round && req.verify(&self.registry) =>
                {
                    self.help_laggard(ctx, from);
                }
                PrftMsg::SyncRequest { .. } => self.help_laggard(ctx, from),
                _ => {}
            }
            return;
        }
        let Some(round) = Self::msg_round(&msg) else {
            return;
        };
        // Valid proposal blocks are content-addressed data: stash them no
        // matter which round they belong to, so a laggard that round-syncs
        // past them can still reconstruct its chain from the Final tallies.
        if let PrftMsg::Propose { ballot, block } = &msg {
            if ballot.payload.phase == Phase::Propose
                && ballot.signer() == self.leader(ballot.payload.round)
                && block.id() == ballot.payload.value
                && block.round == ballot.payload.round
                && self.cache.verify_ballot(ballot, &self.registry)
                && !self.block_store.contains_key(&ballot.payload.value)
            {
                self.block_store.insert(block.id(), block.clone());
                self.propose_store.insert(block.id(), ballot.clone());
                // A late block may unblock pending Final-tally adoptions.
                self.reconcile(ctx);
                if self.passive {
                    return;
                }
            }
        }
        // Signed rounds only: the ballot/req signatures cover the round, so
        // a forged "from the future" claim costs the sender a signature
        // check at worst.
        self.note_peer_round(from, round);

        // Sync requests are answered regardless of round.
        if matches!(msg, PrftMsg::SyncRequest { .. }) {
            self.help_laggard(ctx, from);
            return;
        }
        match round.cmp(&self.round) {
            std::cmp::Ordering::Greater => {
                // Finals and exposes act across rounds; buffer the rest.
                match &msg {
                    PrftMsg::Final { .. } | PrftMsg::Expose { .. } => self.dispatch(ctx, from, msg),
                    _ => {
                        self.future.entry(round.0).or_default().push((from, msg));
                        self.maybe_round_sync(ctx);
                    }
                }
            }
            std::cmp::Ordering::Less => {
                // Stale, except Finals/Exposes which stay meaningful — and
                // a stale ViewChange marks a laggard (e.g. a recovered
                // crash): help it catch up (paper's view-change step 2:
                // "send the corresponding messages to P_j").
                match &msg {
                    PrftMsg::Final { .. } | PrftMsg::Expose { .. } => self.dispatch(ctx, from, msg),
                    PrftMsg::ViewChange { req } if req.verify(&self.registry) => {
                        self.help_laggard(ctx, from);
                    }
                    _ => {}
                }
            }
            std::cmp::Ordering::Equal => self.dispatch(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<PrftMsg>, timer: TimerId) {
        if self.passive {
            return;
        }
        let Some((id, round, _phase)) = self.timer else {
            return;
        };
        if id != timer || round != self.round {
            return; // stale timer
        }
        self.timer = None;
        // Timeout: initiate (or keep waiting on) a view change; keep a
        // timer armed so the replica re-joins if the first attempt stalls
        // pre-GST, with exponential backoff bounding the event rate.
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.trigger_view_change(ctx);
        if self.cfg.max_rounds == 0 || self.rounds_done < self.cfg.max_rounds {
            self.arm_timer(ctx);
        }
    }
}
