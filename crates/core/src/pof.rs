//! Proof-of-Fraud construction (paper Figure 4, `ConstructProof`).
//!
//! During the Reveal phase each player holds a matrix `M` of signed ballots:
//! rows are revealers, entries are the commit (and nested vote) ballots from
//! their certificates. `ConstructProof` scans for players who signed two
//! different values in the same (round, phase) slot and assembles one
//! [`BallotEvidence`] pair per guilty player.

use crate::messages::{Ballot, BallotEvidence, SignedBallot};
use prft_crypto::{ConflictEvidence, KeyRegistry, Signable, Slot};
use prft_types::NodeId;
use std::collections::HashMap;

/// Incremental double-sign detector.
///
/// Feed it every signed ballot observed on the wire; it remembers the first
/// ballot per (signer, slot) and yields evidence the moment a conflicting
/// one arrives. Detection is O(1) amortized per ballot — the quadratic scan
/// of the paper's Figure 4 pseudocode is realized as this index.
#[derive(Debug, Default, Clone)]
pub struct FraudDetector {
    first_seen: HashMap<(NodeId, Slot), SignedBallot>,
    evidence: HashMap<NodeId, BallotEvidence>,
}

impl FraudDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        FraudDetector::default()
    }

    /// Observes a ballot. Returns new evidence if this ballot convicts a
    /// player not previously convicted.
    ///
    /// The caller is responsible for having verified the signature (the
    /// replica validates everything at ingress); evidence assembled here is
    /// re-verified by every receiver of an `Expose` anyway.
    pub fn observe(&mut self, ballot: &SignedBallot) -> Option<BallotEvidence> {
        let signer = ballot.signer();
        let key = (signer, ballot.payload.slot());
        match self.first_seen.get(&key) {
            None => {
                self.first_seen.insert(key, ballot.clone());
                None
            }
            Some(first) if first.payload == ballot.payload => None,
            Some(first) => {
                if self.evidence.contains_key(&signer) {
                    return None; // already convicted; one pair suffices
                }
                let ev = ConflictEvidence::try_new(first.clone(), ballot.clone())
                    .expect("same signer+slot, different payload");
                self.evidence.insert(signer, ev.clone());
                Some(ev)
            }
        }
    }

    /// Number of distinct players with evidence against them (`|D_i|`).
    pub fn convicted_count(&self) -> usize {
        self.evidence.len()
    }

    /// The accused players, sorted.
    pub fn convicted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.evidence.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// All evidence pairs, sorted by accused player (the `D_i` set of the
    /// paper, ready for an `Expose` broadcast).
    pub fn evidence(&self) -> Vec<BallotEvidence> {
        let mut v: Vec<BallotEvidence> = self.evidence.values().cloned().collect();
        v.sort_by_key(ConflictEvidence::accused);
        v
    }

    /// Clears per-round state. Evidence survives rounds only through the
    /// collateral ledger (burns are permanent); the detector itself is
    /// per-round because slots include the round number anyway.
    pub fn clear(&mut self) {
        self.first_seen.clear();
        self.evidence.clear();
    }
}

/// The paper's batch `ConstructProof(M, t0)`: scan a whole collection of
/// ballots and return one evidence pair per double-signer.
pub fn construct_proof<'a>(
    ballots: impl IntoIterator<Item = &'a SignedBallot>,
) -> Vec<BallotEvidence> {
    let mut det = FraudDetector::new();
    for b in ballots {
        det.observe(b);
    }
    det.evidence()
}

/// The verification algorithm `V(π)` of Definition 6 applied to an `Expose`:
/// returns the convicted players if the PoF is valid (every pair verifies
/// and more than `t0` distinct players are implicated).
pub fn verify_expose(
    evidence: &[BallotEvidence],
    registry: &KeyRegistry,
    t0: usize,
) -> Option<Vec<NodeId>> {
    prft_crypto::verify_pof(evidence, registry, t0)
}

use crate::messages::Phase;
use prft_types::{Digest, Round};

/// Convenience for tests and experiments: a signed ballot.
pub fn signed_ballot(
    key: &prft_crypto::SecretKey,
    round: Round,
    phase: Phase,
    value: Digest,
) -> SignedBallot {
    prft_crypto::Signed::sign(Ballot::new(round, phase, value), key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Phase;
    use prft_crypto::KeyRegistry;
    use prft_types::{Digest, Round};

    fn setup(n: usize) -> (KeyRegistry, Vec<prft_crypto::SecretKey>) {
        KeyRegistry::trusted_setup(n, 3)
    }

    fn value(tag: u8) -> Digest {
        Digest::of_bytes(&[tag])
    }

    #[test]
    fn detector_finds_double_sign() {
        let (_, keys) = setup(2);
        let mut det = FraudDetector::new();
        let a = signed_ballot(&keys[1], Round(1), Phase::Commit, value(1));
        let b = signed_ballot(&keys[1], Round(1), Phase::Commit, value(2));
        assert!(det.observe(&a).is_none());
        let ev = det.observe(&b).expect("conviction");
        assert_eq!(ev.accused(), NodeId(1));
        assert_eq!(det.convicted_count(), 1);
    }

    #[test]
    fn detector_ignores_duplicates_and_distinct_slots() {
        let (_, keys) = setup(1);
        let mut det = FraudDetector::new();
        let a = signed_ballot(&keys[0], Round(1), Phase::Vote, value(1));
        assert!(det.observe(&a).is_none());
        assert!(det.observe(&a).is_none(), "same ballot twice is fine");
        let other_round = signed_ballot(&keys[0], Round(2), Phase::Vote, value(2));
        assert!(det.observe(&other_round).is_none(), "different slot");
        let other_phase = signed_ballot(&keys[0], Round(1), Phase::Commit, value(2));
        assert!(det.observe(&other_phase).is_none(), "different phase");
        assert_eq!(det.convicted_count(), 0);
    }

    #[test]
    fn one_pair_per_player() {
        let (_, keys) = setup(1);
        let mut det = FraudDetector::new();
        det.observe(&signed_ballot(&keys[0], Round(1), Phase::Vote, value(1)));
        assert!(det
            .observe(&signed_ballot(&keys[0], Round(1), Phase::Vote, value(2)))
            .is_some());
        assert!(
            det.observe(&signed_ballot(&keys[0], Round(1), Phase::Vote, value(3)))
                .is_none(),
            "third conflicting ballot adds no new conviction"
        );
        assert_eq!(det.evidence().len(), 1);
    }

    #[test]
    fn construct_proof_matches_figure_4() {
        // Players 0 and 2 double-sign; player 1 is honest.
        let (_, keys) = setup(3);
        let ballots = vec![
            signed_ballot(&keys[0], Round(5), Phase::Commit, value(1)),
            signed_ballot(&keys[1], Round(5), Phase::Commit, value(1)),
            signed_ballot(&keys[2], Round(5), Phase::Commit, value(1)),
            signed_ballot(&keys[0], Round(5), Phase::Commit, value(2)),
            signed_ballot(&keys[2], Round(5), Phase::Commit, value(2)),
        ];
        let proof = construct_proof(&ballots);
        let accused: Vec<NodeId> = proof.iter().map(|e| e.accused()).collect();
        assert_eq!(accused, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn honest_player_never_framed() {
        let (reg, keys) = setup(2);
        // Adversary replays player 0's ballot and a tampered variant.
        let honest = signed_ballot(&keys[0], Round(1), Phase::Vote, value(1));
        let mut forged = honest.clone();
        forged.payload.value = value(2);
        let mut det = FraudDetector::new();
        det.observe(&honest);
        let ev = det.observe(&forged);
        // The detector (which trusts ingress validation) may pair them, but
        // verification against the registry must fail — the forged ballot's
        // signature is invalid.
        if let Some(ev) = ev {
            assert_eq!(ev.verify(&reg), None);
        }
        assert!(verify_expose(&det.evidence(), &reg, 0).is_none());
    }

    #[test]
    fn verify_expose_needs_more_than_t0() {
        let (reg, keys) = setup(4);
        let pair = |i: usize| {
            let mut det = FraudDetector::new();
            det.observe(&signed_ballot(&keys[i], Round(1), Phase::Commit, value(1)));
            det.observe(&signed_ballot(&keys[i], Round(1), Phase::Commit, value(2)))
                .unwrap()
        };
        let t0 = 1;
        assert!(verify_expose(&[pair(0)], &reg, t0).is_none());
        let out = verify_expose(&[pair(0), pair(1)], &reg, t0).unwrap();
        assert_eq!(out, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn clear_resets() {
        let (_, keys) = setup(1);
        let mut det = FraudDetector::new();
        det.observe(&signed_ballot(&keys[0], Round(1), Phase::Vote, value(1)));
        det.observe(&signed_ballot(&keys[0], Round(1), Phase::Vote, value(2)));
        assert_eq!(det.convicted_count(), 1);
        det.clear();
        assert_eq!(det.convicted_count(), 0);
        assert!(det.evidence().is_empty());
    }
}
