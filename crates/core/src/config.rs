//! Protocol parameters and quorum arithmetic.

use prft_crypto::VerifyMode;
use prft_sim::SimTime;

/// pRFT configuration.
///
/// The paper's threat model is `M = ⟨(P, T, K), θ = 1, t0⟩` with
/// `t0 = ⌈n/4⌉ − 1` and quorum `n − t0` (Claim 1 requires the agreement
/// threshold `τ ∈ [⌊(n+t0)/2⌋ + 1, n − t0]`; pRFT uses the top of the
/// window). `tau_override` exists only for the Claim 1 experiments that
/// deliberately run the protocol *outside* the safe window.
#[derive(Debug, Clone)]
pub struct Config {
    /// Committee size `n`.
    pub n: usize,
    /// Byzantine tolerance `t0` (defaults to `⌈n/4⌉ − 1`).
    pub t0: usize,
    /// Per-phase timeout Δ before view change is triggered.
    pub phase_timeout: SimTime,
    /// Exponential backoff cap for consecutive view changes.
    pub max_timeout: SimTime,
    /// Maximum transactions batched per block.
    pub max_batch: usize,
    /// Stop after this many finalized or abandoned rounds (0 = unbounded).
    pub max_rounds: u64,
    /// Override of the agreement threshold τ (tests only; default `n − t0`).
    pub tau_override: Option<usize>,
    /// Runs the Reveal phase and the Proof-of-Fraud machinery (the paper's
    /// protocol). Disabling it is the **ablation** of DESIGN.md: the round
    /// finalizes straight from the commit quorum, saving the O(κ·n⁴)
    /// reveal bytes but giving up accountability — deviations go unburned.
    pub accountable: bool,
    /// How ballots and certificates are verified: the memoized fast path
    /// (default) or the reference verify-on-every-arrival path. Results
    /// are pinned byte-identical across modes (the knob only trades
    /// speed), mirroring the event-queue backend knob.
    pub verify_mode: VerifyMode,
}

impl Config {
    /// The paper's parameterization for a committee of `n` players:
    /// `t0 = ⌈n/4⌉ − 1`.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn for_committee(n: usize) -> Config {
        assert!(n >= 2, "need at least two players");
        Config {
            n,
            t0: n.div_ceil(4).saturating_sub(1),
            phase_timeout: SimTime(200),
            max_timeout: SimTime(6_400),
            max_batch: 16,
            max_rounds: 0,
            tau_override: None,
            accountable: true,
            verify_mode: VerifyMode::default(),
        }
    }

    /// The agreement threshold τ: messages required for a quorum.
    pub fn quorum(&self) -> usize {
        self.tau_override.unwrap_or(self.n - self.t0)
    }

    /// Lower edge of the safe window from Claim 1: `⌊(n + t0)/2⌋ + 1`.
    pub fn tau_lower_bound(&self) -> usize {
        (self.n + self.t0) / 2 + 1
    }

    /// Upper edge of the safe window from Claim 1: `n − t0`.
    pub fn tau_upper_bound(&self) -> usize {
        self.n - self.t0
    }

    /// Whether the configured τ sits in Claim 1's safe window.
    pub fn tau_in_safe_window(&self) -> bool {
        (self.tau_lower_bound()..=self.tau_upper_bound()).contains(&self.quorum())
    }

    /// Finalization needs *more than* n/2 `Final` messages (strictly).
    pub fn final_majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Timeout for a round that has seen `consecutive_failures` view
    /// changes: exponential backoff capped at `max_timeout`. Guarantees
    /// that post-GST the timeout eventually exceeds the true Δ.
    pub fn timeout_after(&self, consecutive_failures: u32) -> SimTime {
        let mult = 1u64 << consecutive_failures.min(16);
        SimTime((self.phase_timeout.0.saturating_mul(mult)).min(self.max_timeout.0))
    }

    /// Builder-style override of the phase timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: SimTime) -> Config {
        self.phase_timeout = timeout;
        self
    }

    /// Builder-style override of the round budget.
    #[must_use]
    pub fn with_max_rounds(mut self, rounds: u64) -> Config {
        self.max_rounds = rounds;
        self
    }

    /// Builder-style override of the per-block batch limit (workload
    /// sweeps raise it so throughput is load-limited, not batch-limited).
    #[must_use]
    pub fn with_max_batch(mut self, batch: usize) -> Config {
        self.max_batch = batch;
        self
    }

    /// Builder-style override of τ (Claim 1 experiments only).
    #[must_use]
    pub fn with_tau(mut self, tau: usize) -> Config {
        self.tau_override = Some(tau);
        self
    }

    /// Builder-style toggle of the Reveal/PoF machinery (ablation).
    #[must_use]
    pub fn with_accountability(mut self, on: bool) -> Config {
        self.accountable = on;
        self
    }

    /// Builder-style override of the verification strategy.
    #[must_use]
    pub fn with_verify_mode(mut self, mode: VerifyMode) -> Config {
        self.verify_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t0_matches_paper_formula() {
        // t0 = ⌈n/4⌉ − 1, so n = 4·t0 + 1 is the worst case the paper
        // analyses ("in the worst case |T| = t0 and n = 4t0 + 1").
        assert_eq!(Config::for_committee(4).t0, 0);
        assert_eq!(Config::for_committee(5).t0, 1);
        assert_eq!(Config::for_committee(8).t0, 1);
        assert_eq!(Config::for_committee(9).t0, 2);
        assert_eq!(Config::for_committee(13).t0, 3);
        assert_eq!(Config::for_committee(16).t0, 3);
        assert_eq!(Config::for_committee(17).t0, 4);
    }

    #[test]
    fn quorum_is_n_minus_t0() {
        let cfg = Config::for_committee(9);
        assert_eq!(cfg.quorum(), 7);
        assert_eq!(cfg.tau_upper_bound(), 7);
        assert_eq!(cfg.tau_lower_bound(), (9 + 2) / 2 + 1);
        assert!(cfg.tau_in_safe_window());
    }

    #[test]
    fn tau_override_can_leave_safe_window() {
        let cfg = Config::for_committee(9).with_tau(4);
        assert_eq!(cfg.quorum(), 4);
        assert!(!cfg.tau_in_safe_window());
    }

    #[test]
    fn quorum_intersection_property() {
        // Two quorums of size n−t0 must intersect in more than t0 players
        // for every committee size — the root of tentative-consensus safety.
        for n in 2..200 {
            let cfg = Config::for_committee(n);
            let q = cfg.quorum();
            let intersection = 2 * q as i64 - n as i64;
            assert!(
                intersection > cfg.t0 as i64,
                "n={n}: quorums intersect in {intersection} ≤ t0={}",
                cfg.t0
            );
        }
    }

    #[test]
    fn no_double_quorum_under_threat_model() {
        // Lemma 4's partition algebra: k + t + 2·t0 < n means two disjoint
        // honest groups cannot both reach quorum with collusion help.
        for n in 5..200 {
            let cfg = Config::for_committee(n);
            let kt_max = n.div_ceil(2) - 1; // k + t < n/2
            assert!(
                kt_max + 2 * cfg.t0 < n,
                "n={n}: k+t={kt_max}, t0={} admits a double quorum",
                cfg.t0
            );
        }
    }

    #[test]
    fn backoff_caps() {
        let cfg = Config::for_committee(4);
        assert_eq!(cfg.timeout_after(0), cfg.phase_timeout);
        assert_eq!(cfg.timeout_after(1).0, cfg.phase_timeout.0 * 2);
        assert_eq!(cfg.timeout_after(30), cfg.max_timeout);
    }

    #[test]
    fn final_majority_is_strict() {
        assert_eq!(Config::for_committee(8).final_majority(), 5);
        assert_eq!(Config::for_committee(9).final_majority(), 5);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_committee_rejected() {
        let _ = Config::for_committee(1);
    }
}
