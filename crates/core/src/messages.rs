//! pRFT wire messages (paper Figure 2b) and their signed payloads.
//!
//! Every signature in the protocol is over a [`Ballot`]: a (round, phase,
//! value) triple. This uniformity is what makes Proof-of-Fraud generic —
//! two valid ballots by one signer in the same (round, phase) slot with
//! different values are a conviction, whether they came from the propose,
//! vote, commit, reveal, or final phase.

use prft_crypto::{ConflictEvidence, KeyRegistry, Signable, Signed, Slot, KAPPA};
use prft_sim::WireMessage;
use prft_types::{Block, Digest, Encoder, NodeId, Round, Transaction, TxId};
use std::sync::Arc;

/// Protocol phases, also used as the `phase` component of signature slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Leader proposes a block.
    Propose,
    /// Players vote on the proposal hash.
    Vote,
    /// Players commit with a vote certificate.
    Commit,
    /// Players reveal commit certificates for fraud detection.
    Reveal,
    /// Final-consensus announcement.
    Final,
    /// View-change announcement.
    ViewChange,
    /// View-change commitment.
    CommitView,
}

impl Phase {
    /// Stable numeric id used in signature slots.
    pub fn slot_id(self) -> u8 {
        match self {
            Phase::Propose => 0,
            Phase::Vote => 1,
            Phase::Commit => 2,
            Phase::Reveal => 3,
            Phase::Final => 4,
            Phase::ViewChange => 5,
            Phase::CommitView => 6,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Propose => "Propose",
            Phase::Vote => "Vote",
            Phase::Commit => "Commit",
            Phase::Reveal => "Reveal",
            Phase::Final => "Final",
            Phase::ViewChange => "ViewChange",
            Phase::CommitView => "CommitView",
        }
    }
}

/// The universally signed payload: "`signer` endorses `value` in
/// (`round`, `phase`)".
///
/// The sentinel value [`Digest::ZERO`] is `⊥` (no value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ballot {
    /// Consensus round.
    pub round: Round,
    /// Phase within the round.
    pub phase: Phase,
    /// Endorsed block hash (or `⊥`).
    pub value: Digest,
}

impl Ballot {
    /// Creates a ballot.
    pub fn new(round: Round, phase: Phase, value: Digest) -> Self {
        Ballot {
            round,
            phase,
            value,
        }
    }
}

impl Signable for Ballot {
    fn domain(&self) -> &'static str {
        "prft/ballot"
    }

    fn slot(&self) -> Slot {
        Slot {
            round: self.round.0,
            phase: self.phase.slot_id(),
        }
    }

    fn signable_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&self.value.0);
        e.into_bytes()
    }
}

/// A signed ballot.
pub type SignedBallot = Signed<Ballot>;

/// Evidence that one player double-signed in some slot.
pub type BallotEvidence = ConflictEvidence<Ballot>;

/// A commit certificate: the signed commit ballot plus the `n − t0` vote
/// ballots that justify it (`⟨Commit, h*, s_pro, V_i, r⟩` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitCert {
    /// The commit ballot itself (phase = [`Phase::Commit`]).
    pub commit: SignedBallot,
    /// The vote certificate `V_i` (phase = [`Phase::Vote`], same value).
    pub votes: Vec<SignedBallot>,
}

impl CommitCert {
    /// Validates internal consistency and signatures: the commit ballot is
    /// valid, and `votes` holds ≥ `quorum` valid vote ballots for the same
    /// round and value from distinct signers. (An empty-vote `⊥` commit is
    /// accepted with `quorum == 0`.)
    pub fn validate(&self, registry: &KeyRegistry, quorum: usize) -> bool {
        prft_sim::obs::timed("verify_cert", || {
            if self.commit.payload.phase != Phase::Commit || !self.commit.verify(registry) {
                return false;
            }
            let round = self.commit.payload.round;
            let value = self.commit.payload.value;
            let mut signers: Vec<NodeId> = Vec::with_capacity(self.votes.len());
            for v in &self.votes {
                if v.payload.phase != Phase::Vote
                    || v.payload.round != round
                    || v.payload.value != value
                    || !v.verify(registry)
                {
                    return false;
                }
                signers.push(v.signer());
            }
            signers.sort_unstable();
            signers.dedup();
            signers.len() >= quorum
        })
    }

    /// Wire size: commit ballot + votes.
    pub fn wire_bytes(&self) -> usize {
        ballot_bytes() + self.votes.len() * ballot_bytes()
    }
}

/// Wire size of one signed ballot: value digest + slot + signature.
pub fn ballot_bytes() -> usize {
    Digest::LEN + 9 + KAPPA
}

/// View-change request payload: `⟨ViewChange, Phase, r⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewChangeReq {
    /// Round being abandoned.
    pub round: Round,
    /// Phase in which the trigger fired.
    pub stuck_phase: Phase,
}

impl Signable for ViewChangeReq {
    fn domain(&self) -> &'static str {
        "prft/view-change"
    }

    fn slot(&self) -> Slot {
        Slot {
            round: self.round.0,
            phase: Phase::ViewChange.slot_id(),
        }
    }

    fn signable_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(self.stuck_phase.slot_id());
        e.into_bytes()
    }
}

/// Commit-view payload: `⟨CommitView, V_i, r⟩` (the certificate `V_i`
/// travels alongside; the signature covers the round and a digest of the
/// certificate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommitViewContent {
    /// Round being abandoned.
    pub round: Round,
    /// Digest binding the view-change certificate.
    pub cert_digest: Digest,
}

impl Signable for CommitViewContent {
    fn domain(&self) -> &'static str {
        "prft/commit-view"
    }

    fn slot(&self) -> Slot {
        Slot {
            round: self.round.0,
            phase: Phase::CommitView.slot_id(),
        }
    }

    fn signable_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&self.cert_digest.0);
        e.into_bytes()
    }
}

/// Digest binding a set of view-change requests into a commit-view.
pub fn view_change_cert_digest(reqs: &[Signed<ViewChangeReq>]) -> Digest {
    let mut e = Encoder::new();
    for r in reqs {
        e.u64(r.signer().0 as u64);
        e.u64(r.payload.round.0);
        e.u8(r.payload.stuck_phase.slot_id());
    }
    Digest::of_bytes(&e.into_bytes())
}

/// The pRFT wire message set (paper Figure 2b).
#[derive(Debug, Clone)]
pub enum PrftMsg {
    /// `(⟨Propose, B_l, h_l, r⟩, s_pro)`: the ballot's value is the block
    /// hash; the block travels alongside.
    Propose {
        /// Signed propose ballot (phase = [`Phase::Propose`]).
        ballot: SignedBallot,
        /// The proposed block.
        block: Block,
    },
    /// `(⟨Vote, h, s_pro, r⟩, s_vote)`: votes carry the leader's propose
    /// ballot `s_pro` when the voter has it. This is what lets *everyone*
    /// observe a leader's equivocation once votes cross the committee —
    /// the detection path the paper builds the view-change trigger
    /// "conflicting signatures on two different proposed values" on.
    Vote {
        /// Signed vote ballot.
        ballot: SignedBallot,
        /// The propose ballot being voted on (`s_pro`), if held.
        propose: Option<SignedBallot>,
    },
    /// `(⟨Commit, h*, s_pro, V_i, r⟩, s_com)`.
    ///
    /// The certificate body is `Arc`-shared: a broadcast clones an 8-byte
    /// handle per recipient instead of the O(q) vote vector, and every
    /// receiver holds the *same* allocation — which is also what lets the
    /// fast path recognize an already-validated certificate by pointer.
    Commit {
        /// The certificate (ballot + votes), shared across recipients.
        cert: Arc<CommitCert>,
    },
    /// `(⟨Reveal, h_tc, h_l, W_i, r⟩, s_rev)`: `W_i` is the set of commit
    /// certificates observed — this is what `ConstructProof` scans and what
    /// drives the `O(κ·n⁴)` aggregate message size.
    ///
    /// Doubly `Arc`-shared: the certificates inside are the same `Arc`s
    /// the Commit broadcasts delivered, and the whole `W_i` vector is
    /// behind one more `Arc` so the n-recipient fan-out of an O(n²)-byte
    /// payload clones one handle, not q pointers (at n = 512 the inner
    /// vector alone is ~3 KB × n² messages in flight).
    Reveal {
        /// Signed reveal ballot.
        ballot: SignedBallot,
        /// The commit certificates `W_i`, shared across recipients.
        certs: Arc<Vec<Arc<CommitCert>>>,
    },
    /// `(⟨Expose, D_i, r⟩, s_exp)`: a Proof-of-Fraud naming > t0 players.
    Expose {
        /// Round in which fraud was detected.
        round: Round,
        /// The accusing player.
        accuser: NodeId,
        /// One evidence pair per accused player.
        evidence: Vec<BallotEvidence>,
    },
    /// `(⟨Final, h_l, s_pro⟩, s_fin)`.
    Final {
        /// Signed final ballot.
        ballot: SignedBallot,
    },
    /// `(⟨ViewChange, Phase, r⟩, s_vc)`.
    ViewChange {
        /// Signed request.
        req: Signed<ViewChangeReq>,
    },
    /// `(⟨CommitView, V_i, r⟩, s_cv)`: carries `n − t0` view-change
    /// requests.
    CommitView {
        /// The signed commit-view announcement.
        cv: Signed<CommitViewContent>,
        /// The view-change certificate `V_i`.
        reqs: Vec<Signed<ViewChangeReq>>,
    },
    /// Recovery addition (not in the paper, which does not model crash
    /// recovery): a replica that cannot connect a current proposal to its
    /// chain asks its peers to re-send the finalized history. Replies are
    /// rate-limited; the message is unauthenticated because the worst a
    /// forger achieves is extra helpful traffic.
    SyncRequest {
        /// The requester's current round (for bookkeeping only).
        round: Round,
    },
    /// Workload addition (not in the paper, which models no demand side):
    /// a client submits a transaction to one replica's mempool. Handled
    /// round-independently, like [`PrftMsg::SyncRequest`]; unauthenticated
    /// because a forged submission is just load.
    Submit {
        /// The transaction; `tx.sender` names the submitting client.
        tx: Transaction,
    },
    /// Workload addition: a replica acknowledges that a client-submitted
    /// transaction reached a **finalized** block. Only replicas that were
    /// submission targets (their mempool ever saw the tx) reply, so the
    /// ack fan-in is bounded by the client's retry spread, not `n`.
    TxCommitted {
        /// Id of the finalized transaction.
        id: TxId,
    },
    /// Workload addition: a replica refuses a submission because its
    /// bounded mempool is at capacity — the backpressure signal a client's
    /// retry policy reacts to (requeue with backoff, or drop).
    TxRejected {
        /// Id of the rejected transaction.
        id: TxId,
    },
}

impl WireMessage for PrftMsg {
    fn kind(&self) -> &'static str {
        match self {
            PrftMsg::Propose { .. } => "Propose",
            PrftMsg::Vote { .. } => "Vote",
            PrftMsg::Commit { .. } => "Commit",
            PrftMsg::Reveal { .. } => "Reveal",
            PrftMsg::Expose { .. } => "Expose",
            PrftMsg::Final { .. } => "Final",
            PrftMsg::ViewChange { .. } => "ViewChange",
            PrftMsg::CommitView { .. } => "CommitView",
            PrftMsg::SyncRequest { .. } => "SyncRequest",
            PrftMsg::Submit { .. } => "Submit",
            PrftMsg::TxCommitted { .. } => "TxCommitted",
            PrftMsg::TxRejected { .. } => "TxRejected",
        }
    }

    fn wire_bytes(&self) -> usize {
        match self {
            PrftMsg::Propose { block, .. } => ballot_bytes() + block.wire_bytes(),
            PrftMsg::Vote { propose, .. } => {
                ballot_bytes() + propose.as_ref().map_or(0, |_| ballot_bytes())
            }
            PrftMsg::Commit { cert } => cert.wire_bytes(),
            PrftMsg::Reveal { certs, .. } => {
                ballot_bytes() + certs.iter().map(|c| c.wire_bytes()).sum::<usize>()
            }
            PrftMsg::Expose { evidence, .. } => 8 + 8 + evidence.len() * 2 * ballot_bytes(),
            PrftMsg::Final { .. } => ballot_bytes(),
            PrftMsg::ViewChange { .. } => 9 + KAPPA,
            PrftMsg::CommitView { reqs, .. } => Digest::LEN + 8 + KAPPA + reqs.len() * (9 + KAPPA),
            PrftMsg::SyncRequest { .. } => 8,
            PrftMsg::Submit { tx } => tx.wire_bytes(),
            // Tx id plus a one-byte verdict tag.
            PrftMsg::TxCommitted { .. } | PrftMsg::TxRejected { .. } => 9,
        }
    }

    fn clone_cost_bytes(&self) -> usize {
        // The `Arc`-shared certificate bodies clone as one 8-byte handle
        // per shared allocation; everything else copies its wire size.
        // Wire accounting (`send.*`/`recv.*`, the paper's O(κ·n⁴) Table 3
        // figures) still uses `wire_bytes` — this only changes what the
        // broadcast fan-out *memcpy* costs, which is what the
        // `engine.clone_bytes` counter exists to measure.
        match self {
            PrftMsg::Commit { .. } => 8,
            PrftMsg::Reveal { .. } => ballot_bytes() + 8,
            other => other.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_crypto::KeyRegistry;

    fn setup(n: usize) -> (KeyRegistry, Vec<prft_crypto::SecretKey>) {
        KeyRegistry::trusted_setup(n, 7)
    }

    fn ballot(round: u64, phase: Phase, tag: u8) -> Ballot {
        Ballot::new(Round(round), phase, Digest::of_bytes(&[tag]))
    }

    #[test]
    fn ballots_conflict_only_within_slot() {
        let (_, keys) = setup(2);
        let a = Signed::sign(ballot(1, Phase::Vote, 1), &keys[0]);
        let b = Signed::sign(ballot(1, Phase::Vote, 2), &keys[0]);
        let c = Signed::sign(ballot(1, Phase::Commit, 2), &keys[0]);
        let d = Signed::sign(ballot(2, Phase::Vote, 2), &keys[0]);
        assert!(ConflictEvidence::try_new(a.clone(), b).is_some());
        assert!(
            ConflictEvidence::try_new(a.clone(), c).is_none(),
            "cross-phase"
        );
        assert!(ConflictEvidence::try_new(a, d).is_none(), "cross-round");
    }

    #[test]
    fn commit_cert_validates_quorum() {
        let (reg, keys) = setup(4);
        let value = Digest::of_bytes(b"block");
        let votes: Vec<SignedBallot> = keys
            .iter()
            .take(3)
            .map(|k| Signed::sign(Ballot::new(Round(1), Phase::Vote, value), k))
            .collect();
        let commit = Signed::sign(Ballot::new(Round(1), Phase::Commit, value), &keys[0]);
        let cert = CommitCert { commit, votes };
        assert!(cert.validate(&reg, 3));
        assert!(!cert.validate(&reg, 4), "not enough votes for quorum 4");
    }

    #[test]
    fn commit_cert_rejects_mixed_values() {
        let (reg, keys) = setup(3);
        let va = Digest::of_bytes(b"a");
        let vb = Digest::of_bytes(b"b");
        let votes = vec![
            Signed::sign(Ballot::new(Round(1), Phase::Vote, va), &keys[0]),
            Signed::sign(Ballot::new(Round(1), Phase::Vote, vb), &keys[1]),
        ];
        let commit = Signed::sign(Ballot::new(Round(1), Phase::Commit, va), &keys[0]);
        assert!(!CommitCert { commit, votes }.validate(&reg, 2));
    }

    #[test]
    fn commit_cert_rejects_duplicate_signers() {
        let (reg, keys) = setup(3);
        let v = Digest::of_bytes(b"a");
        let vote = Signed::sign(Ballot::new(Round(1), Phase::Vote, v), &keys[0]);
        let votes = vec![vote.clone(), vote];
        let commit = Signed::sign(Ballot::new(Round(1), Phase::Commit, v), &keys[1]);
        assert!(!CommitCert { commit, votes }.validate(&reg, 2));
    }

    #[test]
    fn commit_cert_rejects_wrong_round_votes() {
        let (reg, keys) = setup(3);
        let v = Digest::of_bytes(b"a");
        let votes = vec![Signed::sign(
            Ballot::new(Round(2), Phase::Vote, v),
            &keys[0],
        )];
        let commit = Signed::sign(Ballot::new(Round(1), Phase::Commit, v), &keys[1]);
        assert!(!CommitCert { commit, votes }.validate(&reg, 1));
    }

    #[test]
    fn bottom_commit_cert_is_valid_with_zero_quorum() {
        let (reg, keys) = setup(2);
        let commit = Signed::sign(Ballot::new(Round(1), Phase::Commit, Digest::ZERO), &keys[0]);
        let cert = CommitCert {
            commit,
            votes: vec![],
        };
        assert!(cert.validate(&reg, 0));
    }

    #[test]
    fn wire_sizes_scale_with_certificates() {
        let (_, keys) = setup(4);
        let value = Digest::of_bytes(b"x");
        let votes: Vec<SignedBallot> = keys
            .iter()
            .map(|k| Signed::sign(Ballot::new(Round(1), Phase::Vote, value), k))
            .collect();
        let commit = Signed::sign(Ballot::new(Round(1), Phase::Commit, value), &keys[0]);
        let cert = CommitCert {
            commit: commit.clone(),
            votes,
        };
        let vote_msg = PrftMsg::Vote {
            ballot: commit.clone(),
            propose: None,
        };
        let cert = Arc::new(cert);
        let commit_msg = PrftMsg::Commit {
            cert: Arc::clone(&cert),
        };
        let reveal_msg = PrftMsg::Reveal {
            ballot: commit,
            certs: Arc::new(vec![Arc::clone(&cert), cert]),
        };
        assert!(vote_msg.wire_bytes() < commit_msg.wire_bytes());
        assert!(commit_msg.wire_bytes() < reveal_msg.wire_bytes());
        // Reveal ≈ 2 commits: the O(n) nesting that yields κ·n⁴ aggregate.
        assert!(reveal_msg.wire_bytes() > 2 * commit_msg.wire_bytes());
        // Fan-out clones move Arc handles, not certificate bodies.
        assert_eq!(commit_msg.clone_cost_bytes(), 8);
        assert_eq!(reveal_msg.clone_cost_bytes(), ballot_bytes() + 8);
        assert_eq!(vote_msg.clone_cost_bytes(), vote_msg.wire_bytes());
    }

    #[test]
    fn message_kinds_match_figure_2b() {
        let (_, keys) = setup(1);
        let b = Signed::sign(ballot(0, Phase::Final, 1), &keys[0]);
        assert_eq!(PrftMsg::Final { ballot: b }.kind(), "Final");
    }
}
