//! # pRFT — practical Rational Fault Tolerance
//!
//! A from-scratch implementation of the pRFT protocol from *"Towards
//! Rational Consensus in Honest Majority"* (Srivastava & Gujar, ICDCS 2024):
//! atomic broadcast under the rational threat model `RFT(t, k)` with
//! `t < n/4` byzantine and `k + t < n/2` byzantine+rational players, for
//! rational players of type `θ = 1` (fork-seeking).
//!
//! The protocol runs in rounds of four phases — Propose, Vote, Commit,
//! Reveal — with quorum `n − t0`, `t0 = ⌈n/4⌉ − 1`. Its distinguishing
//! feature is **in-protocol accountability**: the Reveal phase makes every
//! player's commit certificates visible to every other player, so honest
//! players construct Proof-of-Fraud against double-signers and burn their
//! collateral (`Expose`). Deviation is thereby a dominated strategy
//! (DSIC, Lemma 4), not merely one equilibrium among several as in
//! baiting-based designs.
//!
//! ## Quick start
//!
//! ```
//! use prft_core::{Harness, NetworkChoice};
//! use prft_sim::SimTime;
//!
//! // 8 players (t0 = 1), synchronous network, all honest.
//! let mut sim = Harness::new(8, 42)
//!     .network(NetworkChoice::Synchronous { delta: SimTime(10) })
//!     .max_rounds(3)
//!     .build();
//! sim.run_until(SimTime(100_000));
//! let report = prft_core::analysis::analyze(&sim);
//! assert!(report.agreement, "honest players agree");
//! assert_eq!(report.min_final_height, 3, "three blocks finalized");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod behavior;
mod collateral;
mod config;
mod harness;
mod messages;
pub mod obs;
mod pof;
mod replica;
mod verify;

pub use analysis::AsReplica;
pub use behavior::{BallotAction, Behavior, BehaviorClone, Honest, ProposeAction};
pub use collateral::CollateralLedger;
pub use config::Config;
pub use harness::{Harness, NetworkChoice};
pub use messages::{
    ballot_bytes, Ballot, BallotEvidence, CommitCert, CommitViewContent, Phase, PrftMsg,
    SignedBallot, ViewChangeReq,
};
pub use pof::{construct_proof, signed_ballot, verify_expose, FraudDetector};
pub use prft_crypto::VerifyMode;
pub use replica::{Replica, ReplicaStats};
pub use verify::{CertVerdict, VerifyCache};
