//! Post-run analysis over a pRFT simulation: agreement, liveness,
//! censorship, forks, and burns — the observables every experiment reads.
//!
//! Every function here is generic over the node type via [`AsReplica`]:
//! a plain committee run uses `Simulation<Replica>`, while a workload run
//! appends client actors to the same population. Clients answer
//! [`AsReplica::as_replica`] with `None`, so every aggregate keeps its
//! replica-only meaning regardless of who else shares the simulation.

use crate::replica::Replica;
use prft_sim::{Node, Simulation};
use prft_types::{Chain, NodeId, TxId};

/// Views a simulation actor as a protocol replica, when it is one.
///
/// The analysis and observability layers quantify over committee
/// replicas. Workload simulations mix client actors into the node
/// population; those return `None` and are skipped.
pub trait AsReplica {
    /// The replica behind this actor, if any.
    fn as_replica(&self) -> Option<&Replica>;
}

impl AsReplica for Replica {
    fn as_replica(&self) -> Option<&Replica> {
        Some(self)
    }
}

/// Summary of a finished run, computed over the *honest* replicas (players
/// whose behavior label is `"honest"`), which is how every property in the
/// paper is stated.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Ids of the honest players.
    pub honest: Vec<NodeId>,
    /// Smallest finalized height among honest players.
    pub min_final_height: u64,
    /// Largest finalized height among honest players.
    pub max_final_height: u64,
    /// Whether all honest *finalized* prefixes agree (no fork): the
    /// `(t,k)`-agreement property.
    pub agreement: bool,
    /// Whether the full chains (incl. tentative) satisfy 1-strict ordering
    /// pairwise.
    pub strict_ordering: bool,
    /// Players whose collateral is burned in any honest view.
    pub burned: Vec<NodeId>,
    /// Total view changes across honest replicas.
    pub view_changes: u64,
    /// Total valid exposes applied across honest replicas.
    pub exposes: u64,
}

/// Whether a replica is honest for analysis purposes.
pub fn is_honest(replica: &Replica) -> bool {
    replica.behavior_label() == "honest"
}

fn replica_at<N: Node + AsReplica>(sim: &Simulation<N>, id: NodeId) -> &Replica {
    sim.node(id)
        .as_replica()
        .expect("honest ids name committee replicas")
}

/// Ids of all honest replicas. Crashed players are excluded: the paper's
/// properties quantify over correct (non-faulty) honest players. Client
/// actors (in workload runs) are not replicas and never appear here.
pub fn honest_ids<N: Node + AsReplica>(sim: &Simulation<N>) -> Vec<NodeId> {
    (0..sim.n())
        .map(NodeId)
        .filter(|&id| {
            sim.node(id)
                .as_replica()
                .is_some_and(|r| is_honest(r) && !sim.is_crashed(id))
        })
        .collect()
}

/// Computes the [`RunReport`] for a finished simulation.
pub fn analyze<N: Node + AsReplica>(sim: &Simulation<N>) -> RunReport {
    let honest = honest_ids(sim);
    let chains: Vec<&Chain> = honest
        .iter()
        .map(|&id| replica_at(sim, id).chain())
        .collect();

    let min_final_height = chains.iter().map(|c| c.final_height()).min().unwrap_or(0);
    let max_final_height = chains.iter().map(|c| c.final_height()).max().unwrap_or(0);

    let mut agreement = true;
    let mut strict_ordering = true;
    for i in 0..chains.len() {
        for j in (i + 1)..chains.len() {
            if Chain::find_fork(chains[i], chains[j], true).is_some() {
                agreement = false;
            }
            if !Chain::c_strict_ordering(chains[i], chains[j], 1) {
                strict_ordering = false;
            }
        }
    }

    let mut burned: Vec<NodeId> = honest
        .iter()
        .flat_map(|&id| {
            replica_at(sim, id)
                .collateral()
                .burned()
                .collect::<Vec<_>>()
        })
        .collect();
    burned.sort_unstable();
    burned.dedup();

    let view_changes = honest
        .iter()
        .map(|&id| replica_at(sim, id).stats().view_changes)
        .sum();
    let exposes = honest
        .iter()
        .map(|&id| replica_at(sim, id).stats().exposes_applied)
        .sum();

    RunReport {
        honest,
        min_final_height,
        max_final_height,
        agreement,
        strict_ordering,
        burned,
        view_changes,
        exposes,
    }
}

/// Whether every honest player has `tx` in a *finalized* block — the
/// censorship-resistance observable (Definition 2).
pub fn tx_finalized_everywhere<N: Node + AsReplica>(sim: &Simulation<N>, tx: TxId) -> bool {
    honest_ids(sim)
        .iter()
        .all(|&id| replica_at(sim, id).chain().contains_tx_final(tx))
}

/// Whether any honest player has `tx` in any (even tentative) block.
pub fn tx_included_anywhere<N: Node + AsReplica>(sim: &Simulation<N>, tx: TxId) -> bool {
    honest_ids(sim)
        .iter()
        .any(|&id| replica_at(sim, id).chain().contains_tx(tx))
}

/// Average finalized height per entered round across honest replicas — a
/// throughput measure in [0, 1]; ≈1 means every round produced a block
/// (liveness), ≈0 means no progress (`σ_NP`).
pub fn throughput<N: Node + AsReplica>(sim: &Simulation<N>) -> f64 {
    let honest = honest_ids(sim);
    if honest.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &id in &honest {
        let node = replica_at(sim, id);
        let rounds = node.stats().rounds_entered.max(1) as f64;
        total += node.chain().final_height() as f64 / rounds;
    }
    total / honest.len() as f64
}
