//! Post-run analysis over a pRFT simulation: agreement, liveness,
//! censorship, forks, and burns — the observables every experiment reads.

use crate::replica::Replica;
use prft_sim::Simulation;
use prft_types::{Chain, NodeId, TxId};

/// Summary of a finished run, computed over the *honest* replicas (players
/// whose behavior label is `"honest"`), which is how every property in the
/// paper is stated.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Ids of the honest players.
    pub honest: Vec<NodeId>,
    /// Smallest finalized height among honest players.
    pub min_final_height: u64,
    /// Largest finalized height among honest players.
    pub max_final_height: u64,
    /// Whether all honest *finalized* prefixes agree (no fork): the
    /// `(t,k)`-agreement property.
    pub agreement: bool,
    /// Whether the full chains (incl. tentative) satisfy 1-strict ordering
    /// pairwise.
    pub strict_ordering: bool,
    /// Players whose collateral is burned in any honest view.
    pub burned: Vec<NodeId>,
    /// Total view changes across honest replicas.
    pub view_changes: u64,
    /// Total valid exposes applied across honest replicas.
    pub exposes: u64,
}

/// Whether a replica is honest for analysis purposes.
pub fn is_honest(replica: &Replica) -> bool {
    replica.behavior_label() == "honest"
}

/// Ids of all honest replicas. Crashed players are excluded: the paper's
/// properties quantify over correct (non-faulty) honest players.
pub fn honest_ids(sim: &Simulation<Replica>) -> Vec<NodeId> {
    (0..sim.n())
        .map(NodeId)
        .filter(|&id| is_honest(sim.node(id)) && !sim.is_crashed(id))
        .collect()
}

/// Computes the [`RunReport`] for a finished simulation.
pub fn analyze(sim: &Simulation<Replica>) -> RunReport {
    let honest = honest_ids(sim);
    let chains: Vec<&Chain> = honest.iter().map(|&id| sim.node(id).chain()).collect();

    let min_final_height = chains.iter().map(|c| c.final_height()).min().unwrap_or(0);
    let max_final_height = chains.iter().map(|c| c.final_height()).max().unwrap_or(0);

    let mut agreement = true;
    let mut strict_ordering = true;
    for i in 0..chains.len() {
        for j in (i + 1)..chains.len() {
            if Chain::find_fork(chains[i], chains[j], true).is_some() {
                agreement = false;
            }
            if !Chain::c_strict_ordering(chains[i], chains[j], 1) {
                strict_ordering = false;
            }
        }
    }

    let mut burned: Vec<NodeId> = honest
        .iter()
        .flat_map(|&id| sim.node(id).collateral().burned().collect::<Vec<_>>())
        .collect();
    burned.sort_unstable();
    burned.dedup();

    let view_changes = honest
        .iter()
        .map(|&id| sim.node(id).stats().view_changes)
        .sum();
    let exposes = honest
        .iter()
        .map(|&id| sim.node(id).stats().exposes_applied)
        .sum();

    RunReport {
        honest,
        min_final_height,
        max_final_height,
        agreement,
        strict_ordering,
        burned,
        view_changes,
        exposes,
    }
}

/// Whether every honest player has `tx` in a *finalized* block — the
/// censorship-resistance observable (Definition 2).
pub fn tx_finalized_everywhere(sim: &Simulation<Replica>, tx: TxId) -> bool {
    honest_ids(sim)
        .iter()
        .all(|&id| sim.node(id).chain().contains_tx_final(tx))
}

/// Whether any honest player has `tx` in any (even tentative) block.
pub fn tx_included_anywhere(sim: &Simulation<Replica>, tx: TxId) -> bool {
    honest_ids(sim)
        .iter()
        .any(|&id| sim.node(id).chain().contains_tx(tx))
}

/// Average finalized height per entered round across honest replicas — a
/// throughput measure in [0, 1]; ≈1 means every round produced a block
/// (liveness), ≈0 means no progress (`σ_NP`).
pub fn throughput(sim: &Simulation<Replica>) -> f64 {
    let honest = honest_ids(sim);
    if honest.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &id in &honest {
        let node = sim.node(id);
        let rounds = node.stats().rounds_entered.max(1) as f64;
        total += node.chain().final_height() as f64 / rounds;
    }
    total / honest.len() as f64
}
