//! Strategy injection points: the paper's strategy space
//! `{π_0, π_abs, π_ds, …}` as replica hooks.
//!
//! There is exactly one protocol state machine ([`crate::Replica`]); every
//! player — honest, byzantine, or rational — runs it. Deviation happens at
//! well-defined decision points where the replica consults its [`Behavior`]:
//! what to propose, whether/what to vote, commit, reveal, whether to expose
//! fraud and whether to join view changes. This mirrors the paper's model:
//! strategies are per-phase actions (abstain / double-sign / honest), and
//! the collusion can coordinate them arbitrarily.

use prft_types::{Block, Digest, NodeId, Round, TxId};
use std::any::Any;
use std::collections::HashSet;

/// What a leader does in the Propose phase.
#[derive(Debug, Clone)]
pub enum ProposeAction {
    /// `π_0`: propose the honestly assembled block.
    Honest,
    /// Propose a different block (e.g. with censored transactions removed).
    Replace(Block),
    /// `π_ds` as leader: send block `a` to everyone except `b_recipients`,
    /// and block `b` to `b_recipients` — the classic equivocation that
    /// seeds a fork.
    Equivocate {
        /// The first block.
        a: Block,
        /// The second block.
        b: Block,
        /// Who receives `b` (everyone else gets `a`).
        b_recipients: HashSet<NodeId>,
    },
    /// `π_abs`: propose nothing (indistinguishable from a crash).
    Silent,
}

/// What a player does at a ballot decision point (vote / commit / reveal /
/// final).
#[derive(Debug, Clone)]
pub enum BallotAction {
    /// `π_0`: sign the honest value.
    Honest,
    /// Sign a different value instead (sent to everyone).
    Replace(Digest),
    /// `π_ds`: sign the honest value toward most players but a second value
    /// toward `b_recipients`.
    Split {
        /// The alternative value.
        b: Digest,
        /// Who receives the `b` ballot (everyone else gets the honest one).
        b_recipients: HashSet<NodeId>,
    },
    /// `π_abs`: send nothing in this phase.
    Silent,
}

/// A player's strategy. The default implementation of every method is the
/// honest strategy `π_0`, so `struct Honest; impl Behavior for Honest {}`
/// is a complete honest player.
///
/// `Send + Sync` are supertraits so replicas (which box their behavior)
/// can move across threads — the `prft-lab` batch runner builds and runs
/// whole committees on worker threads — and so *captured* replicas inside
/// a checkpoint can be shared across workers through an `Arc` (the warm
/// start store hands the same captured prefix to many forks). Coordinated
/// strategies should share state through `Arc<Mutex<…>>` (see
/// `prft_adversary::Blackboard`).
///
/// [`BehaviorClone`] is a supertrait so a boxed behavior — and with it a
/// whole [`crate::Replica`] — is cloneable for checkpoint/fork warm
/// starts. Any `Behavior` that is also `Clone` gets it for free via the
/// blanket impl; coordinated strategies additionally override
/// [`Behavior::rebind_shared`] so a fork can splice in its own copy of
/// the shared coordination state instead of aliasing the original run's.
pub trait Behavior: Send + Sync + BehaviorClone {
    /// Short label for experiment tables ("honest", "abstain", "fork", …).
    fn label(&self) -> &'static str {
        "honest"
    }

    /// Leader decision: what to propose in `round`. `honest_block` is the
    /// block `π_0` would propose (parent = current tip, FIFO batch).
    fn on_propose(&mut self, round: Round, honest_block: &Block) -> ProposeAction {
        let _ = (round, honest_block);
        ProposeAction::Honest
    }

    /// Transactions to exclude when assembling a block as leader
    /// (the censorship set `Z`; `π_pc` uses this).
    fn censor_set(&self) -> Option<&HashSet<TxId>> {
        None
    }

    /// Vote decision on a validated proposal with hash `value`.
    fn on_vote(&mut self, round: Round, value: Digest) -> BallotAction {
        let _ = (round, value);
        BallotAction::Honest
    }

    /// Commit decision once a vote quorum for `value` is assembled.
    fn on_commit(&mut self, round: Round, value: Digest) -> BallotAction {
        let _ = (round, value);
        BallotAction::Honest
    }

    /// Reveal decision once a commit quorum for `value` is assembled.
    fn on_reveal(&mut self, round: Round, value: Digest) -> BallotAction {
        let _ = (round, value);
        BallotAction::Honest
    }

    /// Final decision when ready to finalize `value`.
    fn on_final(&mut self, round: Round, value: Digest) -> BallotAction {
        let _ = (round, value);
        BallotAction::Honest
    }

    /// Whether to broadcast an `Expose` when `|D_i| > t0`. Honest players
    /// always do; colluders suppress it (it burns their own deposits).
    fn send_expose(&self) -> bool {
        true
    }

    /// Whether to participate in view changes (abstainers don't — their
    /// silence is what stalls the protocol).
    fn join_view_change(&self) -> bool {
        true
    }

    /// Re-points any shared coordination state after a checkpoint fork.
    ///
    /// A cloned behavior initially shares `Arc`-held state (e.g. a fork
    /// blackboard) with the run it was cloned from; mutating it from the
    /// fork would corrupt the original. The fork driver deep-copies the
    /// shared state and calls this on every replica's behavior with the
    /// copy; coordinated behaviors downcast `state` to their concrete
    /// shared type and adopt it. The default is a no-op (uncoordinated
    /// strategies own all their state).
    fn rebind_shared(&mut self, state: &dyn Any) {
        let _ = state;
    }
}

/// Object-safe clone support for boxed behaviors.
///
/// Blanket-implemented for every `Behavior + Clone`, so strategy authors
/// just add `#[derive(Clone)]`.
pub trait BehaviorClone {
    /// Clones `self` into a fresh box.
    fn clone_box(&self) -> Box<dyn Behavior>;
}

impl<T: Behavior + Clone + 'static> BehaviorClone for T {
    fn clone_box(&self) -> Box<dyn Behavior> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Behavior> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The honest strategy `π_0`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Honest;

impl Behavior for Honest {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_defaults_are_honest() {
        let mut h = Honest;
        assert_eq!(h.label(), "honest");
        assert!(matches!(
            h.on_propose(Round(1), &Block::genesis()),
            ProposeAction::Honest
        ));
        assert!(matches!(
            h.on_vote(Round(1), Digest::ZERO),
            BallotAction::Honest
        ));
        assert!(matches!(
            h.on_commit(Round(1), Digest::ZERO),
            BallotAction::Honest
        ));
        assert!(matches!(
            h.on_reveal(Round(1), Digest::ZERO),
            BallotAction::Honest
        ));
        assert!(matches!(
            h.on_final(Round(1), Digest::ZERO),
            BallotAction::Honest
        ));
        assert!(h.send_expose());
        assert!(h.join_view_change());
        assert!(h.censor_set().is_none());
    }
}
