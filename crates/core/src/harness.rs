//! Experiment harness: assemble a committee with mixed strategies over a
//! chosen network and run it.

use crate::behavior::{Behavior, Honest};
use crate::config::Config;
use crate::replica::Replica;
use prft_crypto::KeyRegistry;
use prft_net::{
    AsynchronousNet, PartiallySynchronousNet, PartitionWindow, PartitionedNet, SynchronousNet,
};
use prft_sim::{LinkModel, QueueBackend, SimTime, Simulation};
use prft_types::{NodeId, Transaction};
use std::collections::HashMap;

/// Which network model to run under.
pub enum NetworkChoice {
    /// Synchronous with known bound Δ.
    Synchronous {
        /// The delay bound.
        delta: SimTime,
    },
    /// Partially synchronous: adversarial until `gst`, then bounded by Δ.
    PartiallySynchronous {
        /// Global stabilization time.
        gst: SimTime,
        /// Post-GST bound.
        delta: SimTime,
    },
    /// Asynchronous (finite unbounded delays).
    Asynchronous,
    /// Any custom model (e.g. with partitions or targeted delays).
    Custom(Box<dyn LinkModel>),
}

impl NetworkChoice {
    /// Resolves the choice into a live link model. Public so the
    /// checkpoint-fork path can rebuild a fresh network stack for a
    /// restored simulation without going through a full [`Harness`].
    pub fn into_model(self) -> Box<dyn LinkModel> {
        match self {
            NetworkChoice::Synchronous { delta } => Box::new(SynchronousNet::new(delta)),
            NetworkChoice::PartiallySynchronous { gst, delta } => {
                Box::new(PartiallySynchronousNet::new(gst, delta))
            }
            NetworkChoice::Asynchronous => Box::new(AsynchronousNet::typical()),
            NetworkChoice::Custom(model) => model,
        }
    }
}

/// Builder for a pRFT simulation.
///
/// Defaults: every player honest, synchronous network with Δ = 10,
/// `t0 = ⌈n/4⌉ − 1`, unlimited rounds (callers should either set
/// [`Harness::max_rounds`] or run with a horizon).
pub struct Harness {
    n: usize,
    seed: u64,
    cfg: Config,
    network: Option<NetworkChoice>,
    queue: QueueBackend,
    behaviors: HashMap<NodeId, Box<dyn Behavior>>,
    pending_txs: Vec<(Option<NodeId>, Transaction)>,
}

impl Harness {
    /// Starts a harness for `n` players with a simulation seed.
    pub fn new(n: usize, seed: u64) -> Self {
        Harness {
            n,
            seed,
            cfg: Config::for_committee(n),
            network: None,
            queue: QueueBackend::default(),
            behaviors: HashMap::new(),
            pending_txs: Vec::new(),
        }
    }

    /// Selects the event-queue backend the simulation drains. Results are
    /// byte-identical across backends; this only changes speed.
    #[must_use]
    pub fn queue(mut self, backend: QueueBackend) -> Self {
        self.queue = backend;
        self
    }

    /// Selects the verification strategy (memoized fast path vs reference
    /// re-verification). Results are byte-identical across modes; this
    /// only changes speed.
    #[must_use]
    pub fn verify_mode(mut self, mode: prft_crypto::VerifyMode) -> Self {
        self.cfg.verify_mode = mode;
        self
    }

    /// Overrides the protocol configuration wholesale.
    #[must_use]
    pub fn config(mut self, cfg: Config) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the network model.
    #[must_use]
    pub fn network(mut self, network: NetworkChoice) -> Self {
        self.network = Some(network);
        self
    }

    /// Convenience: partially synchronous network with a single partition
    /// window before GST.
    #[must_use]
    pub fn partitioned_until_gst(
        self,
        gst: SimTime,
        delta: SimTime,
        groups: Vec<Vec<NodeId>>,
    ) -> Self {
        let base = PartiallySynchronousNet::new(gst, delta);
        let mut net = PartitionedNet::new(Box::new(base));
        net.add_window(PartitionWindow::split(SimTime::ZERO, gst, groups));
        self.network(NetworkChoice::Custom(Box::new(net)))
    }

    /// Assigns a strategy to one player (default: honest).
    #[must_use]
    pub fn with_behavior(mut self, node: NodeId, behavior: Box<dyn Behavior>) -> Self {
        self.behaviors.insert(node, behavior);
        self
    }

    /// Assigns strategies in bulk (the scenario-spec path in `prft-lab`).
    #[must_use]
    pub fn with_behaviors(
        mut self,
        behaviors: impl IntoIterator<Item = (NodeId, Box<dyn Behavior>)>,
    ) -> Self {
        for (node, behavior) in behaviors {
            self.behaviors.insert(node, behavior);
        }
        self
    }

    /// Overrides the agreement threshold τ (Claim 1 experiments only).
    #[must_use]
    pub fn tau(mut self, tau: usize) -> Self {
        self.cfg.tau_override = Some(tau);
        self
    }

    /// Toggles the Reveal/PoF machinery (the accountability ablation).
    #[must_use]
    pub fn accountable(mut self, on: bool) -> Self {
        self.cfg.accountable = on;
        self
    }

    /// Committee size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The simulation seed this harness will build with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stops every replica after `rounds` completed rounds (makes runs
    /// quiescent).
    #[must_use]
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.cfg.max_rounds = rounds;
        self
    }

    /// Sets the per-phase timeout Δ.
    #[must_use]
    pub fn phase_timeout(mut self, timeout: SimTime) -> Self {
        self.cfg.phase_timeout = timeout;
        self
    }

    /// Preloads a transaction into one player's mempool (or every player's,
    /// with `None` — "all honest players have tx as input").
    #[must_use]
    pub fn submit(mut self, to: Option<NodeId>, tx: Transaction) -> Self {
        self.pending_txs.push((to, tx));
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation<Replica> {
        let (replicas, network, seed, queue) = self.build_parts();
        Simulation::with_backend(replicas, network, seed, queue)
    }

    /// Builds the committee but returns the raw parts instead of a
    /// simulation — the workload layer appends client actors to the node
    /// population before assembly (`prft_workload::assemble`).
    pub fn build_parts(mut self) -> (Vec<Replica>, Box<dyn LinkModel>, u64, QueueBackend) {
        let (registry, keys) = KeyRegistry::trusted_setup(self.n, self.seed ^ 0x5eed);
        let mut replicas = Vec::with_capacity(self.n);
        for (i, key) in keys.into_iter().enumerate() {
            let behavior = self
                .behaviors
                .remove(&NodeId(i))
                .unwrap_or_else(|| Box::new(Honest));
            replicas.push(Replica::new(
                self.cfg.clone(),
                key,
                registry.clone(),
                behavior,
            ));
        }
        for (to, tx) in &self.pending_txs {
            match to {
                Some(node) => {
                    replicas[node.0].mempool_mut().submit(tx.clone());
                }
                None => {
                    for r in &mut replicas {
                        r.mempool_mut().submit(tx.clone());
                    }
                }
            }
        }
        let network = self
            .network
            .take()
            .unwrap_or(NetworkChoice::Synchronous { delta: SimTime(10) });
        (replicas, network.into_model(), self.seed, self.queue)
    }
}
