//! The collateral (deposit/burn) ledger — the penalty substrate.
//!
//! Before participating, each player deposits `L` (paper Section 5.3.1);
//! a verified Proof-of-Fraud burns the deviator's deposit (`Stash`, modeled
//! after Proof-of-Burn). The ledger is the bridge between the protocol and
//! the utility model: `D(π, σ) = 1` exactly when a player's deposit burned.

use prft_types::NodeId;
use std::collections::BTreeSet;

/// Per-player deposits with burn tracking and the paper's q-block lock:
/// "this collateral is locked unless some specified q number of blocks are
/// mined" (Section 5.3.1) — a withdrawal is only possible once the chain
/// has grown `q` blocks past the deposit height, so PoF from recent rounds
/// can always still reach the deposit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollateralLedger {
    deposit: u64,
    burned: BTreeSet<NodeId>,
    n: usize,
    lock_blocks: u64,
}

impl CollateralLedger {
    /// Opens the ledger with `n` players each depositing `deposit` (= `L`),
    /// with no withdrawal lock.
    pub fn new(n: usize, deposit: u64) -> Self {
        Self::with_lock(n, deposit, 0)
    }

    /// Opens the ledger with a `q`-block withdrawal lock.
    pub fn with_lock(n: usize, deposit: u64, lock_blocks: u64) -> Self {
        CollateralLedger {
            deposit,
            burned: BTreeSet::new(),
            n,
            lock_blocks,
        }
    }

    /// The q-block lock parameter.
    pub fn lock_blocks(&self) -> u64 {
        self.lock_blocks
    }

    /// Whether `player` could withdraw its deposit when the chain has
    /// `chain_height` blocks and the deposit was made at height 0: requires
    /// `q` mined blocks and an unburned deposit.
    pub fn withdrawable(&self, player: NodeId, chain_height: u64) -> bool {
        !self.is_burned(player) && chain_height >= self.lock_blocks
    }

    /// The deposit amount `L`.
    pub fn deposit(&self) -> u64 {
        self.deposit
    }

    /// Burns `player`'s deposit (idempotent). Returns `true` if this call
    /// performed the burn.
    ///
    /// # Panics
    /// Panics if `player` is out of range — burns must come from verified
    /// PoF, which only names registered players.
    pub fn burn(&mut self, player: NodeId) -> bool {
        assert!(player.0 < self.n, "unknown player {player}");
        self.burned.insert(player)
    }

    /// Whether `player`'s deposit is burned.
    pub fn is_burned(&self, player: NodeId) -> bool {
        self.burned.contains(&player)
    }

    /// Remaining balance of `player` (0 if burned, `L` otherwise).
    pub fn balance(&self, player: NodeId) -> u64 {
        if self.is_burned(player) {
            0
        } else {
            self.deposit
        }
    }

    /// All burned players, sorted.
    pub fn burned(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.burned.iter().copied()
    }

    /// Number of burned players.
    pub fn burned_count(&self) -> usize {
        self.burned.len()
    }

    /// Total value destroyed so far.
    pub fn total_burned(&self) -> u64 {
        self.burned.len() as u64 * self.deposit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_is_idempotent() {
        let mut l = CollateralLedger::new(4, 100);
        assert!(l.burn(NodeId(2)));
        assert!(!l.burn(NodeId(2)));
        assert_eq!(l.burned_count(), 1);
        assert_eq!(l.total_burned(), 100);
    }

    #[test]
    fn balances_reflect_burns() {
        let mut l = CollateralLedger::new(4, 100);
        l.burn(NodeId(1));
        assert_eq!(l.balance(NodeId(1)), 0);
        assert_eq!(l.balance(NodeId(0)), 100);
        assert!(l.is_burned(NodeId(1)));
        assert!(!l.is_burned(NodeId(0)));
    }

    #[test]
    fn burned_iterates_sorted() {
        let mut l = CollateralLedger::new(4, 1);
        l.burn(NodeId(3));
        l.burn(NodeId(1));
        assert_eq!(l.burned().collect::<Vec<_>>(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "unknown player")]
    fn out_of_range_burn_panics() {
        CollateralLedger::new(2, 1).burn(NodeId(5));
    }

    #[test]
    fn q_block_lock_gates_withdrawal() {
        let mut l = CollateralLedger::with_lock(3, 100, 5);
        assert_eq!(l.lock_blocks(), 5);
        assert!(!l.withdrawable(NodeId(0), 4), "locked until q blocks");
        assert!(l.withdrawable(NodeId(0), 5));
        l.burn(NodeId(0));
        assert!(!l.withdrawable(NodeId(0), 100), "burned is gone forever");
    }

    #[test]
    fn default_ledger_has_no_lock() {
        let l = CollateralLedger::new(2, 1);
        assert!(l.withdrawable(NodeId(1), 0));
    }
}
