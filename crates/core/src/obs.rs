//! Protocol-level observability assembly: one [`ObsRegistry`] and one
//! [`ChromeTrace`] per finished run.
//!
//! The sim crate owns the mechanics (counters, hooks, trace builder); this
//! module knows what a *pRFT* run looks like — which replica statistics
//! become counters, and how phase-transition logs become Perfetto spans.
//! Both outputs derive solely from the pinned dispatch order, so they are
//! byte-identical across queue backends and worker thread counts.
//!
//! Like the analysis layer, assembly is generic over [`AsReplica`]: in a
//! workload run the node population mixes replicas with client actors, and
//! the replica-derived counters and spans skip the clients.

use crate::analysis::AsReplica;
use prft_sim::obs::hooks::HookSnapshot;
use prft_sim::{ChromeTrace, Node, ObsRegistry, Simulation};

/// Assembles the full counter registry for one finished run: the engine's
/// `engine.*`/`send.*` counters, the crypto hook deltas captured in
/// `hooks`, and the per-replica protocol counters (`replica.*`,
/// `recv.P<i>.<kind>.*`).
///
/// `hooks` must be the delta for exactly this run: call
/// [`prft_sim::obs::hooks::reset`] before building the simulation and
/// [`prft_sim::obs::hooks::snapshot`] after it finishes, on the thread
/// that ran it.
pub fn collect<N: Node + AsReplica>(sim: &Simulation<N>, hooks: &HookSnapshot) -> ObsRegistry {
    let mut reg = sim.observability();
    reg.add("crypto.sig_verifies", hooks.sig_verifies);
    reg.add("engine.clone_bytes", hooks.clone_bytes);
    for replica in sim.nodes().filter_map(AsReplica::as_replica) {
        let stats = replica.stats();
        reg.add("replica.rounds_entered", stats.rounds_entered);
        reg.add("replica.view_changes", stats.view_changes);
        reg.add("replica.fraud_detections", stats.fraud_detections);
        reg.add("replica.exposes_sent", stats.exposes_sent);
        reg.add("replica.exposes_applied", stats.exposes_applied);
        let id = replica.id().0;
        for (kind, ks) in &stats.recv_msgs {
            reg.add(&format!("recv.P{id}.{kind}.msgs"), ks.count);
            reg.add(&format!("recv.P{id}.{kind}.bytes"), ks.bytes);
        }
    }
    reg
}

/// Builds the Chrome-trace document for one finished run: one track per
/// actor (replicas `P<i>`, workload clients `C<i>`), phase spans on the
/// replica tracks (each phase lasts until the next transition, the last
/// until `sim.now()`), plus message-delivery instants when the simulation
/// ran with tracing enabled.
pub fn chrome_trace<N: Node + AsReplica>(sim: &Simulation<N>) -> ChromeTrace {
    let mut ct = ChromeTrace::new();
    let end = sim.now();
    for (i, node) in sim.nodes().enumerate() {
        let name = if node.as_replica().is_some() {
            format!("P{i}")
        } else {
            format!("C{i}")
        };
        ct.thread_name(0, i as u32, &name);
    }
    for (i, node) in sim.nodes().enumerate() {
        let Some(replica) = node.as_replica() else {
            continue;
        };
        let transitions = &replica.stats().phase_transitions;
        for (j, (round, phase, at)) in transitions.iter().enumerate() {
            let span_end = transitions.get(j + 1).map(|(_, _, t)| *t).unwrap_or(end);
            ct.complete(
                phase.label(),
                "phase",
                0,
                i as u32,
                *at,
                span_end,
                &[("round", round.0)],
            );
        }
    }
    for e in sim.trace().entries() {
        ct.instant(
            e.kind,
            "msg",
            0,
            e.to.0 as u32,
            e.at,
            &[("from", e.from.0 as u64)],
        );
    }
    ct
}
