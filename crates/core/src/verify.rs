//! Memoized ballot / certificate verification — the accountable large-n
//! fast path.
//!
//! Signature verification is a pure function of (registry, signed bytes),
//! and the accountable Reveal phase re-checks every distinct commit
//! certificate ~quorum times (the q(1+q(q+1)) term that makes accountable
//! n = 64 cost 15.8M verifies for two rounds). [`VerifyCache`] collapses
//! that to once per distinct content, per replica:
//!
//! * **Ballot memo** — a map keyed on the *full* content of a signed
//!   ballot (round, phase, value, signer, tag). Because the key covers
//!   every byte that feeds verification, a cached verdict can never leak
//!   to a tampered twin: change anything and you get a different key.
//! * **Certificate memo** — keyed on the `Arc` allocation address of a
//!   [`CommitCert`]. Commit broadcasts hand every replica the *same*
//!   allocation, and Reveals carry those same `Arc`s onward, so the
//!   O(q²)-signature re-validation of one already-seen certificate
//!   becomes a single map hit. Each entry keeps a clone of the `Arc`, so
//!   the allocation outlives the entry and the address can never be
//!   recycled onto different content while cached.
//!
//! **Counting discipline** (what keeps reports byte-identical across
//! [`VerifyMode`]s): `crypto.sig_verifies` counts *logical* verifications
//! — a memo hit adds the same count the reference path would have paid,
//! via one batched add. The new `memo_hits`/`memo_misses` hook counters
//! split that logical total into answered-from-cache vs actually-hashed,
//! so `memo_hits + memo_misses == sig_verifies` on the fast path and the
//! miss count is the true SHA-256 workload. The memo counters surface
//! only in `prft-bench profile` output — never in scenario reports,
//! which must not depend on the knob.

use crate::messages::{CommitCert, Phase, SignedBallot};
use prft_crypto::{KeyRegistry, VerifyMode};
use prft_sim::obs::hooks;
use prft_types::{Digest, NodeId, Round};
use std::collections::HashMap;
use std::sync::Arc;

/// The full content of a signed ballot, as a hashable memo key.
///
/// Covers every field that feeds verification — the signed slot (round,
/// phase), the endorsed value, the claimed signer, and the MAC tag — so
/// two `SignedBallot`s map to the same key iff they are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BallotKey {
    round: u64,
    phase: u8,
    value: Digest,
    signer: NodeId,
    tag: Digest,
}

impl BallotKey {
    fn of(ballot: &SignedBallot) -> BallotKey {
        BallotKey {
            round: ballot.payload.round.0,
            phase: ballot.payload.phase.slot_id(),
            value: ballot.payload.value,
            signer: ballot.sig.signer(),
            tag: ballot.sig.tag(),
        }
    }
}

/// A cached certificate verdict.
#[derive(Clone)]
struct CertEntry {
    /// Keeps the certificate allocation alive for the entry's lifetime:
    /// the map key is this `Arc`'s address, and an address can only be
    /// trusted to identify content while that allocation cannot be freed
    /// and recycled.
    _keep: Arc<CommitCert>,
    /// The verdict `CommitCert::validate` reached.
    ok: bool,
    /// Quorum the verdict was computed against (re-validate on mismatch).
    quorum: usize,
    /// Logical signature verifications the reference path performs for
    /// one validation of this certificate — replayed into
    /// `crypto.sig_verifies` on every hit so the counter stays identical
    /// to the reference path's.
    verifies: u64,
    /// Certificate round, for pruning.
    round: Round,
}

/// Outcome of one certificate validation through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertVerdict {
    /// Whether the certificate is valid — always exactly what
    /// `CommitCert::validate` would say.
    pub ok: bool,
    /// Whether the verdict was answered from the certificate memo (always
    /// `false` in [`VerifyMode::Reference`]). A cached verdict proves this
    /// replica already fully processed — walked *and*, when valid, fed to
    /// its fraud detector — the same allocation earlier in the current
    /// round (entries never survive a round change at a call site, and
    /// view changes always advance the round), so callers may skip the
    /// idempotent re-observation of its ballots.
    pub cached: bool,
    /// Logical signature verifications this validation charged (what the
    /// reference path would perform for it) — used by the Reveal batch
    /// memo to record a whole batch's replay total. Zero in
    /// [`VerifyMode::Reference`] (the reference path counts internally).
    pub verifies: u64,
}

/// A cached Reveal-batch verdict: one entry summarizes the full
/// certificate scan of one sender's Reveal payload.
#[derive(Clone)]
struct BatchEntry {
    /// Keeps the outer `Vec` *and* every inner certificate allocation
    /// alive, so the pointer identities the key hashes stay unique.
    keep: Arc<Vec<Arc<CommitCert>>>,
    /// Quorum the batch was scanned against.
    quorum: usize,
    /// Total logical verifications of one reference-path scan.
    verifies: u64,
    /// Round of the scan, for pruning.
    round: Round,
}

/// Per-replica verification memo (ballot + certificate layers).
///
/// In [`VerifyMode::Reference`] every call passes straight through to the
/// original verify-on-every-arrival code path; in [`VerifyMode::Fast`]
/// verdicts are cached per content as described on the module.
///
/// `Clone` supports checkpoint/fork warm starts: the clone shares the
/// same certificate/batch `Arc` allocations, so its address-keyed memo
/// entries remain valid in the forked run (which also clones — and
/// therefore shares — those allocations through the message arena).
#[derive(Clone)]
pub struct VerifyCache {
    mode: VerifyMode,
    ballots: HashMap<BallotKey, bool>,
    certs: HashMap<usize, CertEntry>,
    /// Dense per-(round, value) table of *valid* Vote-ballot MAC tags,
    /// indexed by signer id — the walk's fast path. A slot holds the one
    /// deterministic tag a valid vote from that signer for that (round,
    /// value) can carry, so an in-cert vote whose tag matches is exactly a
    /// ballot-memo hit at array-probe cost. Populated only by walks (on a
    /// vote's first successful verification); mismatches fall back to the
    /// full ballot memo, which also handles and caches negatives.
    vote_tags: HashMap<(u64, Digest), Vec<Option<Digest>>>,
    /// Reveal-batch memo, keyed on the hash of the batch's pointer
    /// identities (outer scan order included) plus quorum.
    batches: HashMap<u64, BatchEntry>,
}

/// Hash of a Reveal batch's identity: every inner allocation address in
/// scan order, plus the quorum — collisions are resolved by the pointer
/// equality re-check on lookup.
fn batch_key(certs: &[Arc<CommitCert>], quorum: usize) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    quorum.hash(&mut h);
    for c in certs {
        (Arc::as_ptr(c) as usize).hash(&mut h);
    }
    h.finish()
}

impl VerifyCache {
    /// An empty cache operating in `mode`.
    pub fn new(mode: VerifyMode) -> VerifyCache {
        VerifyCache {
            mode,
            ballots: HashMap::new(),
            certs: HashMap::new(),
            vote_tags: HashMap::new(),
            batches: HashMap::new(),
        }
    }

    /// The mode this cache operates in.
    pub fn mode(&self) -> VerifyMode {
        self.mode
    }

    /// Verifies one signed ballot, memoized per content on the fast path.
    ///
    /// The logical `crypto.sig_verifies` count is identical across modes:
    /// a hit adds the one verification the reference path would have
    /// performed.
    pub fn verify_ballot(&mut self, ballot: &SignedBallot, registry: &KeyRegistry) -> bool {
        if self.mode == VerifyMode::Reference {
            return ballot.verify(registry);
        }
        let key = BallotKey::of(ballot);
        if let Some(&ok) = self.ballots.get(&key) {
            hooks::add_sig_verifies(1);
            hooks::add_memo_hits(1);
            return ok;
        }
        hooks::add_memo_misses(1);
        let ok = ballot.verify(registry); // counts the sig_verify itself
        self.ballots.insert(key, ok);
        ok
    }

    /// Validates a commit certificate, memoized per allocation on the
    /// fast path (with the ballot memo underneath for first-time walks,
    /// which is also what dedupes across the certificates of one Reveal
    /// batch: the first certificate's walk warms the vote ballots for
    /// every later certificate sharing them).
    pub fn validate_cert(
        &mut self,
        cert: &Arc<CommitCert>,
        registry: &KeyRegistry,
        quorum: usize,
    ) -> CertVerdict {
        if self.mode == VerifyMode::Reference {
            return CertVerdict {
                ok: cert.validate(registry, quorum),
                cached: false,
                verifies: 0,
            };
        }
        let key = Arc::as_ptr(cert) as usize;
        if let Some(entry) = self.certs.get(&key) {
            if entry.quorum == quorum {
                hooks::add_sig_verifies(entry.verifies);
                hooks::add_memo_hits(entry.verifies);
                return CertVerdict {
                    ok: entry.ok,
                    cached: true,
                    verifies: entry.verifies,
                };
            }
        }
        let (ok, verifies) =
            prft_sim::obs::timed("verify_cert", || self.walk_cert(cert, registry, quorum));
        self.certs.insert(
            key,
            CertEntry {
                _keep: Arc::clone(cert),
                ok,
                quorum,
                verifies,
                round: cert.commit.payload.round,
            },
        );
        CertVerdict {
            ok,
            cached: false,
            verifies,
        }
    }

    /// Answers a whole Reveal batch from the batch memo: returns `true`
    /// (after replaying the batch's total logical verify count) iff this
    /// exact sequence of certificate allocations was fully scanned against
    /// the same quorum before. A hit means every per-certificate verdict
    /// would come back `cached`, so the caller skips the scan outright.
    /// Always `false` in [`VerifyMode::Reference`].
    pub fn replay_reveal_batch(&mut self, certs: &[Arc<CommitCert>], quorum: usize) -> bool {
        if self.mode == VerifyMode::Reference {
            return false;
        }
        if let Some(entry) = self.batches.get(&batch_key(certs, quorum)) {
            if entry.quorum == quorum
                && entry.keep.len() == certs.len()
                && entry.keep.iter().zip(certs).all(|(a, b)| Arc::ptr_eq(a, b))
            {
                hooks::add_sig_verifies(entry.verifies);
                hooks::add_memo_hits(entry.verifies);
                return true;
            }
        }
        false
    }

    /// Records one fully scanned Reveal batch for later replay. Call only
    /// after every certificate in `certs` went through [`validate_cert`]
    /// (so all first-time side effects — walks, detector observations —
    /// have already happened); `verifies` is the summed
    /// [`CertVerdict::verifies`] of that scan. No-op in
    /// [`VerifyMode::Reference`].
    ///
    /// [`validate_cert`]: VerifyCache::validate_cert
    pub fn record_reveal_batch(
        &mut self,
        certs: &Arc<Vec<Arc<CommitCert>>>,
        quorum: usize,
        verifies: u64,
        round: Round,
    ) {
        if self.mode == VerifyMode::Reference {
            return;
        }
        self.batches.insert(
            batch_key(certs, quorum),
            BatchEntry {
                keep: Arc::clone(certs),
                quorum,
                verifies,
                round,
            },
        );
    }

    /// One full certificate walk, mirroring `CommitCert::validate`'s exact
    /// short-circuit structure (phase check before the commit verify; each
    /// vote's phase/round/value checks before its verify; stop at the
    /// first failure; signer dedup at the end). Returns the verdict and
    /// the number of logical verifications the reference path performs for
    /// this certificate, for replay on later hits.
    ///
    /// Each vote first probes the dense tag table for (round, value): a
    /// tag match *is* a ballot-memo hit (the slot was written from that
    /// vote's first successful verification, and a valid MAC tag is a
    /// deterministic function of the payload) at array-index cost, with
    /// the counter adds batched into one flush per walk. Anything else —
    /// unknown signer, tag mismatch, forgery — takes the full ballot-memo
    /// path, which performs and caches the verdict.
    fn walk_cert(
        &mut self,
        cert: &CommitCert,
        registry: &KeyRegistry,
        quorum: usize,
    ) -> (bool, u64) {
        if cert.commit.payload.phase != Phase::Commit {
            return (false, 0);
        }
        let mut verifies = 1u64;
        if !self.verify_ballot(&cert.commit, registry) {
            return (false, verifies);
        }
        let round = cert.commit.payload.round;
        let value = cert.commit.payload.value;
        // Take the tag table out of the map for the walk so the fallback
        // can borrow `self` mutably; walks are the table's only writer, so
        // nothing repopulates the key underneath us.
        let mut tags = self.vote_tags.remove(&(round.0, value)).unwrap_or_default();
        let mut signers: Vec<NodeId> = Vec::with_capacity(cert.votes.len());
        let mut table_hits = 0u64;
        let mut ok = true;
        for v in &cert.votes {
            if v.payload.phase != Phase::Vote
                || v.payload.round != round
                || v.payload.value != value
            {
                ok = false;
                break;
            }
            verifies += 1;
            let signer = v.signer();
            if tags.get(signer.0).copied().flatten() == Some(v.sig.tag()) {
                table_hits += 1;
            } else if self.verify_ballot(v, registry) {
                if tags.len() <= signer.0 {
                    tags.resize(signer.0 + 1, None);
                }
                tags[signer.0] = Some(v.sig.tag());
            } else {
                ok = false;
                break;
            }
            signers.push(signer);
        }
        if table_hits > 0 {
            hooks::add_sig_verifies(table_hits);
            hooks::add_memo_hits(table_hits);
        }
        self.vote_tags.insert((round.0, value), tags);
        if !ok {
            return (false, verifies);
        }
        if !signers.is_sorted() {
            signers.sort_unstable();
        }
        signers.dedup();
        (signers.len() >= quorum, verifies)
    }

    /// Drops entries from rounds before `round − 1`. Finals of round r
    /// are processed while the replica sits in round r + 1, so the
    /// previous round stays warm; anything older can never be looked up
    /// again (stale-round messages are dropped before verification).
    pub fn prune_before(&mut self, round: Round) {
        let keep = round.0.saturating_sub(1);
        self.ballots.retain(|k, _| k.round >= keep);
        self.certs.retain(|_, e| e.round.0 >= keep);
        self.vote_tags.retain(|k, _| k.0 >= keep);
        self.batches.retain(|_, e| e.round.0 >= keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Ballot;
    use crate::pof::{signed_ballot, FraudDetector};
    use prft_crypto::Signed;

    fn setup(n: usize) -> (KeyRegistry, Vec<prft_crypto::SecretKey>) {
        KeyRegistry::trusted_setup(n, 7)
    }

    fn value(tag: u8) -> Digest {
        Digest::of_bytes(&[tag])
    }

    fn cert(keys: &[prft_crypto::SecretKey], round: u64, v: Digest, voters: usize) -> CommitCert {
        let votes = keys
            .iter()
            .take(voters)
            .map(|k| Signed::sign(Ballot::new(Round(round), Phase::Vote, v), k))
            .collect();
        CommitCert {
            commit: Signed::sign(Ballot::new(Round(round), Phase::Commit, v), &keys[0]),
            votes,
        }
    }

    #[test]
    fn ballot_memo_answers_repeats_without_hashing() {
        let (reg, keys) = setup(2);
        let b = signed_ballot(&keys[0], Round(1), Phase::Vote, value(1));
        let mut cache = VerifyCache::new(VerifyMode::Fast);
        hooks::reset();
        assert!(cache.verify_ballot(&b, &reg));
        assert!(cache.verify_ballot(&b, &reg));
        assert!(cache.verify_ballot(&b, &reg));
        let s = hooks::snapshot();
        // Logical count matches the reference path (3 verifies)…
        assert_eq!(s.sig_verifies, 3);
        // …but only one hash was actually computed.
        assert_eq!(s.memo_misses, 1);
        assert_eq!(s.memo_hits, 2);
        assert_eq!(s.memo_hits + s.memo_misses, s.sig_verifies);
        hooks::reset();
    }

    #[test]
    fn tampered_twin_of_a_cached_ballot_still_fails() {
        // The adversarial case the content key exists for: a valid ballot
        // is cached, then an attacker replays it with the value swapped
        // (keeping the old signature). The forgery must fail — it maps to
        // a different key, so the cached `true` is unreachable.
        let (reg, keys) = setup(2);
        let honest = signed_ballot(&keys[0], Round(1), Phase::Vote, value(1));
        let mut cache = VerifyCache::new(VerifyMode::Fast);
        assert!(cache.verify_ballot(&honest, &reg));
        let mut forged = honest.clone();
        forged.payload.value = value(2);
        assert!(!cache.verify_ballot(&forged, &reg), "forged value");
        // And a *differently signed* twin (same payload, wrong key) too.
        let wrong_signer = Signed::sign(honest.payload, &keys[1]);
        let mut impersonation = wrong_signer.clone();
        impersonation.sig = honest.sig;
        // impersonation: keys[1]'s payload with keys[0]'s signature —
        // same (payload, signer=0, tag) as `honest`, so it *is* honest
        // and legitimately verifies; the real cross-check is that
        // keys[1]'s own signature stays independently cached.
        assert!(cache.verify_ballot(&impersonation, &reg));
        assert!(cache.verify_ballot(&wrong_signer, &reg));
        // Negative verdicts are cached as negatives, never upgraded.
        assert!(!cache.verify_ballot(&forged, &reg));
    }

    #[test]
    fn cert_memo_replays_the_reference_verify_count() {
        let (reg, keys) = setup(4);
        let c = Arc::new(cert(&keys, 1, value(7), 3));
        let mut cache = VerifyCache::new(VerifyMode::Fast);
        hooks::reset();
        assert!(cache.validate_cert(&c, &reg, 3).ok);
        let first = hooks::snapshot();
        // Reference cost of one validation: commit + 3 votes.
        assert_eq!(first.sig_verifies, 4);
        assert_eq!(first.memo_misses, 4);
        assert!(cache.validate_cert(&c, &reg, 3).ok);
        let second = hooks::snapshot();
        // The hit replays all 4 logical verifies, hashes nothing.
        assert_eq!(second.sig_verifies, 8);
        assert_eq!(second.memo_misses, 4);
        assert_eq!(second.memo_hits, 4);
        hooks::reset();
    }

    #[test]
    fn cert_memo_is_per_allocation_not_per_value() {
        // Two equal-content certificates in different allocations verify
        // independently at the cert layer but share the ballot memo — the
        // second walk is all ballot hits, no new hashing.
        let (reg, keys) = setup(4);
        let a = Arc::new(cert(&keys, 1, value(7), 3));
        let b = Arc::new(a.as_ref().clone());
        let mut cache = VerifyCache::new(VerifyMode::Fast);
        hooks::reset();
        assert!(cache.validate_cert(&a, &reg, 3).ok);
        assert!(cache.validate_cert(&b, &reg, 3).ok);
        let s = hooks::snapshot();
        assert_eq!(s.sig_verifies, 8, "logical count is mode-identical");
        assert_eq!(s.memo_misses, 4, "second walk re-hashes nothing");
        hooks::reset();
    }

    #[test]
    fn cert_verdicts_report_freshness() {
        // `cached` is the signal replicas use to skip idempotent detector
        // re-observation: false on the first walk (and always in reference
        // mode), true on a same-allocation, same-quorum repeat.
        let (reg, keys) = setup(4);
        let c = Arc::new(cert(&keys, 1, value(7), 3));
        let mut fast = VerifyCache::new(VerifyMode::Fast);
        assert!(!fast.validate_cert(&c, &reg, 3).cached, "first walk");
        assert!(fast.validate_cert(&c, &reg, 3).cached, "repeat is a hit");
        assert!(
            !fast.validate_cert(&c, &reg, 4).cached,
            "quorum change forces a fresh walk"
        );
        let mut reference = VerifyCache::new(VerifyMode::Reference);
        assert!(!reference.validate_cert(&c, &reg, 3).cached);
        assert!(
            !reference.validate_cert(&c, &reg, 3).cached,
            "reference mode never answers from cache"
        );
    }

    #[test]
    fn quorum_change_invalidates_a_cert_verdict() {
        let (reg, keys) = setup(4);
        let c = Arc::new(cert(&keys, 1, value(7), 3));
        let mut cache = VerifyCache::new(VerifyMode::Fast);
        assert!(cache.validate_cert(&c, &reg, 3).ok);
        assert!(
            !cache.validate_cert(&c, &reg, 4).ok,
            "cached verdict for quorum 3 must not answer quorum 4"
        );
        assert!(
            cache.validate_cert(&c, &reg, 3).ok,
            "re-walked verdicts land"
        );
    }

    #[test]
    fn reference_mode_never_touches_the_memo_counters() {
        let (reg, keys) = setup(4);
        let c = Arc::new(cert(&keys, 1, value(7), 3));
        let b = signed_ballot(&keys[0], Round(1), Phase::Vote, value(1));
        let mut cache = VerifyCache::new(VerifyMode::Reference);
        hooks::reset();
        assert!(cache.verify_ballot(&b, &reg));
        assert!(cache.verify_ballot(&b, &reg));
        assert!(cache.validate_cert(&c, &reg, 3).ok);
        assert!(cache.validate_cert(&c, &reg, 3).ok);
        let s = hooks::snapshot();
        assert_eq!(s.memo_hits, 0);
        assert_eq!(s.memo_misses, 0);
        assert_eq!(s.sig_verifies, 2 + 2 * 4);
        hooks::reset();
    }

    #[test]
    fn fraud_detection_fires_on_two_cached_conflicting_ballots() {
        // Equivocation detection must survive memoization: both
        // conflicting ballots verify (possibly from cache) and the
        // detector still pairs them — the cache stores verdicts, it never
        // swallows observations.
        let (reg, keys) = setup(2);
        let a = signed_ballot(&keys[1], Round(1), Phase::Commit, value(1));
        let b = signed_ballot(&keys[1], Round(1), Phase::Commit, value(2));
        let mut cache = VerifyCache::new(VerifyMode::Fast);
        let mut det = FraudDetector::new();
        // Warm the cache with both ballots, then route the "arrivals"
        // through it again (pure hits) before observing.
        assert!(cache.verify_ballot(&a, &reg));
        assert!(cache.verify_ballot(&b, &reg));
        assert!(cache.verify_ballot(&a, &reg));
        assert!(det.observe(&a).is_none());
        assert!(cache.verify_ballot(&b, &reg));
        let ev = det.observe(&b).expect("equivocation still detected");
        assert_eq!(ev.accused(), NodeId(1));
    }

    #[test]
    fn pruning_drops_only_stale_rounds() {
        let (reg, keys) = setup(4);
        let old = Arc::new(cert(&keys, 1, value(1), 3));
        let warm = Arc::new(cert(&keys, 4, value(2), 3));
        let mut cache = VerifyCache::new(VerifyMode::Fast);
        assert!(cache.validate_cert(&old, &reg, 3).ok);
        assert!(cache.validate_cert(&warm, &reg, 3).ok);
        cache.prune_before(Round(5));
        hooks::reset();
        assert!(cache.validate_cert(&warm, &reg, 3).ok);
        assert_eq!(hooks::snapshot().memo_misses, 0, "round 4 stayed warm");
        assert!(cache.validate_cert(&old, &reg, 3).ok);
        assert!(hooks::snapshot().memo_misses > 0, "round 1 was pruned");
        hooks::reset();
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Any single-field tamper of a cached valid ballot fails
        /// verification through the cache, and the cache agrees with the
        /// reference path on every probe.
        #[test]
        fn tampering_never_reuses_a_cached_verdict(
            seed in 0u64..1000,
            which in 0u8..3,
            delta in 1u8..255,
        ) {
            let (reg, keys) = KeyRegistry::trusted_setup(3, seed);
            let honest = signed_ballot(&keys[0], Round(2), Phase::Commit, value(9));
            let mut cache = VerifyCache::new(VerifyMode::Fast);
            proptest::prop_assert!(cache.verify_ballot(&honest, &reg));
            let mut twin = honest.clone();
            match which {
                0 => twin.payload.value = value(9u8.wrapping_add(delta)),
                1 => twin.payload.round = Round(2 + delta as u64),
                _ => twin.payload.phase = Phase::Vote,
            }
            let through_cache = cache.verify_ballot(&twin, &reg);
            let reference = twin.verify(&reg);
            proptest::prop_assert_eq!(through_cache, reference);
            proptest::prop_assert!(!through_cache, "tampered ballot accepted");
            // The original stays valid after the tampered probe.
            proptest::prop_assert!(cache.verify_ballot(&honest, &reg));
        }
    }
}
