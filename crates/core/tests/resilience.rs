//! Resilience tests: laggard catch-up, round synchronization, ablated
//! configurations, and hostile message handling.

use prft_core::analysis::analyze;
use prft_core::{Config, Harness, NetworkChoice};
use prft_net::{PartitionWindow, PartitionedNet, SynchronousNet};
use prft_sim::SimTime;
use prft_types::NodeId;

const HORIZON: SimTime = SimTime(3_000_000);

/// A node isolated for several rounds catches back up through the
/// persistent Final tallies and round synchronization.
#[test]
fn isolated_node_catches_up_after_heal() {
    let n = 8; // t0 = 1, quorum 7: the isolated node's absence is tolerable
    let mut net = PartitionedNet::new(Box::new(SynchronousNet::new(SimTime(10))));
    // P7 alone for the first 2000 ticks (several rounds).
    net.add_window(PartitionWindow::split(
        SimTime::ZERO,
        SimTime(2_000),
        vec![vec![NodeId(7)]],
    ));
    let mut sim = Harness::new(n, 3)
        .network(NetworkChoice::Custom(Box::new(net)))
        .max_rounds(12)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    // The laggard reconciled: its final height matches the committee's.
    assert_eq!(
        r.min_final_height, r.max_final_height,
        "P7 caught up (heights {} vs {})",
        r.min_final_height, r.max_final_height
    );
    assert!(r.min_final_height >= 8, "got {}", r.min_final_height);
    let p7 = sim.node(NodeId(7));
    assert!(
        p7.stats().round_syncs > 0 || p7.stats().finalized_catchup > 0,
        "caught up through round-sync/final tallies"
    );
}

/// Repeated short partitions: the committee reconverges after each one.
#[test]
fn flapping_partitions_never_fork() {
    let n = 8;
    let mut net = PartitionedNet::new(Box::new(SynchronousNet::new(SimTime(10))));
    for i in 0..4u64 {
        let start = 500 + i * 1_000;
        net.add_window(PartitionWindow::split(
            SimTime(start),
            SimTime(start + 400),
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
                vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)],
            ],
        ));
    }
    let mut sim = Harness::new(n, 11)
        .network(NetworkChoice::Custom(Box::new(net)))
        .max_rounds(15)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.strict_ordering);
    assert!(
        r.min_final_height >= 8,
        "progress through the flapping (got {})",
        r.min_final_height
    );
}

/// The ablated (non-accountable) configuration still provides agreement
/// and liveness for honest committees — it only loses the PoF machinery.
#[test]
fn ablated_prft_is_still_safe_and_live() {
    let cfg = Config::for_committee(8)
        .with_accountability(false)
        .with_max_rounds(5);
    let mut sim = Harness::new(8, 13)
        .config(cfg)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert_eq!(r.min_final_height, 5);
    // No Reveal traffic at all.
    assert_eq!(sim.meter().kind("Reveal").count, 0);
    assert_eq!(sim.meter().kind("Expose").count, 0);
}

/// Very slow network relative to the timeout: rounds repeatedly time out,
/// the exponential backoff eventually outgrows the real delay, and the
/// committee recovers (post-GST liveness argument of Theorem 5).
#[test]
fn backoff_recovers_from_aggressive_timeouts() {
    let cfg = Config::for_committee(5)
        .with_timeout(SimTime(20)) // far below the real round time at Δ = 40
        .with_max_rounds(20);
    let mut sim = Harness::new(5, 17)
        .config(cfg)
        .network(NetworkChoice::Synchronous { delta: SimTime(40) })
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(
        r.min_final_height >= 3,
        "backoff must eventually clear the real delay (got {} blocks, {} VCs)",
        r.min_final_height,
        r.view_changes
    );
}

/// Messages from far-future rounds (a lying adversary) don't break or
/// stall honest players: the round-sync rule needs t0+1 distinct senders.
#[test]
fn future_round_spam_is_contained() {
    use prft_core::{Ballot, Phase, PrftMsg};
    use prft_crypto::{KeyRegistry, Signed};
    use prft_types::{Digest, Round};

    let n = 8;
    let mut sim = Harness::new(n, 19)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3)
        .build();
    // A forged far-future vote from a *different* trusted setup: invalid
    // signature, must be ignored entirely.
    let (_, foreign_keys) = KeyRegistry::trusted_setup(n, 999);
    let forged = PrftMsg::Vote {
        ballot: Signed::sign(
            Ballot::new(Round(500), Phase::Vote, Digest::of_bytes(b"evil")),
            &foreign_keys[3],
        ),
        propose: None,
    };
    for i in 0..n {
        sim.inject(SimTime(5), NodeId(3), NodeId(i), forged.clone());
    }
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert_eq!(r.min_final_height, 3, "spam changed nothing");
    for i in 0..n {
        assert!(
            sim.node(NodeId(i)).round().0 <= 4,
            "nobody jumped to round 500"
        );
    }
}

/// One lying signer *with a valid key* claiming a future round is also not
/// enough: round-sync requires t0 + 1 distinct senders.
#[test]
fn single_peer_cannot_fast_forward_a_committee() {
    use prft_core::{Ballot, Phase, PrftMsg};
    use prft_crypto::{KeyRegistry, Signed};
    use prft_types::{Digest, Round};

    let n = 9; // t0 = 2: needs 3 distinct future senders
    let mut sim = Harness::new(n, 23)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3)
        .build();
    // Same trusted setup as the harness (seed ^ 0x5eed — reconstruct it).
    let (_, keys) = KeyRegistry::trusted_setup(n, 23 ^ 0x5eed);
    let liar = PrftMsg::Vote {
        ballot: Signed::sign(
            Ballot::new(Round(400), Phase::Vote, Digest::of_bytes(b"far")),
            &keys[8],
        ),
        propose: None,
    };
    for i in 0..n {
        sim.inject(SimTime(5), NodeId(8), NodeId(i), liar.clone());
    }
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert_eq!(r.min_final_height, 3);
    for i in 0..8 {
        assert!(
            sim.node(NodeId(i)).round().0 <= 4,
            "one liar (≤ t0) cannot trigger round sync"
        );
    }
}

/// Tentative blocks roll back cleanly: a round abandoned between the
/// commit quorum and finalization leaves no stray state (exercised through
/// a partition that dissolves mid-round).
#[test]
fn mid_round_partition_no_stray_tentative_state() {
    let n = 8;
    let mut net = PartitionedNet::new(Box::new(SynchronousNet::new(SimTime(10))));
    // A brief split right at the start of round 0's reveal window.
    net.add_window(PartitionWindow::split(
        SimTime(25),
        SimTime(800),
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)],
        ],
    ));
    let mut sim = Harness::new(n, 29)
        .network(NetworkChoice::Custom(Box::new(net)))
        .max_rounds(6)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.strict_ordering);
    // Every honest chain's tentative suffix is at most the current round's
    // block (never stacked stale tentatives).
    for &id in &r.honest {
        let chain = sim.node(id).chain();
        assert!(chain.height() - chain.final_height() <= 1);
    }
}
