//! Protocol-level tests for pRFT under honest and crash-faulty committees
//! across the three network models.

use prft_core::analysis::{self, analyze};
use prft_core::{Harness, NetworkChoice};
use prft_sim::SimTime;
use prft_types::{NodeId, Transaction, TxId};

const HORIZON: SimTime = SimTime(2_000_000);

#[test]
fn honest_committee_synchronous_agreement() {
    for n in [4, 5, 8, 9, 13] {
        let mut sim = Harness::new(n, 7)
            .network(NetworkChoice::Synchronous { delta: SimTime(10) })
            .max_rounds(5)
            .build();
        sim.run_until(HORIZON);
        let r = analyze(&sim);
        assert!(r.agreement, "n={n}: honest players must agree");
        assert!(r.strict_ordering, "n={n}: strict ordering");
        assert_eq!(r.min_final_height, 5, "n={n}: all five rounds finalize");
        assert_eq!(r.burned.len(), 0, "n={n}: nobody burned");
        assert_eq!(r.exposes, 0, "n={n}: no exposes in honest runs");
    }
}

#[test]
fn honest_committee_partial_synchrony_finalizes_after_gst() {
    let mut sim = Harness::new(8, 21)
        .network(NetworkChoice::PartiallySynchronous {
            gst: SimTime(3_000),
            delta: SimTime(10),
        })
        .max_rounds(8)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    // Pre-GST rounds may be abandoned via view change; post-GST every round
    // finalizes, so within the 8-round budget most rounds produce blocks.
    assert!(
        r.min_final_height >= 4,
        "post-GST rounds finalize (got {} blocks, {} view changes)",
        r.min_final_height,
        r.view_changes
    );
}

#[test]
fn honest_committee_many_rounds() {
    let mut sim = Harness::new(5, 3)
        .network(NetworkChoice::Synchronous { delta: SimTime(5) })
        .max_rounds(25)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert_eq!(r.min_final_height, 25);
    // Leader rotation: blocks come from round-robin proposers.
    let chain = sim.node(NodeId(0)).chain();
    for (i, entry) in chain.iter().enumerate().skip(1) {
        assert_eq!(entry.block.proposer, NodeId((i - 1) % 5));
    }
}

#[test]
fn submitted_transactions_finalize_everywhere() {
    let tx = Transaction::new(77, NodeId(2), b"payload".to_vec());
    let mut sim = Harness::new(5, 9)
        .network(NetworkChoice::Synchronous { delta: SimTime(5) })
        .max_rounds(3)
        .submit(None, tx)
        .build();
    sim.run_until(HORIZON);
    assert!(analysis::tx_finalized_everywhere(&sim, TxId(77)));
}

#[test]
fn crashed_follower_does_not_block_progress() {
    // t0 = 1 for n = 8: one crashed player is within the fault budget.
    let mut sim = Harness::new(8, 11)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(4)
        .build();
    sim.crash(NodeId(7));
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(
        r.min_final_height >= 3,
        "live replicas finalize despite one crash (got {})",
        r.min_final_height
    );
}

#[test]
fn crashed_leader_is_skipped_by_view_change() {
    let mut sim = Harness::new(8, 13)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(4)
        .build();
    sim.crash(NodeId(0)); // leader of round 0
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.view_changes > 0, "round 0 must be abandoned");
    assert!(
        r.min_final_height >= 2,
        "later rounds still finalize (got {})",
        r.min_final_height
    );
}

#[test]
fn too_many_crashes_stall_but_never_fork() {
    // n = 8, t0 = 1, quorum 7: three crashes exceed the budget — no
    // progress, but also no disagreement (safety over liveness).
    let mut sim = Harness::new(8, 17)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(4)
        .build();
    for i in 5..8 {
        sim.crash(NodeId(i));
    }
    sim.run_until(SimTime(100_000));
    let r = analyze(&sim);
    assert!(r.agreement);
    assert_eq!(r.min_final_height, 0, "no quorum, no blocks");
}

#[test]
fn determinism_same_seed_same_outcome() {
    let run = |seed: u64| {
        let mut sim = Harness::new(8, seed)
            .network(NetworkChoice::PartiallySynchronous {
                gst: SimTime(500),
                delta: SimTime(10),
            })
            .max_rounds(5)
            .build();
        sim.run_until(HORIZON);
        let r = analyze(&sim);
        (
            r.min_final_height,
            r.max_final_height,
            r.view_changes,
            sim.meter().total_messages(),
            sim.meter().total_bytes(),
        )
    };
    assert_eq!(run(5), run(5), "bit-identical replay");
    // Different seeds explore different schedules (message totals differ
    // with overwhelming probability under pre-GST adversarial delays).
    let a = run(5);
    let b = run(6);
    assert!(a != b || a.0 == b.0, "sanity: seeds produce valid runs");
}

#[test]
fn partition_before_gst_heals_and_finalizes() {
    let groups = vec![
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)],
    ];
    let mut sim = Harness::new(8, 19)
        .partitioned_until_gst(SimTime(2_000), SimTime(10), groups)
        .max_rounds(8)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement, "no fork across the healed partition");
    assert!(
        r.min_final_height >= 3,
        "progress after heal (got {} blocks, {} view changes)",
        r.min_final_height,
        r.view_changes
    );
}

#[test]
fn message_kinds_of_normal_round_match_figure_2() {
    let mut sim = Harness::new(4, 23)
        .network(NetworkChoice::Synchronous { delta: SimTime(5) })
        .max_rounds(1)
        .build();
    sim.run_until(HORIZON);
    let meter = sim.meter();
    // One leader broadcast + three all-to-all phases + finals.
    assert_eq!(meter.kind("Propose").count, 4, "leader → n players");
    assert_eq!(meter.kind("Vote").count, 16, "n² votes");
    assert_eq!(meter.kind("Commit").count, 16, "n² commits");
    assert_eq!(meter.kind("Reveal").count, 16, "n² reveals");
    assert_eq!(meter.kind("Final").count, 16, "n² finals");
    assert_eq!(meter.kind("Expose").count, 0);
    assert_eq!(meter.kind("ViewChange").count, 0);
    // Reveal messages dominate the byte budget (κ·n⁴ aggregate).
    assert!(meter.kind("Reveal").bytes > meter.kind("Commit").bytes);
    assert!(meter.kind("Commit").bytes > meter.kind("Vote").bytes);
}

#[test]
fn asynchronous_network_is_safe() {
    // Under asynchrony liveness may suffer (FLP), but agreement must hold.
    let mut sim = Harness::new(8, 29)
        .network(NetworkChoice::Asynchronous)
        .max_rounds(3)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.strict_ordering);
}

#[test]
fn phase_deliveries_are_ordered_per_replica() {
    let mut sim = Harness::new(4, 31)
        .network(NetworkChoice::Synchronous { delta: SimTime(5) })
        .max_rounds(1)
        .build();
    sim.set_tracing(true);
    sim.run_until(HORIZON);
    // At every replica: first Vote ≤ first Commit ≤ first Reveal ≤ first
    // Final — the ladder of Figure 2a.
    for i in 0..4 {
        let first = |kind: &str| {
            sim.trace()
                .entries()
                .iter()
                .filter(|e| e.kind == kind && e.to == NodeId(i))
                .map(|e| e.at)
                .min()
                .unwrap_or_else(|| panic!("P{i} missing {kind}"))
        };
        let (v, c, r, f) = (
            first("Vote"),
            first("Commit"),
            first("Reveal"),
            first("Final"),
        );
        assert!(v <= c && c <= r && r <= f, "P{i}: {v} {c} {r} {f}");
    }
}

#[test]
fn targeted_slowdown_of_one_replica_is_harmless() {
    use prft_net::{DelayRule, SynchronousNet, TargetedDelay};
    // The adversarial scheduler delays everything P3 receives by 150 ticks
    // during the first two rounds — within t0 = 1 for n = 8, the committee
    // proceeds and P3 reconciles.
    let mut net = TargetedDelay::new(Box::new(SynchronousNet::new(SimTime(10))));
    net.add_rule(DelayRule::slow_receiver(
        NodeId(3),
        SimTime(0),
        SimTime(500),
        SimTime(150),
    ));
    let mut sim = Harness::new(8, 37)
        .network(NetworkChoice::Custom(Box::new(net)))
        .max_rounds(5)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.min_final_height >= 4, "got {}", r.min_final_height);
}
