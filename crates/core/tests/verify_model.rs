//! Verify-count model regression: pins the measured verification work of
//! an honest accountable committee to the two analytic models the bench
//! (`prft-bench profile`) enforces, at n = 64 — the size whose reference
//! cost (15.8M logical verifies for two rounds) motivated the fast path.
//!
//! * The **logical** count (`crypto.sig_verifies`) follows the reference
//!   per-round structure `1 + 2n + n(q+2) + q(1 + q(q+1))` per replica,
//!   plus `n` Finals per non-final round — within 10% (the tail of the
//!   last round depends on delivery order).
//! * The **hashed** count (`verify.memo_miss`) follows the
//!   distinct-content model `1 + 2n + q` per replica-round, plus the same
//!   Final term — within 0.1%. This is the memoization doing its job:
//!   every re-check of already-seen content is a cache hit.
//! * Conservation: `memo_hits + memo_misses == sig_verifies`, exactly —
//!   every logical verification is either answered from cache or hashed.

use prft_core::{Harness, NetworkChoice, VerifyMode};
use prft_sim::obs::hooks;
use prft_sim::SimTime;

/// The headline size: the fast path runs it cheaply even in debug builds
/// (27k hashes); the reference path would hash 15.8M times, so
/// reference-mode tests use [`N_SMALL`] instead.
const N: usize = 64;
const N_SMALL: usize = 16;
const ROUNDS: u64 = 2;

/// Reference-path logical verifies (the model `prft-bench profile` holds
/// `crypto.sig_verifies` to; see `predicted_verifies` there).
fn predicted_logical(n: u64, rounds: u64) -> u64 {
    let t0 = n.div_ceil(4) - 1;
    let q = n - t0;
    let per_replica_round = 1 + 2 * n + n * (q + 2) + q * (1 + q * (q + 1));
    n * (rounds * per_replica_round + (rounds - 1) * n)
}

/// Distinct-content model: what the memoized path actually hashes.
fn predicted_misses(n: u64, rounds: u64) -> u64 {
    let t0 = n.div_ceil(4) - 1;
    let q = n - t0;
    n * (rounds * (1 + 2 * n + q) + (rounds - 1) * n)
}

fn run_accountable(n: usize, mode: VerifyMode) -> hooks::HookSnapshot {
    hooks::reset();
    let mut sim = Harness::new(n, 0xc0de)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .accountable(true)
        .max_rounds(ROUNDS)
        .verify_mode(mode)
        .build();
    sim.run_until(SimTime(500_000));
    let snap = hooks::snapshot();
    hooks::reset();
    snap
}

#[test]
fn memoized_run_matches_both_verify_models() {
    let snap = run_accountable(N, VerifyMode::Fast);

    // Conservation, exact: no verification escapes the hit/miss split
    // (honest runs have no view-change traffic, the one uncached path).
    assert_eq!(
        snap.memo_hits + snap.memo_misses,
        snap.sig_verifies,
        "memo hits + misses must equal the logical verify count"
    );

    // Logical count vs the reference model, 10%.
    let logical_predicted = predicted_logical(N as u64, ROUNDS);
    let logical_ratio = snap.sig_verifies as f64 / logical_predicted as f64;
    assert!(
        (logical_ratio - 1.0).abs() <= 0.10,
        "logical verifies {} vs predicted {logical_predicted} (ratio {logical_ratio:.4})",
        snap.sig_verifies
    );
    // The headline number the fast path exists for: ~15.8M logical
    // verifies at n = 64 × 2 rounds.
    assert!(
        snap.sig_verifies > 15_000_000,
        "expected the n = 64 reference workload (~15.8M), got {}",
        snap.sig_verifies
    );

    // Hashed count vs the distinct-content model, 0.1%.
    let miss_predicted = predicted_misses(N as u64, ROUNDS);
    let miss_ratio = snap.memo_misses as f64 / miss_predicted as f64;
    assert!(
        (miss_ratio - 1.0).abs() <= 0.001,
        "memo misses {} vs predicted {miss_predicted} (ratio {miss_ratio:.5})",
        snap.memo_misses
    );
}

#[test]
fn reference_run_matches_the_logical_model_with_zero_memo_traffic() {
    // Reference mode really hashes every logical verify, so this runs at
    // the small size (85k hashes, not 15.8M).
    let snap = run_accountable(N_SMALL, VerifyMode::Reference);
    assert_eq!(snap.memo_hits, 0, "reference mode never hits a memo");
    assert_eq!(snap.memo_misses, 0, "reference mode never counts misses");
    let predicted = predicted_logical(N_SMALL as u64, ROUNDS);
    let ratio = snap.sig_verifies as f64 / predicted as f64;
    assert!(
        (ratio - 1.0).abs() <= 0.10,
        "reference verifies {} vs predicted {predicted} (ratio {ratio:.4})",
        snap.sig_verifies
    );
}

#[test]
fn both_modes_pay_the_same_logical_count() {
    // The counting discipline itself: a memo hit charges exactly what the
    // reference path would have paid, so the logical counter is equal —
    // not merely close — across modes.
    let fast = run_accountable(N_SMALL, VerifyMode::Fast);
    let slow = run_accountable(N_SMALL, VerifyMode::Reference);
    assert_eq!(
        fast.sig_verifies, slow.sig_verifies,
        "logical verify counts diverged across verify modes"
    );
    // And the split shows the actual hashing collapse — even at n = 16
    // over 95% of logical verifies answer from cache (the ratio improves
    // with n: >99.8% at n = 64).
    assert!(
        fast.memo_misses * 20 < fast.sig_verifies,
        "expected <5% of logical verifies to hash: {} of {}",
        fast.memo_misses,
        fast.sig_verifies
    );
}
