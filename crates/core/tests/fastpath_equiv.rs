//! Fast-vs-slow differential suite: the memoized verification path
//! ([`VerifyMode::Fast`]) must be **byte-identical** to the reference
//! verify-on-every-arrival path ([`VerifyMode::Reference`]) on every
//! observable — chains, analysis reports, and the full merged counter
//! registry including `crypto.sig_verifies` (counted *logically* on the
//! fast path: a memo hit charges exactly what the reference path would
//! have paid). These tests are what lets the fast path be the default,
//! and what lets the `verify_mode` knob stay out of spec fingerprints.

use prft_core::{analysis, Harness, NetworkChoice, VerifyMode};
use prft_sim::obs::hooks;
use prft_sim::SimTime;
use prft_types::NodeId;
use std::fmt::Write as _;

/// Runs one accountable committee under `mode` and renders every
/// observable to a canonical string: all counters and gauges of the
/// merged registry, the analysis report, and each replica's full chain.
fn run_report(
    n: usize,
    seed: u64,
    rounds: u64,
    tau: Option<usize>,
    crashes: &[usize],
    mode: VerifyMode,
) -> String {
    hooks::reset();
    let mut h = Harness::new(n, seed)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .accountable(true)
        .max_rounds(rounds)
        .verify_mode(mode);
    if let Some(t) = tau {
        h = h.tau(t);
    }
    let mut sim = h.build();
    for &c in crashes {
        sim.crash(NodeId(c));
    }
    sim.run_until(SimTime(500_000));
    let snap = hooks::snapshot();
    let obs = prft_core::obs::collect(&sim, &snap);
    hooks::reset();

    let mut out = String::new();
    for (name, v) in obs.counters() {
        writeln!(out, "counter {name} = {v}").unwrap();
    }
    for (name, v) in obs.gauges() {
        writeln!(out, "gauge {name} = {v}").unwrap();
    }
    writeln!(out, "report {:?}", analysis::analyze(&sim)).unwrap();
    for (i, r) in sim.nodes().enumerate() {
        writeln!(out, "chain P{i} {:?}", r.chain()).unwrap();
    }
    writeln!(out, "ended at {:?}", sim.now()).unwrap();
    out
}

/// The tentpole sizes: accountable committees at n ∈ {8, 16, 32}, clean
/// run, full report compared byte-for-byte.
#[test]
fn accountable_committees_are_mode_identical() {
    for n in [8, 16, 32] {
        let slow = run_report(n, 42, 2, None, &[], VerifyMode::Reference);
        let fast = run_report(n, 42, 2, None, &[], VerifyMode::Fast);
        assert_eq!(slow, fast, "n = {n}: fast path diverged from reference");
        assert!(
            slow.contains("counter crypto.sig_verifies"),
            "sanity: the report covers the verify counter"
        );
    }
}

/// Crash faults force view changes, round churn, and laggard catch-up —
/// the paths where a stale cached verdict would first show up.
#[test]
fn crash_faults_are_mode_identical() {
    for (n, crashes) in [(8usize, vec![1]), (16, vec![2, 5]), (32, vec![0, 7])] {
        let slow = run_report(n, 7, 3, None, &crashes, VerifyMode::Reference);
        let fast = run_report(n, 7, 3, None, &crashes, VerifyMode::Fast);
        assert_eq!(
            slow, fast,
            "n = {n}, crashes {crashes:?}: fast path diverged"
        );
    }
}

/// τ overrides change the quorum mid-cache-lifetime semantics (the cert
/// memo keys its verdicts by quorum); the differential must hold across
/// the Claim 1 window.
#[test]
fn tau_overrides_are_mode_identical() {
    let n = 16;
    let cfg = prft_core::Config::for_committee(n);
    for tau in [cfg.tau_lower_bound(), cfg.tau_upper_bound()] {
        let slow = run_report(n, 99, 2, Some(tau), &[], VerifyMode::Reference);
        let fast = run_report(n, 99, 2, Some(tau), &[], VerifyMode::Fast);
        assert_eq!(slow, fast, "tau = {tau}: fast path diverged");
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(256))]

    /// The fuzzed differential: any (n, τ, seed, fault schedule) from this
    /// space produces byte-identical reports across verify modes. The
    /// fault schedule is a crash bitmask over the first four seats; τ is
    /// drawn from the Claim 1 safe window (or left at the default).
    #[test]
    fn fuzzed_committees_are_mode_identical(
        n in 4usize..13,
        seed in 0u64..10_000,
        tau_sel in 0u8..4,
        crash_mask in 0u8..8,
    ) {
        let cfg = prft_core::Config::for_committee(n);
        let tau = match tau_sel {
            0 => Some(cfg.tau_lower_bound()),
            1 => Some(cfg.tau_upper_bound()),
            _ => None,
        };
        let crashes: Vec<usize> = (0..3)
            .filter(|b| crash_mask & (1 << b) != 0)
            .map(|b| b + 1) // never crash the first leader: keep runs short
            .filter(|&i| i < n)
            .collect();
        let slow = run_report(n, seed, 2, tau, &crashes, VerifyMode::Reference);
        let fast = run_report(n, seed, 2, tau, &crashes, VerifyMode::Fast);
        proptest::prop_assert_eq!(
            slow,
            fast,
            "n={} seed={} tau={:?} crashes={:?}",
            n,
            seed,
            tau,
            crashes
        );
    }
}
