//! Power-law fitting: estimate the exponent `e` in `y ≈ c · n^e` from
//! measured `(n, y)` pairs by least squares on `log y = log c + e · log n`.
//!
//! This is how the Table 3 experiment turns measured message counts into
//! the `O(n^e)` exponents the paper reports.

/// Result of a power-law fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// The fitted exponent `e`.
    pub exponent: f64,
    /// The fitted constant `c`.
    pub constant: f64,
    /// Coefficient of determination on the log-log points.
    pub r_squared: f64,
}

/// Fits `y = c · nᵉ` to the samples.
///
/// # Panics
/// Panics if fewer than two samples are given or any sample is
/// non-positive (logarithms must exist).
pub fn fit_power_law(samples: &[(f64, f64)]) -> PowerLawFit {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    assert!(
        samples.iter().all(|&(n, y)| n > 0.0 && y > 0.0),
        "samples must be positive"
    );
    let logs: Vec<(f64, f64)> = samples.iter().map(|&(n, y)| (n.ln(), y.ln())).collect();
    let count = logs.len() as f64;
    let mean_x = logs.iter().map(|p| p.0).sum::<f64>() / count;
    let mean_y = logs.iter().map(|p| p.1).sum::<f64>() / count;
    let sxx: f64 = logs.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = logs.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    assert!(sxx > 0.0, "samples need at least two distinct n values");
    let exponent = sxy / sxx;
    let intercept = mean_y - exponent * mean_x;
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (intercept + exponent * p.0)).powi(2))
        .sum();
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    PowerLawFit {
        exponent,
        constant: intercept.exp(),
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_law() {
        let samples: Vec<(f64, f64)> = (2..10).map(|n| (n as f64, (n * n) as f64)).collect();
        let fit = fit_power_law(&samples);
        assert!((fit.exponent - 2.0).abs() < 1e-9);
        assert!((fit.constant - 1.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn cubic_with_constant() {
        let samples: Vec<(f64, f64)> = (4..40)
            .step_by(4)
            .map(|n| (n as f64, 7.0 * (n as f64).powi(3)))
            .collect();
        let fit = fit_power_law(&samples);
        assert!((fit.exponent - 3.0).abs() < 1e-9);
        assert!((fit.constant - 7.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_data_still_close() {
        // ±10% multiplicative noise around n^1.5.
        let noise = [1.1, 0.92, 1.05, 0.95, 1.08, 0.9, 1.02, 1.0];
        let samples: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let n = (4 * i) as f64;
                (n, n.powf(1.5) * noise[i - 1])
            })
            .collect();
        let fit = fit_power_law(&samples);
        assert!((fit.exponent - 1.5).abs() < 0.15, "got {}", fit.exponent);
        assert!(fit.r_squared > 0.97);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn one_sample_rejected() {
        let _ = fit_power_law(&[(2.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sample_rejected() {
        let _ = fit_power_law(&[(2.0, 0.0), (3.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "distinct n values")]
    fn degenerate_x_rejected() {
        let _ = fit_power_law(&[(2.0, 4.0), (2.0, 5.0)]);
    }
}
