//! Classifying a run into the paper's system states σ (Section 4.1.1).

use prft_game::SystemState;
use prft_types::{Chain, TxId};

/// A snapshot of the honest players' views after (part of) a run.
#[derive(Debug)]
pub struct StateObservation<'a> {
    /// The honest players' ledgers.
    pub chains: Vec<&'a Chain>,
    /// Transactions that were input to **all** honest players and are being
    /// watched for censorship (the set `Z` of the paper).
    pub watched: Vec<TxId>,
    /// Finalized height at the start of the observation window (0 for a
    /// whole-run observation).
    pub baseline_height: u64,
}

/// Classifies the observation:
///
/// 1. `σ_Fork` if two honest ledgers finalize different blocks at a height;
/// 2. `σ_NP` if no new block finalized anywhere during the window;
/// 3. `σ_CP` if progress happened but some watched transaction is missing
///    from every honest finalized ledger;
/// 4. `σ_0` otherwise.
///
/// The precedence (fork ≻ no-progress ≻ censorship) matches the payoff
/// severity ordering of Table 2.
pub fn classify(obs: &StateObservation<'_>) -> SystemState {
    let chains = &obs.chains;
    if chains.is_empty() {
        return SystemState::NoProgress;
    }
    for i in 0..chains.len() {
        for j in (i + 1)..chains.len() {
            if Chain::find_fork(chains[i], chains[j], true).is_some() {
                return SystemState::Fork;
            }
        }
    }
    let max_final = chains.iter().map(|c| c.final_height()).max().unwrap_or(0);
    if max_final <= obs.baseline_height {
        return SystemState::NoProgress;
    }
    let censored = obs
        .watched
        .iter()
        .any(|&tx| chains.iter().all(|c| !c.contains_tx_final(tx)));
    if censored {
        return SystemState::Censorship;
    }
    SystemState::HonestExecution
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_types::{Block, Digest, Height, NodeId, Round, Transaction};

    fn block_on(chain: &Chain, round: u64, tx_ids: &[u64]) -> Block {
        let txs = tx_ids
            .iter()
            .map(|&i| Transaction::new(i, NodeId(0), vec![]))
            .collect();
        Block::new(Round(round), chain.tip(), NodeId(0), txs)
    }

    fn grown_chain(tx_rounds: &[&[u64]]) -> Chain {
        let mut c = Chain::new(Block::genesis());
        for (i, txs) in tx_rounds.iter().enumerate() {
            let b = block_on(&c, i as u64 + 1, txs);
            c.append_tentative(b).unwrap();
        }
        let h = c.height();
        c.finalize_upto(Height(h)).unwrap();
        c
    }

    #[test]
    fn honest_execution() {
        let a = grown_chain(&[&[1], &[2]]);
        let b = a.clone();
        let obs = StateObservation {
            chains: vec![&a, &b],
            watched: vec![TxId(1)],
            baseline_height: 0,
        };
        assert_eq!(classify(&obs), SystemState::HonestExecution);
    }

    #[test]
    fn no_progress() {
        let a = Chain::new(Block::genesis());
        let obs = StateObservation {
            chains: vec![&a],
            watched: vec![],
            baseline_height: 0,
        };
        assert_eq!(classify(&obs), SystemState::NoProgress);
    }

    #[test]
    fn no_progress_relative_to_baseline() {
        let a = grown_chain(&[&[1]]);
        let obs = StateObservation {
            chains: vec![&a],
            watched: vec![],
            baseline_height: 1,
        };
        assert_eq!(classify(&obs), SystemState::NoProgress);
    }

    #[test]
    fn censorship() {
        let a = grown_chain(&[&[1], &[2]]);
        let b = a.clone();
        let obs = StateObservation {
            chains: vec![&a, &b],
            watched: vec![TxId(99)],
            baseline_height: 0,
        };
        assert_eq!(classify(&obs), SystemState::Censorship);
    }

    #[test]
    fn fork_takes_precedence() {
        let base = grown_chain(&[&[1]]);
        let mut a = base.clone();
        let mut b = base.clone();
        a.append_tentative(block_on(&a, 2, &[100])).unwrap();
        b.append_tentative(block_on(&b, 2, &[200])).unwrap();
        a.finalize_upto(Height(2)).unwrap();
        b.finalize_upto(Height(2)).unwrap();
        let obs = StateObservation {
            chains: vec![&a, &b],
            watched: vec![TxId(99)], // censorship also true, fork wins
            baseline_height: 0,
        };
        assert_eq!(classify(&obs), SystemState::Fork);
    }

    #[test]
    fn tentative_divergence_is_not_a_fork() {
        let base = grown_chain(&[&[1]]);
        let mut a = base.clone();
        let mut b = base.clone();
        a.append_tentative(block_on(&a, 2, &[100])).unwrap();
        b.append_tentative(block_on(&b, 2, &[200])).unwrap();
        let obs = StateObservation {
            chains: vec![&a, &b],
            watched: vec![],
            baseline_height: 0,
        };
        assert_eq!(classify(&obs), SystemState::HonestExecution);
    }

    #[test]
    fn empty_observation_is_no_progress() {
        let obs = StateObservation {
            chains: vec![],
            watched: vec![],
            baseline_height: 0,
        };
        assert_eq!(classify(&obs), SystemState::NoProgress);
    }

    #[test]
    fn watched_tx_present_is_not_censorship() {
        let a = grown_chain(&[&[1], &[99]]);
        let obs = StateObservation {
            chains: vec![&a],
            watched: vec![TxId(99)],
            baseline_height: 0,
        };
        assert_eq!(classify(&obs), SystemState::HonestExecution);
        let _ = Digest::ZERO;
    }
}
