//! Plain-text table rendering for experiment output.
//!
//! Every regenerated paper table/figure prints through this so the
//! experiment binaries produce uniform, diff-friendly reports.

use std::fmt;

/// A simple column-aligned ASCII table.
///
/// # Example
/// ```
/// use prft_metrics::AsciiTable;
/// let mut t = AsciiTable::new(vec!["protocol", "msgs", "bytes"]);
/// t.row(vec!["pRFT".into(), "1024".into(), "9.3e6".into()]);
/// let s = t.render();
/// assert!(s.contains("protocol"));
/// assert!(s.contains("pRFT"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        AsciiTable {
            header: header.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    #[must_use]
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row's arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let render_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            s
        };
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

impl fmt::Display for AsciiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = AsciiTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "sep, header, sep, row, sep");
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "uniform width");
        assert!(s.contains("| xxxxxxx | 1           |"));
    }

    #[test]
    fn title_is_prepended() {
        let t = AsciiTable::new(vec!["x"]).with_title("Table 1: bounds");
        assert!(t.render().starts_with("Table 1: bounds\n"));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = AsciiTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        AsciiTable::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn unicode_width_by_chars() {
        let mut t = AsciiTable::new(vec!["σ"]);
        t.row(vec!["σ_Fork".into()]);
        let s = t.render();
        assert!(s.contains("σ_Fork"));
    }
}
