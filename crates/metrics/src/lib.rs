//! Measurement substrate for the experiments: system-state classification
//! (σ), log-log complexity fitting for Table 3, and ASCII table rendering
//! for every regenerated paper artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod state;
mod table;

pub use fit::{fit_power_law, PowerLawFit};
pub use state::{classify, StateObservation};
pub use table::AsciiTable;
