//! Edge cases around the view-change triggers, sync rate limits, and the
//! tolerance boundary t = t0.

use prft_adversary::{blackboard, EquivocatingLeader, ForkColluder};
use prft_core::analysis::analyze;
use prft_core::{Harness, NetworkChoice};
use prft_sim::SimTime;
use prft_types::{NodeId, Round};
use std::collections::HashSet;

const HORIZON: SimTime = SimTime(2_000_000);

/// A lone equivocating leader (t = 1 ≤ t0): its round is abandoned through
/// the *equivocation* view-change trigger (not the timeout), the committee
/// proceeds, and with only one double-signer (≤ t0) no Expose fires — the
/// paper tolerates up to t0 conflicting signers.
#[test]
fn lone_equivocator_triggers_view_change_without_expose() {
    let n = 9; // t0 = 2
    let board = blackboard();
    let b_group: HashSet<NodeId> = (5..9).map(NodeId).collect();
    let mut sim = Harness::new(n, 61)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(4)
        .with_behavior(
            NodeId(0),
            Box::new(EquivocatingLeader::new(board, b_group, n).only_rounds([Round(0)])),
        )
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert_eq!(r.exposes, 0, "1 double-signer ≤ t0: tolerated, no expose");
    assert!(r.burned.is_empty());
    assert!(
        r.min_final_height >= 2,
        "later rounds finalize (got {})",
        r.min_final_height
    );
    // The equivocation was observed somewhere.
    let seen: u64 = r
        .honest
        .iter()
        .map(|&id| sim.node(id).stats().leader_equivocations)
        .sum();
    assert!(seen > 0, "the split proposal was detected via vote s_pro");
}

/// Exactly t0 fork colluders with an honest leader: nothing to coordinate
/// on (no equivocation pair on the blackboard), so the colluders fall back
/// to honest behaviour and the run is clean.
#[test]
fn colluders_without_a_leader_are_harmless() {
    let n = 9;
    let board = blackboard(); // never populated: no equivocating leader
    let b_group: HashSet<NodeId> = (7..9).map(NodeId).collect();
    let mut h = Harness::new(n, 67)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3);
    for i in 1..=2 {
        h = h.with_behavior(
            NodeId(i),
            Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
        );
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert_eq!(r.min_final_height, 3);
    assert!(r.burned.is_empty());
    assert_eq!(r.exposes, 0);
}

/// The sync machinery is rate-limited: a healthy run emits no SyncRequest
/// traffic at all, and a recovering node's requests stay bounded.
#[test]
fn sync_requests_are_rare_and_bounded() {
    // Healthy run: zero sync traffic.
    let mut sim = Harness::new(8, 71)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(5)
        .build();
    sim.run_until(HORIZON);
    assert_eq!(sim.meter().kind("SyncRequest").count, 0);

    // Crash + recover: some sync traffic, but far below the protocol's own
    // chatter (rate-limited to once per round per laggard).
    let mut sim = Harness::new(8, 73)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(10)
        .build();
    sim.run_until(SimTime(100));
    sim.crash(NodeId(5));
    sim.run_until(SimTime(400));
    sim.recover(NodeId(5));
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert_eq!(r.min_final_height, r.max_final_height, "caught up");
    let sync = sim.meter().kind("SyncRequest").count;
    let votes = sim.meter().kind("Vote").count;
    assert!(sync > 0, "the recovered node asked for help");
    assert!(
        sync < votes / 10,
        "sync traffic stays marginal ({sync} vs {votes} votes)"
    );
}

/// Boundary t = t0 exactly: t0 crashed byzantine players leave exactly the
/// quorum — the protocol must still be live (the threat model's edge).
#[test]
fn exactly_t0_faults_is_the_live_edge() {
    for n in [8usize, 9, 12, 13] {
        let t0 = n.div_ceil(4) - 1;
        let mut sim = Harness::new(n, 79)
            .network(NetworkChoice::Synchronous { delta: SimTime(10) })
            .max_rounds(3)
            .build();
        for i in 0..t0 {
            sim.crash(NodeId(n - 1 - i));
        }
        sim.run_until(HORIZON);
        let r = analyze(&sim);
        assert!(r.agreement, "n={n}");
        assert!(
            r.min_final_height >= 2,
            "n={n}, t0={t0}: still live at the edge (got {})",
            r.min_final_height
        );

        // …and t0 + 1 kills liveness (beyond the model).
        let mut sim = Harness::new(n, 83)
            .network(NetworkChoice::Synchronous { delta: SimTime(10) })
            .max_rounds(3)
            .build();
        for i in 0..=t0 {
            sim.crash(NodeId(n - 1 - i));
        }
        sim.run_until(SimTime(100_000));
        let r = analyze(&sim);
        assert!(r.agreement, "n={n}: safety still unconditional");
        assert_eq!(r.min_final_height, 0, "n={n}: t0+1 faults stall");
    }
}
