//! Chaos testing: randomized fault injection across many seeds. Safety
//! (agreement, strict ordering, no honest burns) must hold in every run;
//! liveness whenever the fault budget allows.

use prft_adversary::{Abstain, DoubleVoter, GarbageVoter, SilentLeader};
use prft_core::analysis::analyze;
use prft_core::{Behavior, Harness, NetworkChoice};
use prft_sim::{SimRng, SimTime};
use prft_types::NodeId;

const HORIZON: SimTime = SimTime(3_000_000);

/// Builds a random fault assignment within the threat model: at most t0
/// disruptive players, chosen and typed by the seed.
fn random_faults(n: usize, t0: usize, rng: &mut SimRng) -> Vec<(NodeId, Box<dyn Behavior>)> {
    let mut ids: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut ids);
    let count = rng.below(t0 as u64 + 1) as usize;
    ids.truncate(count);
    ids.into_iter()
        .map(|i| {
            let behavior: Box<dyn Behavior> = match rng.below(4) {
                0 => Box::new(Abstain),
                1 => Box::new(GarbageVoter),
                2 => Box::new(SilentLeader),
                _ => Box::new(DoubleVoter::new(n)),
            };
            (NodeId(i), behavior)
        })
        .collect()
}

#[test]
fn randomized_faults_within_budget_never_violate_safety() {
    let n = 9; // t0 = 2
    for seed in 0..25u64 {
        let mut rng = SimRng::new(seed * 31 + 7);
        let mut h = Harness::new(n, seed)
            .network(NetworkChoice::PartiallySynchronous {
                gst: SimTime(1_500),
                delta: SimTime(10),
            })
            .max_rounds(6);
        let faults = random_faults(n, 2, &mut rng);
        let faulty: Vec<NodeId> = faults.iter().map(|(id, _)| *id).collect();
        for (id, b) in faults {
            h = h.with_behavior(id, b);
        }
        let mut sim = h.build();
        sim.run_until(HORIZON);
        let r = analyze(&sim);
        assert!(r.agreement, "seed {seed}: agreement (faulty: {faulty:?})");
        assert!(r.strict_ordering, "seed {seed}: ordering");
        for &b in &r.burned {
            assert!(
                faulty.contains(&b),
                "seed {seed}: honest {b} burned (faulty were {faulty:?})"
            );
        }
        assert!(
            r.min_final_height >= 1,
            "seed {seed}: some progress within the fault budget (got {}, faulty {faulty:?})",
            r.min_final_height
        );
    }
}

#[test]
fn crash_and_recover_mid_run() {
    let n = 8;
    let mut sim = Harness::new(n, 41)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(10)
        .build();
    // P5 crashes during the early rounds and recovers while the committee
    // is still running (a passive committee cannot help a late joiner).
    sim.run_until(SimTime(100));
    sim.crash(NodeId(5));
    sim.run_until(SimTime(300));
    sim.recover(NodeId(5));
    sim.run_until(HORIZON);

    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.min_final_height >= 6, "got {}", r.min_final_height);
    // The recovered node rejoined and reconciled to the same chain.
    assert_eq!(
        r.min_final_height, r.max_final_height,
        "recovered node caught up"
    );
    assert!(r.burned.is_empty(), "crashing is never punished");
}

#[test]
fn rolling_crashes_one_at_a_time() {
    // Crash each player for one stretch, one after another, always staying
    // within the t0 = 1 budget for n = 8.
    let n = 8;
    let mut sim = Harness::new(n, 43)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(16)
        .build();
    let mut at = 50u64;
    for i in 0..4 {
        sim.run_until(SimTime(at));
        if i > 0 {
            sim.recover(NodeId(i - 1));
        }
        sim.crash(NodeId(i));
        at += 200;
    }
    sim.recover(NodeId(3));
    sim.run_until(HORIZON);

    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.strict_ordering);
    // Rolling leader crashes burn rounds on view changes; what matters is
    // that everyone (including every recovered node) converges on the same
    // substantial chain.
    assert!(
        r.min_final_height >= 6,
        "progress through the rolling outage (got {})",
        r.min_final_height
    );
    assert_eq!(
        r.min_final_height, r.max_final_height,
        "every recovered node caught up"
    );
}

#[test]
fn all_faulty_types_at_once_within_budget() {
    // n = 13 → t0 = 3: one abstainer + one garbage voter + one double
    // voter, all simultaneously.
    let n = 13;
    let mut sim = Harness::new(n, 47)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(NodeId(10), Box::new(Abstain))
        .with_behavior(NodeId(11), Box::new(GarbageVoter))
        .with_behavior(NodeId(12), Box::new(DoubleVoter::new(n)))
        .max_rounds(5)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.min_final_height >= 4, "got {}", r.min_final_height);
    for honest in 0..10 {
        assert!(!r.burned.contains(&NodeId(honest)));
    }
}
