//! End-to-end attack scenarios: the empirical backbone of Theorems 1–2 and
//! Lemma 4.

use prft_adversary::{
    blackboard, Abstain, DoubleVoter, EquivocatingLeader, ForkColluder, GarbageVoter,
    PartialCensor, SilentLeader,
};
use prft_core::analysis::{self, analyze};
use prft_core::{Behavior, Harness, NetworkChoice};
use prft_sim::SimTime;
use prft_types::{NodeId, Round, Transaction, TxId};
use std::collections::HashSet;

const HORIZON: SimTime = SimTime(2_000_000);

/// θ=3 / Theorem 1: abstention within the quorum slack is harmless…
#[test]
fn few_abstainers_do_not_stall() {
    // n = 8, t0 = 1, quorum 7: one abstainer leaves exactly a quorum.
    let mut sim = Harness::new(8, 1)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(NodeId(7), Box::new(Abstain))
        .max_rounds(4)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.min_final_height >= 3, "got {}", r.min_final_height);
    assert!(r.burned.is_empty(), "abstention is never penalized");
}

/// …but beyond the slack it kills liveness and cannot be punished.
#[test]
fn abstention_beyond_t0_stalls_without_penalty() {
    // n = 8, quorum 7: two abstainers make a quorum impossible (6 < 7) —
    // exactly Theorem 1's n/3 ≤ k+t < n/2 regime scaled to pRFT's τ.
    let mut sim = Harness::new(8, 2)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(NodeId(6), Box::new(Abstain))
        .with_behavior(NodeId(7), Box::new(Abstain))
        .max_rounds(4)
        .build();
    sim.run_until(SimTime(60_000));
    let r = analyze(&sim);
    assert!(r.agreement, "safety holds");
    assert_eq!(r.min_final_height, 0, "liveness is dead (σ_NP)");
    assert!(
        r.burned.is_empty(),
        "π_abs is indistinguishable from crash: D(π_abs, σ) = 0"
    );
}

/// θ=2 / Theorem 2: partial censorship keeps liveness, kills censorship
/// resistance, and is never penalized.
#[test]
fn partial_censorship_attack() {
    // n = 4 (t0 = 0, quorum 4): collusion {P0, P1}, k+t = 2 with
    // n/3 ≤ 2 < n/2... (2 = n/2 here; the attack needs every vote, making
    // abstention decisive for honest-led rounds).
    let n = 4;
    let censored = TxId(99);
    let collusion: HashSet<NodeId> = [NodeId(0), NodeId(1)].into_iter().collect();
    let censor_set: HashSet<TxId> = [censored].into_iter().collect();

    let mut h = Harness::new(n, 3)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(8)
        // The censored transaction is input to every player…
        .submit(None, Transaction::new(99, NodeId(2), b"censor me".to_vec()))
        // …plus background traffic that colluding leaders happily include.
        .submit(None, Transaction::new(1, NodeId(2), b"ok-1".to_vec()))
        .submit(None, Transaction::new(2, NodeId(3), b"ok-2".to_vec()));
    for &member in &collusion {
        h = h.with_behavior(
            member,
            Box::new(PartialCensor::new(n, collusion.clone(), censor_set.clone())),
        );
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);

    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(
        r.min_final_height >= 2,
        "liveness survives: colluder-led rounds finalize (got {})",
        r.min_final_height
    );
    assert!(
        analysis::tx_finalized_everywhere(&sim, TxId(1)),
        "uncensored traffic confirms"
    );
    assert!(
        !analysis::tx_included_anywhere(&sim, censored),
        "the censored transaction never appears in any block"
    );
    assert!(r.burned.is_empty(), "π_pc is unpunishable: D(π_pc, σ) = 0");
}

/// θ=1 / Lemma 4: the coordinated fork attack fails against pRFT, and in
/// synchrony the colluders are caught and burned.
#[test]
fn fork_collusion_is_caught_and_burned_in_synchrony() {
    // n = 9, t0 = 2, quorum 7. Collusion: byzantine equivocating leader P0
    // + rational colluders P1, P2, P3 (k+t = 4 < n/2 = 4.5 ✓). The split
    // hands the A side (honest {4,5,6} + collusion) exactly a quorum, so
    // the attack progresses deep enough to leave certificates behind —
    // which is precisely what convicts it.
    let n = 9;
    let board = blackboard();
    let b_group: HashSet<NodeId> = [NodeId(7), NodeId(8)].into_iter().collect();

    let mut h = Harness::new(n, 5)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3)
        .with_behavior(
            NodeId(0),
            Box::new(
                EquivocatingLeader::new(board.clone(), b_group.clone(), n).only_rounds([Round(0)]),
            ),
        );
    for i in 1..=3 {
        h = h.with_behavior(
            NodeId(i),
            Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
        );
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);

    let r = analyze(&sim);
    assert!(r.agreement, "no fork on finalized blocks — ever");
    // The equivocating leader is caught from its two signed proposals; the
    // colluders from their split votes/commits crossing the groups.
    assert!(
        r.burned.contains(&NodeId(0)),
        "equivocating leader burned (burned: {:?})",
        r.burned
    );
    assert!(
        r.burned.len() > 2,
        "more than t0 = 2 players convicted → expose fired (burned: {:?})",
        r.burned
    );
    // No honest player is ever framed.
    for honest in 4..9 {
        assert!(
            !r.burned.contains(&NodeId(honest)),
            "honest P{honest} must not be burned"
        );
    }
}

/// The same fork attack under a partition that mirrors the groups: the
/// quorum-intersection argument (k + t + 2·t0 < n) means at most one side
/// can finalize — still no disagreement.
#[test]
fn fork_collusion_under_partition_cannot_double_finalize() {
    let n = 9;
    let board = blackboard();
    let b_group: HashSet<NodeId> = [NodeId(6), NodeId(7), NodeId(8)].into_iter().collect();
    let a_group: Vec<NodeId> = vec![NodeId(4), NodeId(5)];

    let mut h = Harness::new(n, 8)
        .partitioned_until_gst(
            SimTime(5_000),
            SimTime(10),
            // Honest split: {4,5} vs {6,7,8}; colluders 0–3 sit with A.
            vec![
                [
                    a_group.clone(),
                    vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
                ]
                .concat(),
                b_group.iter().copied().collect(),
            ],
        )
        .max_rounds(3)
        .with_behavior(
            NodeId(0),
            Box::new(
                EquivocatingLeader::new(board.clone(), b_group.clone(), n).only_rounds([Round(0)]),
            ),
        );
    for i in 1..=3 {
        h = h.with_behavior(
            NodeId(i),
            Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
        );
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);

    let r = analyze(&sim);
    assert!(
        r.agreement,
        "k+t+2t0 = 4+4 < 9: both partitions can never finalize conflicting blocks"
    );
}

/// A single double-voter (≤ t0) does not trigger an expose — the paper
/// tolerates up to t0 double signatures — and the round still finalizes.
#[test]
fn up_to_t0_double_signers_are_tolerated() {
    // n = 8, t0 = 1: one double-voter stays at |D| = 1 ≤ t0.
    let mut sim = Harness::new(8, 9)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(NodeId(5), Box::new(DoubleVoter::new(8)))
        .max_rounds(3)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(
        r.min_final_height >= 2,
        "progress despite tolerated noise (got {})",
        r.min_final_height
    );
    assert_eq!(r.exposes, 0, "|D| ≤ t0 never exposes");
}

/// More than t0 double-voters trip the expose machinery and all burn.
#[test]
fn more_than_t0_double_signers_all_burn() {
    // n = 8, t0 = 1: two double-voters push |D| = 2 > t0.
    let mut sim = Harness::new(8, 10)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(NodeId(5), Box::new(DoubleVoter::new(8)))
        .with_behavior(NodeId(6), Box::new(DoubleVoter::new(8)))
        .max_rounds(3)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.exposes > 0, "expose must fire");
    assert!(r.burned.contains(&NodeId(5)) && r.burned.contains(&NodeId(6)));
    assert_eq!(r.burned.len(), 2, "nobody else burned: {:?}", r.burned);
}

/// Garbage votes never gather quorums, never frame anyone, and within the
/// fault budget never stop the protocol.
#[test]
fn garbage_votes_are_inert() {
    let mut sim = Harness::new(8, 12)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(NodeId(3), Box::new(GarbageVoter))
        .max_rounds(4)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.min_final_height >= 3, "got {}", r.min_final_height);
    assert!(r.burned.is_empty());
}

/// A silent leader only sacrifices its own rounds.
#[test]
fn silent_leader_costs_only_its_rounds() {
    let mut sim = Harness::new(5, 14)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(NodeId(0), Box::new(SilentLeader))
        .max_rounds(6)
        .build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    assert!(r.agreement);
    assert!(r.view_changes > 0, "its rounds are skipped via view change");
    assert!(
        r.min_final_height >= 3,
        "other leaders' rounds finalize (got {})",
        r.min_final_height
    );
}

/// Sanity: behaviors report the labels experiments group by.
#[test]
fn labels_are_stable() {
    assert_eq!(Abstain.label(), "abstain");
    assert_eq!(GarbageVoter.label(), "garbage");
    assert_eq!(SilentLeader.label(), "silent-leader");
    assert_eq!(DoubleVoter::new(4).label(), "double-voter");
}
