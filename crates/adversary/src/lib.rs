//! Adversarial strategies for the rational threat model `RFT(t, k)`.
//!
//! Each strategy from the paper's strategy space is a [`prft_core::Behavior`]
//! implementation:
//!
//! * [`Abstain`] — `π_abs`: send nothing; indistinguishable from a crash
//!   (the θ=3 liveness attack of Theorem 1);
//! * [`PartialCensor`] — `π_pc`: abstain under honest leaders, censor under
//!   collusion leaders (the θ=2 censorship attack of Theorem 2);
//! * [`ForkColluder`] / [`EquivocatingLeader`] — `π_ds`/`π_fork`: the
//!   coordinated double-signing that seeds a disagreement (the θ=1 attack
//!   that pRFT's accountability defeats, Lemma 4);
//! * [`GarbageVoter`], [`DoubleVoter`] — unconditional byzantine noise.
//!
//! Collusion coordination happens through a shared [`Blackboard`] — the
//! paper allows arbitrary coordination inside `K ∪ T`, and in a
//! single-threaded deterministic simulation a shared blackboard is exactly
//! the "instantaneous secret channel" the adversary gets for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abstain;
mod byzantine;
mod censor;
mod fork;

pub use abstain::Abstain;
pub use byzantine::{DoubleVoter, GarbageVoter, SilentLeader};
pub use censor::PartialCensor;
pub use fork::{blackboard, Blackboard, EquivocatingLeader, ForkColluder, ForkPlan};
