//! `π_fork`: the coordinated double-signing attack that targets
//! disagreement (`σ_Fork`) — the θ=1 strategy pRFT is built to defeat.
//!
//! The playbook (Theorem 3 / Lemma 4 constructions):
//!
//! 1. The honest players are split into groups `A` and `B` (by a network
//!    partition the adversary hopes for, or just by addressing).
//! 2. When a collusion member leads, it **equivocates**: block `a` to
//!    `A ∪ (collusion)`, block `b` to `B`.
//! 3. Every colluder votes, commits, and reveals **both ways**: the
//!    `a`-side messages go to `A`, the `b`-side to `B`, trying to hand each
//!    group an apparently unanimous quorum for its own block.
//! 4. Colluders never send `Expose` (it would burn their own deposits).
//!
//! Coordination uses a shared [`Blackboard`]: the equivocating leader
//! publishes both block hashes; colluders read them when deciding ballots.
//! The paper grants the collusion arbitrary instantaneous coordination; the
//! blackboard is an `Arc<Mutex<…>>` so colluding replicas stay `Send` and a
//! whole committee can run on a `prft-lab` worker thread.

use prft_core::{BallotAction, Behavior, ProposeAction};
use prft_types::{Block, Digest, NodeId, Round, Transaction};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// The collusion's shared knowledge: for each attacked round, the pair of
/// equivocated block hashes `(a, b)`.
#[derive(Debug, Default, Clone)]
pub struct ForkPlan {
    pairs: HashMap<Round, (Digest, Digest)>,
}

/// Shared handle to the collusion's plan.
pub type Blackboard = Arc<Mutex<ForkPlan>>;

/// Creates an empty blackboard.
pub fn blackboard() -> Blackboard {
    Arc::new(Mutex::new(ForkPlan::default()))
}

impl ForkPlan {
    /// Records the equivocation pair for `round`.
    pub fn publish(&mut self, round: Round, a: Digest, b: Digest) {
        self.pairs.insert(round, (a, b));
    }

    /// Looks up the pair for `round`.
    pub fn pair(&self, round: Round) -> Option<(Digest, Digest)> {
        self.pairs.get(&round).copied()
    }
}

/// The byzantine leader that seeds the fork: when leading an attacked
/// round, proposes block `a` to everyone outside `b_group` and a different
/// block `b` (same parent, different payload) to `b_group` — and keeps the
/// two worlds apart by splitting its own votes, commits, reveals, and
/// finals along the same line (it is byzantine; honest-looking reveals
/// would leak the other side's certificates and blow the attack).
///
/// `Clone` (for checkpoint forks) shares the blackboard `Arc` until
/// [`Behavior::rebind_shared`] splices in the fork's own copy.
#[derive(Clone)]
pub struct EquivocatingLeader {
    board: Blackboard,
    b_group: HashSet<NodeId>,
    n: usize,
    /// Attack every round this player leads if `None`, else only these.
    attack_rounds: Option<HashSet<Round>>,
}

impl EquivocatingLeader {
    /// Creates the leader strategy for a committee of `n`. `b_group`
    /// receives the `b` block.
    pub fn new(board: Blackboard, b_group: HashSet<NodeId>, n: usize) -> Self {
        EquivocatingLeader {
            board,
            b_group,
            n,
            attack_rounds: None,
        }
    }

    /// Restricts the attack to specific rounds (honest otherwise).
    #[must_use]
    pub fn only_rounds(mut self, rounds: impl IntoIterator<Item = Round>) -> Self {
        self.attack_rounds = Some(rounds.into_iter().collect());
        self
    }

    fn attacks(&self, round: Round) -> bool {
        self.attack_rounds
            .as_ref()
            .is_none_or(|set| set.contains(&round))
    }

    fn split(&self, round: Round, value: Digest) -> BallotAction {
        split_by_plan(&self.board, &self.b_group, self.n, round, value)
    }
}

/// Shared collusion logic: double-sign toward the group that should see
/// the *other* value, per the blackboard's plan for the round.
fn split_by_plan(
    board: &Blackboard,
    b_group: &HashSet<NodeId>,
    n: usize,
    round: Round,
    value: Digest,
) -> BallotAction {
    let Some((a, b)) = board.lock().unwrap().pair(round) else {
        return BallotAction::Honest;
    };
    if value == a {
        BallotAction::Split {
            b,
            b_recipients: b_group.clone(),
        }
    } else if value == b {
        let a_group: HashSet<NodeId> = (0..n)
            .map(NodeId)
            .filter(|id| !b_group.contains(id))
            .collect();
        BallotAction::Split {
            b: a,
            b_recipients: a_group,
        }
    } else {
        BallotAction::Honest
    }
}

impl Behavior for EquivocatingLeader {
    fn label(&self) -> &'static str {
        "equivocating-leader"
    }

    fn join_view_change(&self) -> bool {
        false // abandoning the round would kill the fork attempt
    }

    fn on_propose(&mut self, round: Round, honest_block: &Block) -> ProposeAction {
        if !self.attacks(round) {
            return ProposeAction::Honest;
        }
        // Block b: same parent, same round, but a conflicting payload —
        // here a marker transaction, so the two hashes always differ.
        let mut txs = honest_block.txs.clone();
        txs.push(Transaction::new(
            u64::MAX - round.0,
            honest_block.proposer,
            b"equivocation-marker".to_vec(),
        ));
        let block_b = Block::new(round, honest_block.parent, honest_block.proposer, txs);
        self.board
            .lock()
            .unwrap()
            .publish(round, honest_block.id(), block_b.id());
        ProposeAction::Equivocate {
            a: honest_block.clone(),
            b: block_b,
            b_recipients: self.b_group.clone(),
        }
    }

    fn on_vote(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn on_commit(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn on_reveal(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn on_final(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn send_expose(&self) -> bool {
        false
    }

    fn rebind_shared(&mut self, state: &dyn std::any::Any) {
        if let Some(board) = state.downcast_ref::<Blackboard>() {
            self.board = Arc::clone(board);
        }
    }
}

/// A rational colluder playing `π_fork`: double-signs toward the two
/// groups whenever the blackboard has a pair for the round, else follows
/// the protocol honestly (maximizing payoff outside attack rounds).
///
/// `Clone` (for checkpoint forks) shares the blackboard `Arc` until
/// [`Behavior::rebind_shared`] splices in the fork's own copy.
#[derive(Clone)]
pub struct ForkColluder {
    board: Blackboard,
    b_group: HashSet<NodeId>,
    n: usize,
}

impl ForkColluder {
    /// Creates a colluder aligned with the leader's `b_group` split.
    pub fn new(board: Blackboard, b_group: HashSet<NodeId>, n: usize) -> Self {
        ForkColluder { board, b_group, n }
    }

    /// Double-sign toward the group that should see the *other* value.
    fn split(&self, round: Round, value: Digest) -> BallotAction {
        split_by_plan(&self.board, &self.b_group, self.n, round, value)
    }
}

impl Behavior for ForkColluder {
    fn label(&self) -> &'static str {
        "fork"
    }

    fn on_vote(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn on_commit(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn on_reveal(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn on_final(&mut self, round: Round, value: Digest) -> BallotAction {
        self.split(round, value)
    }

    fn send_expose(&self) -> bool {
        false
    }

    fn join_view_change(&self) -> bool {
        false // colluders never help abandon the round they are forking
    }

    fn rebind_shared(&mut self, state: &dyn std::any::Any) {
        if let Some(board) = state.downcast_ref::<Blackboard>() {
            self.board = Arc::clone(board);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackboard_roundtrip() {
        let board = blackboard();
        let (a, b) = (Digest::of_bytes(b"a"), Digest::of_bytes(b"b"));
        board.lock().unwrap().publish(Round(3), a, b);
        assert_eq!(board.lock().unwrap().pair(Round(3)), Some((a, b)));
        assert_eq!(board.lock().unwrap().pair(Round(4)), None);
    }

    #[test]
    fn leader_publishes_pair_and_equivocates() {
        let board = blackboard();
        let b_group: HashSet<NodeId> = [NodeId(2), NodeId(3)].into_iter().collect();
        let mut leader = EquivocatingLeader::new(board.clone(), b_group.clone(), 4);
        let honest = Block::new(Round(0), Digest::ZERO, NodeId(0), vec![]);
        match leader.on_propose(Round(0), &honest) {
            ProposeAction::Equivocate { a, b, b_recipients } => {
                assert_eq!(a.id(), honest.id());
                assert_ne!(a.id(), b.id());
                assert_eq!(b_recipients, b_group);
                assert_eq!(board.lock().unwrap().pair(Round(0)), Some((a.id(), b.id())));
            }
            other => panic!("expected equivocation, got {other:?}"),
        }
    }

    #[test]
    fn leader_respects_round_filter() {
        let board = blackboard();
        let mut leader = EquivocatingLeader::new(board, HashSet::new(), 4).only_rounds([Round(5)]);
        let honest = Block::new(Round(0), Digest::ZERO, NodeId(0), vec![]);
        assert!(matches!(
            leader.on_propose(Round(0), &honest),
            ProposeAction::Honest
        ));
    }

    #[test]
    fn colluder_splits_based_on_received_side() {
        let board = blackboard();
        let (a, b) = (Digest::of_bytes(b"a"), Digest::of_bytes(b"b"));
        board.lock().unwrap().publish(Round(1), a, b);
        let b_group: HashSet<NodeId> = [NodeId(3)].into_iter().collect();
        let mut colluder = ForkColluder::new(board, b_group.clone(), 4);

        match colluder.on_vote(Round(1), a) {
            BallotAction::Split {
                b: alt,
                b_recipients,
            } => {
                assert_eq!(alt, b);
                assert_eq!(b_recipients, b_group);
            }
            other => panic!("expected split, got {other:?}"),
        }
        match colluder.on_vote(Round(1), b) {
            BallotAction::Split {
                b: alt,
                b_recipients,
            } => {
                assert_eq!(alt, a);
                assert_eq!(
                    b_recipients,
                    [NodeId(0), NodeId(1), NodeId(2)].into_iter().collect()
                );
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn colluder_honest_without_plan() {
        let board = blackboard();
        let mut colluder = ForkColluder::new(board, HashSet::new(), 4);
        assert!(matches!(
            colluder.on_vote(Round(9), Digest::of_bytes(b"x")),
            BallotAction::Honest
        ));
        assert!(!colluder.send_expose());
        assert_eq!(colluder.label(), "fork");
    }
}
