//! `π_pc`: partial censorship (the θ=2 attack of Theorem 2).

use prft_core::{BallotAction, Behavior, ProposeAction};
use prft_types::{Block, Digest, NodeId, Round, TxId};
use std::collections::HashSet;

/// The partial-censorship strategy from the proof of Theorem 2:
///
/// * when the round's leader is **in the collusion** `K ∪ T`: participate
///   honestly, but as leader assemble blocks that omit the censored
///   transaction set `Z`;
/// * when the leader is **honest**: abstain (`π_abs`), starving the round
///   of its quorum so the block is never agreed and the view changes.
///
/// The system stays live in expectation (`(k+t)/n` of rounds produce
/// blocks), no message is ever double-signed, and abstention under honest
/// leaders is indistinguishable from crash faults — so `D(π_pc, σ) = 0`
/// and the censored transaction never confirms.
#[derive(Debug, Clone)]
pub struct PartialCensor {
    n: usize,
    collusion: HashSet<NodeId>,
    censor: HashSet<TxId>,
}

impl PartialCensor {
    /// Creates the strategy for a committee of `n` with the given collusion
    /// set and censorship target set `Z`.
    pub fn new(n: usize, collusion: HashSet<NodeId>, censor: HashSet<TxId>) -> Self {
        PartialCensor {
            n,
            collusion,
            censor,
        }
    }

    fn leader_is_colluding(&self, round: Round) -> bool {
        self.collusion.contains(&round.leader(self.n))
    }
}

impl Behavior for PartialCensor {
    fn label(&self) -> &'static str {
        "censor"
    }

    fn censor_set(&self) -> Option<&HashSet<TxId>> {
        Some(&self.censor)
    }

    fn on_propose(&mut self, _round: Round, _honest_block: &Block) -> ProposeAction {
        // As leader we are in the collusion by definition; the censor set
        // was already applied when the honest block was assembled (the
        // replica consults `censor_set()`), so "honest" here proposes the
        // censored block.
        ProposeAction::Honest
    }

    fn on_vote(&mut self, round: Round, _value: Digest) -> BallotAction {
        if self.leader_is_colluding(round) {
            BallotAction::Honest
        } else {
            BallotAction::Silent
        }
    }

    fn on_commit(&mut self, round: Round, _value: Digest) -> BallotAction {
        if self.leader_is_colluding(round) {
            BallotAction::Honest
        } else {
            BallotAction::Silent
        }
    }

    fn on_reveal(&mut self, round: Round, _value: Digest) -> BallotAction {
        if self.leader_is_colluding(round) {
            BallotAction::Honest
        } else {
            BallotAction::Silent
        }
    }

    fn on_final(&mut self, round: Round, _value: Digest) -> BallotAction {
        if self.leader_is_colluding(round) {
            BallotAction::Honest
        } else {
            BallotAction::Silent
        }
    }

    fn send_expose(&self) -> bool {
        true // nothing to hide: π_pc never double-signs
    }

    fn join_view_change(&self) -> bool {
        // Colluders *do* join view changes: they want honest-led rounds
        // skipped quickly so their own rounds come around.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strategy() -> PartialCensor {
        let collusion = [NodeId(0), NodeId(1)].into_iter().collect();
        let censor = [TxId(9)].into_iter().collect();
        PartialCensor::new(4, collusion, censor)
    }

    #[test]
    fn honest_under_colluding_leader() {
        let mut s = strategy();
        // Round 0 → leader P0 (colluding), round 1 → P1 (colluding).
        assert!(matches!(
            s.on_vote(Round(0), Digest::ZERO),
            BallotAction::Honest
        ));
        assert!(matches!(
            s.on_commit(Round(1), Digest::ZERO),
            BallotAction::Honest
        ));
    }

    #[test]
    fn silent_under_honest_leader() {
        let mut s = strategy();
        // Round 2 → leader P2 (honest), round 3 → P3 (honest).
        assert!(matches!(
            s.on_vote(Round(2), Digest::ZERO),
            BallotAction::Silent
        ));
        assert!(matches!(
            s.on_reveal(Round(3), Digest::ZERO),
            BallotAction::Silent
        ));
    }

    #[test]
    fn censor_set_exposed_to_replica() {
        let s = strategy();
        assert!(s.censor_set().unwrap().contains(&TxId(9)));
        assert_eq!(s.label(), "censor");
    }
}
