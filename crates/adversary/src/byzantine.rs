//! Unconditional byzantine behaviours: noise, equivocation fodder, and
//! silence — strategies "immune to incentive manipulation".

use prft_core::{BallotAction, Behavior, ProposeAction};
use prft_types::{Block, Digest, NodeId, Round};
use std::collections::HashSet;

/// Votes (and commits, reveals, finals) for garbage values nobody proposed.
///
/// Harmless to safety — garbage never gathers a quorum — but exercises the
/// validation paths and shows byzantine noise does not trip the penalty
/// mechanism against honest players.
#[derive(Debug, Default, Clone, Copy)]
pub struct GarbageVoter;

fn garbage(round: Round, salt: u8) -> Digest {
    Digest::of_bytes(&[round.0.to_le_bytes().as_slice(), &[salt]].concat())
}

impl Behavior for GarbageVoter {
    fn label(&self) -> &'static str {
        "garbage"
    }

    fn on_vote(&mut self, round: Round, _value: Digest) -> BallotAction {
        BallotAction::Replace(garbage(round, 1))
    }

    fn on_commit(&mut self, round: Round, _value: Digest) -> BallotAction {
        BallotAction::Replace(garbage(round, 2))
    }

    fn on_reveal(&mut self, round: Round, _value: Digest) -> BallotAction {
        BallotAction::Replace(garbage(round, 3))
    }

    fn send_expose(&self) -> bool {
        false
    }
}

/// Double-signs every vote and commit: the honest value to half the
/// committee, a garbage value to the other half. Pure `π_ds` fodder for the
/// fraud detector.
#[derive(Debug, Clone)]
pub struct DoubleVoter {
    second_half: HashSet<NodeId>,
}

impl DoubleVoter {
    /// Creates a double-voter that sends the alternative value to the upper
    /// half of the committee ids.
    pub fn new(n: usize) -> Self {
        DoubleVoter {
            second_half: (n / 2..n).map(NodeId).collect(),
        }
    }
}

impl Behavior for DoubleVoter {
    fn label(&self) -> &'static str {
        "double-voter"
    }

    fn on_vote(&mut self, round: Round, _value: Digest) -> BallotAction {
        BallotAction::Split {
            b: garbage(round, 11),
            b_recipients: self.second_half.clone(),
        }
    }

    fn on_commit(&mut self, round: Round, _value: Digest) -> BallotAction {
        BallotAction::Split {
            b: garbage(round, 12),
            b_recipients: self.second_half.clone(),
        }
    }

    fn send_expose(&self) -> bool {
        false
    }
}

/// Proposes nothing when leading but otherwise follows the protocol —
/// a byzantine leader that only attacks liveness of its own rounds.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentLeader;

impl Behavior for SilentLeader {
    fn label(&self) -> &'static str {
        "silent-leader"
    }

    fn on_propose(&mut self, _round: Round, _honest_block: &Block) -> ProposeAction {
        ProposeAction::Silent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_values_differ_by_phase_and_round() {
        assert_ne!(garbage(Round(1), 1), garbage(Round(1), 2));
        assert_ne!(garbage(Round(1), 1), garbage(Round(2), 1));
    }

    #[test]
    fn double_voter_splits_to_upper_half() {
        let mut dv = DoubleVoter::new(4);
        match dv.on_vote(Round(0), Digest::ZERO) {
            BallotAction::Split { b_recipients, .. } => {
                assert_eq!(
                    b_recipients,
                    [NodeId(2), NodeId(3)].into_iter().collect::<HashSet<_>>()
                );
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn silent_leader_is_otherwise_honest() {
        let mut sl = SilentLeader;
        assert!(matches!(
            sl.on_propose(Round(0), &Block::genesis()),
            ProposeAction::Silent
        ));
        assert!(matches!(
            sl.on_vote(Round(0), Digest::ZERO),
            BallotAction::Honest
        ));
        assert!(sl.send_expose());
    }
}
