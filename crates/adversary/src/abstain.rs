//! `π_abs`: total abstention (the θ=3 liveness attack).

use prft_core::{BallotAction, Behavior, ProposeAction};
use prft_types::{Block, Digest, Round};

/// The abstention strategy: never send a protocol message.
///
/// Abstention is indistinguishable from a crash fault under partial
/// synchrony, so no accountable protocol can penalize it (`D(π_abs, σ) = 0`)
/// — the crux of Theorem 1. Abstainers still *receive* messages and track
/// rounds, which maximizes their information while contributing nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct Abstain;

impl Behavior for Abstain {
    fn label(&self) -> &'static str {
        "abstain"
    }

    fn on_propose(&mut self, _round: Round, _honest_block: &Block) -> ProposeAction {
        ProposeAction::Silent
    }

    fn on_vote(&mut self, _round: Round, _value: Digest) -> BallotAction {
        BallotAction::Silent
    }

    fn on_commit(&mut self, _round: Round, _value: Digest) -> BallotAction {
        BallotAction::Silent
    }

    fn on_reveal(&mut self, _round: Round, _value: Digest) -> BallotAction {
        BallotAction::Silent
    }

    fn on_final(&mut self, _round: Round, _value: Digest) -> BallotAction {
        BallotAction::Silent
    }

    fn send_expose(&self) -> bool {
        false
    }

    fn join_view_change(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstain_is_silent_everywhere() {
        let mut a = Abstain;
        assert_eq!(a.label(), "abstain");
        assert!(matches!(
            a.on_propose(Round(1), &Block::genesis()),
            ProposeAction::Silent
        ));
        assert!(matches!(
            a.on_vote(Round(1), Digest::ZERO),
            BallotAction::Silent
        ));
        assert!(matches!(
            a.on_commit(Round(1), Digest::ZERO),
            BallotAction::Silent
        ));
        assert!(matches!(
            a.on_reveal(Round(1), Digest::ZERO),
            BallotAction::Silent
        ));
        assert!(matches!(
            a.on_final(Round(1), Digest::ZERO),
            BallotAction::Silent
        ));
        assert!(!a.send_expose());
        assert!(!a.join_view_change());
    }
}
