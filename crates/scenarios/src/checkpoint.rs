//! Checkpoint/fork warm starts for sweep-scale reuse.
//!
//! Grid sweeps and game explorations evaluate many [`ScenarioSpec`]s that
//! share a *timeline prefix*: the static committee/network configuration
//! plus every scheduled event before some tick `t` are identical, and the
//! specs only diverge later (a defection at tick 500, a delay rule lifted
//! at GST, …). Because the simulation is bit-deterministic, the state at
//! the first divergent tick is a pure function of (prefix, seed) — so it
//! can be captured once and *forked* by every sibling cell instead of
//! re-simulated from `t = 0`.
//!
//! This module provides the three pieces:
//!
//! - [`prefix_fingerprint`]: a stable hash identifying "the simulation a
//!   spec describes, up to (excluding) tick `t`". Two specs with equal
//!   prefix fingerprints and equal derived seeds are guaranteed to be in
//!   byte-identical states at any capture point below `t`.
//! - [`CheckpointEntry`]: a captured state — the engine snapshot of
//!   either node population (pure committee or committee-plus-clients)
//!   plus the scenario-layer shared state the engine cannot see (the fork
//!   blackboard and the thread-local observability hook counters).
//! - [`CheckpointStore`]: an in-memory, LRU-bounded, thread-shared map
//!   from `(prefix fingerprint, seed)` to captured states at increasing
//!   depths, with fork/reuse accounting ([`ReuseStats`]) and optional
//!   *capture hints* ([`CheckpointStore::set_capture_hints_for`]) that
//!   let producing runs take deep captures at sibling boundaries past
//!   their own divergence (suffix fingerprints).
//!
//! The warm-start run path lives in `build::run_one_with`; this module is
//! purely the bookkeeping. See `docs/CHECKPOINTING.md` for the full
//! contract (what is and is not in a checkpoint, and why the reuse
//! counters deliberately stay out of per-run reports).

use crate::spec::{ScenarioSpec, TimelineEvent};
use prft_adversary::ForkPlan;
use prft_core::Replica;
use prft_sim::obs::hooks::HookSnapshot;
use prft_sim::SimSnapshot;
use prft_workload::Actor;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Default number of checkpoints a store retains before evicting the
/// least-recently-used one. Checkpoints hold a full committee clone, so
/// the bound is deliberately modest.
pub const DEFAULT_CAPACITY: usize = 64;

/// Stable fingerprint of `spec`'s simulation prefix below `tick_bound`.
///
/// Two cells whose prefix fingerprints agree (and that run under the same
/// derived seed) are guaranteed to traverse byte-identical simulation
/// states up to the first event at or after `tick_bound` — so a state
/// captured by one at any tick `≤ tick_bound` is a valid resume point for
/// the other.
///
/// The hash covers, in a canonical form:
///
/// - every *static* field that shapes the build: `n`, `max_rounds`,
///   `horizon`, `synchrony`, `partitions`, `roles`, `censored`,
///   `fork_b_group`, `txs`, `tau_override`, `accountable`,
///   `phase_timeout`;
/// - the whole-schedule-derived build inputs: the censor collusion set
///   (baked into `PartialCensor` behaviors at `t = 0` even when the
///   censoring seat is only scheduled later), the presence of a
///   `TargetedDelay` wrapper, and **all** partition sugar events
///   (resolved statically into network windows at build time, so they are
///   static config regardless of their tick);
/// - the *dynamic prefix*: every non-sugar scheduled event with
///   `tick < tick_bound`, in execution order (stable tick sort).
///
/// It deliberately **excludes** fields that provably cannot affect the
/// simulation state: `label`, `watched` and `utility` (post-run
/// measurement only), `base_seed` (the store is keyed by the *derived*
/// seed separately), and `queue`/`verify_mode` (pinned byte-identical by
/// the backend/verify-mode identity invariants).
///
/// The `workload` section stays in the canonical form: every workload
/// knob (clients, arrivals, retry policy, mempool capacity, …) shapes the
/// population and its traffic from `t = 0`, so two cells only share
/// prefixes when their workloads agree exactly. Keeping it also makes the
/// fingerprint population-separating by construction: a committee spec
/// (`workload: None`) can never collide with a workload spec, so a store
/// entry's population always matches its consumer.
pub fn prefix_fingerprint(spec: &ScenarioSpec, tick_bound: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut canonical = spec.clone();
    canonical.label = String::new();
    canonical.base_seed = 0;
    canonical.watched = Vec::new();
    canonical.utility = None;
    canonical.queue = Default::default();
    canonical.verify_mode = Default::default();
    canonical.schedule = Vec::new();
    // Sugar is static network config; keep insertion order (PartitionEnd
    // pairing is order-sensitive).
    let sugar: Vec<(u64, &TimelineEvent)> = spec
        .schedule
        .iter()
        .filter(|(_, e)| e.is_partition_sugar())
        .map(|(t, e)| (*t, e))
        .collect();
    let prefix = ordered_events(spec)
        .into_iter()
        .filter(|(t, _)| *t < tick_bound)
        .collect::<Vec<_>>();
    let collusion = spec.censor_collusion();
    let delay_wrapped = spec.schedule.iter().any(|(_, e)| {
        matches!(
            e,
            TimelineEvent::AddDelayRule { .. } | TimelineEvent::RemoveDelayRule { .. }
        )
    });
    // Salt v2: workload specs joined the store (they previously bypassed
    // it), so workload knobs became significant for sharing decisions.
    // Bumping the salt makes every pre-v2 prefix read as a miss — never a
    // stale hit.
    let text = format!(
        "ckpt-v2|{canonical:?}|sugar:{sugar:?}|collusion:{collusion:?}|delay:{delay_wrapped}|prefix:{prefix:?}"
    );
    let mut hash = FNV_OFFSET;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The spec's non-sugar schedule in execution order (ascending tick,
/// same-tick events in insertion order, events beyond the horizon
/// dropped) — exactly the order the timeline executor applies them.
pub(crate) fn ordered_events(spec: &ScenarioSpec) -> Vec<(u64, &TimelineEvent)> {
    let mut events: Vec<(u64, &TimelineEvent)> = spec
        .schedule
        .iter()
        .filter(|(tick, e)| !e.is_partition_sugar() && *tick <= spec.horizon)
        .map(|(t, e)| (*t, e))
        .collect();
    events.sort_by_key(|(t, _)| *t); // stable: same-tick in insertion order
    events
}

/// The spec's distinct non-sugar event ticks in `(0, horizon]`,
/// ascending — the boundaries a warm run captures at, and the
/// capture-hint contribution a grid sibling advertises.
pub(crate) fn event_ticks(spec: &ScenarioSpec) -> Vec<u64> {
    let mut out: Vec<u64> = ordered_events(spec)
        .into_iter()
        .map(|(t, _)| t)
        .filter(|&t| t > 0)
        .collect();
    out.dedup();
    out
}

/// The candidate fork boundaries of a spec, ascending: every distinct
/// non-sugar event tick `> 0`, plus the horizon as a pseudo-boundary so a
/// schedule-free cell can still fork from a sibling's captured prefix.
/// An event scheduled exactly at the horizon contributes one boundary
/// (the trailing `dedup` collapses it into the pseudo-boundary).
pub(crate) fn boundaries(spec: &ScenarioSpec) -> Vec<u64> {
    let mut out = event_ticks(spec);
    out.push(spec.horizon);
    out.dedup();
    out
}

/// The captured engine state of one of the two node populations the
/// timeline executor drives. The store is population-agnostic: committee
/// and workload captures share one LRU budget and one accounting, and the
/// fingerprint keeps the populations apart (a `workload: None` spec can
/// never share a fingerprint with a workload one), so a lookup always
/// yields the consumer's own population.
pub(crate) enum PopSnapshot {
    /// The pure committee population (`Simulation<Replica>`).
    Committee(SimSnapshot<Replica>),
    /// The mixed committee-plus-clients population of a workload run
    /// (`Simulation<Actor>`).
    Workload(SimSnapshot<Actor>),
}

/// One captured prefix state: everything a sibling cell needs to resume
/// the run from `tick` without replaying the prefix.
///
/// The engine snapshot carries nodes (behaviors, verify caches, RNG —
/// and, for workload runs, every client's in-flight/retry state), queue,
/// arena, meter, counters, and the broadcast domain. The two pieces of
/// state the engine cannot see ride alongside: the fork blackboard
/// content (deep-copied so forks never alias the producer's live
/// `Arc<Mutex<…>>`) and the thread-local observability hook counters
/// accumulated over the prefix. Delay rules are deliberately *not*
/// captured — the fork path replays the prefix's delay events onto a
/// freshly built network stack instead (see `docs/CHECKPOINTING.md`).
pub struct CheckpointEntry {
    /// Engine-level state at the capture point, tagged by population.
    pub(crate) snapshot: PopSnapshot,
    /// Deep copy of the fork blackboard content at the capture point
    /// (`None` when the producer run had no blackboard).
    pub(crate) board: Option<ForkPlan>,
    /// Thread-local observability hook counters at the capture point.
    pub(crate) hooks: HookSnapshot,
    /// The capture boundary: state reflects `run_before(tick)`, before
    /// any event scheduled at `tick` was applied.
    pub(crate) tick: u64,
}

impl CheckpointEntry {
    /// The capture boundary tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }
}

/// Reuse accounting for one [`CheckpointStore`].
///
/// These are the `sim.checkpoint.{created,forked,prefix_ticks_saved}`
/// counters. They live at store level — **not** in the per-run
/// observability registry — because whether a given cell forks or runs
/// fresh depends on worker scheduling, and per-run reports are pinned
/// byte-identical across `--threads`. Surface: `prft-lab … --explain-reuse`
/// and `prft-bench checkpoint`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReuseStats {
    /// Checkpoints captured (`sim.checkpoint.created`).
    pub created: u64,
    /// Runs resumed from a checkpoint (`sim.checkpoint.forked`).
    pub forked: u64,
    /// Virtual ticks of prefix not re-simulated, summed over forks
    /// (`sim.checkpoint.prefix_ticks_saved`).
    pub prefix_ticks_saved: u64,
}

struct Slot {
    entry: Arc<CheckpointEntry>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    /// `(prefix fingerprint, derived seed)` → capture tick → state.
    map: HashMap<(u64, u64), BTreeMap<u64, Slot>>,
    /// Capture hints, sorted: `(tick, prefix fingerprint at that tick)`
    /// pairs advertising the boundaries *sibling* cells will probe. A run
    /// captures at a hint tick exactly when its own fingerprint at that
    /// tick matches — so deep captures past its last scheduled event (the
    /// suffix fingerprints of forked cells included) are taken only where
    /// some sibling can actually consume them.
    hints: Vec<(u64, u64)>,
    clock: u64,
    len: usize,
    stats: ReuseStats,
}

/// In-memory, thread-shared checkpoint cache for one sweep invocation.
///
/// Keys are `(prefix fingerprint, derived seed)`; each key holds captures
/// at increasing depths and [`CheckpointStore::lookup`] returns the
/// deepest one not past the requested boundary. Capacity-bounded with
/// least-recently-used eviction (capacity counts individual checkpoints).
///
/// The store is in-memory only: committee state holds boxed behaviors and
/// shared `Arc` structure that have no serialized form, so checkpoints do
/// not persist across processes — reuse is scoped to one sweep
/// invocation, which is where the shared-prefix redundancy lives.
pub struct CheckpointStore {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new(DEFAULT_CAPACITY)
    }
}

impl CheckpointStore {
    /// Creates a store retaining at most `capacity` checkpoints
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CheckpointStore {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The deepest checkpoint for `(fingerprint, seed)` captured at a tick
    /// `≤ boundary`, if any. A hit counts as a fork in [`ReuseStats`].
    pub fn lookup(
        &self,
        fingerprint: u64,
        seed: u64,
        boundary: u64,
    ) -> Option<Arc<CheckpointEntry>> {
        let mut inner = self.inner.lock().unwrap();
        let clock = {
            inner.clock += 1;
            inner.clock
        };
        let slot = inner
            .map
            .get_mut(&(fingerprint, seed))?
            .range_mut(..=boundary)
            .next_back()
            .map(|(_, slot)| {
                slot.last_used = clock;
                Arc::clone(&slot.entry)
            })?;
        inner.stats.forked += 1;
        inner.stats.prefix_ticks_saved += slot.tick;
        Some(slot)
    }

    /// Whether a checkpoint already exists at exactly
    /// `(fingerprint, seed, tick)` — producers check this before paying
    /// for the committee clone.
    pub fn contains(&self, fingerprint: u64, seed: u64, tick: u64) -> bool {
        let inner = self.inner.lock().unwrap();
        inner
            .map
            .get(&(fingerprint, seed))
            .is_some_and(|m| m.contains_key(&tick))
    }

    /// Inserts a capture, first writer wins (a concurrent duplicate is
    /// dropped — both captured the same deterministic state). A duplicate
    /// still *touches* the surviving slot's LRU stamp: a checkpoint being
    /// actively re-produced by concurrent workers is about to be probed by
    /// their sibling cells, so it must not be the next eviction victim.
    /// Counts toward `created` only on actual insert; evicts the
    /// least-recently-used checkpoint when over capacity.
    pub fn insert(&self, fingerprint: u64, seed: u64, entry: CheckpointEntry) {
        let tick = entry.tick;
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let by_tick = inner.map.entry((fingerprint, seed)).or_default();
        if let Some(slot) = by_tick.get_mut(&tick) {
            slot.last_used = clock;
            return;
        }
        by_tick.insert(
            tick,
            Slot {
                entry: Arc::new(entry),
                last_used: clock,
            },
        );
        inner.len += 1;
        inner.stats.created += 1;
        while inner.len > self.capacity {
            // O(total entries) scan — capacity is small by construction.
            let victim = inner
                .map
                .iter()
                .flat_map(|(key, m)| m.iter().map(move |(t, s)| (s.last_used, *key, *t)))
                .min()
                .map(|(_, key, t)| (key, t));
            if let Some((key, t)) = victim {
                if let Some(m) = inner.map.get_mut(&key) {
                    m.remove(&t);
                    if m.is_empty() {
                        inner.map.remove(&key);
                    }
                }
                inner.len -= 1;
            } else {
                break;
            }
        }
    }

    /// Drops every checkpoint captured after `bound`, keeping shallower
    /// ones. This bounds how deep forks can start; the differential suite
    /// uses it to pin fork-vs-fresh equivalence at *each* boundary of a
    /// schedule, not just the deepest.
    pub fn retain_ticks_at_most(&self, bound: u64) {
        let mut inner = self.inner.lock().unwrap();
        let mut removed = 0;
        for m in inner.map.values_mut() {
            let before = m.len();
            m.retain(|&t, _| t <= bound);
            removed += before - m.len();
        }
        inner.map.retain(|_, m| !m.is_empty());
        inner.len -= removed;
    }

    /// Installs capture hints derived from `specs` — the cells of the
    /// sweep this store serves. Every sibling's event boundary becomes a
    /// `(tick, prefix fingerprint)` pair; a producing run then captures at
    /// a hint tick whenever its own fingerprint there matches, even when
    /// the tick lies *past its last scheduled event* (a post-divergence
    /// deep capture under the suffix fingerprint). Hints never change any
    /// run's observables — captures are invisible — and never cause a
    /// capture no sibling boundary could consume.
    ///
    /// Replaces any previous hints. Install before fanning runs out: the
    /// capture plan of a run is a pure function of `(spec, hints)`, so the
    /// hint set must be fixed for the whole sweep to keep records
    /// thread-count-invariant.
    pub fn set_capture_hints_for<'a>(&self, specs: impl IntoIterator<Item = &'a ScenarioSpec>) {
        let mut hints: Vec<(u64, u64)> = specs
            .into_iter()
            .flat_map(|spec| {
                event_ticks(spec)
                    .into_iter()
                    .map(|t| (t, prefix_fingerprint(spec, t)))
            })
            .collect();
        hints.sort_unstable();
        hints.dedup();
        self.inner.lock().unwrap().hints = hints;
    }

    /// The hint ticks applicable to a run of `spec`: every installed hint
    /// tick whose advertised fingerprint equals `spec`'s own prefix
    /// fingerprint at that tick (sorted, deduplicated). Store *contents*
    /// never influence this — only the fixed hint set does.
    pub(crate) fn capture_ticks_for(&self, spec: &ScenarioSpec) -> Vec<u64> {
        let hints = self.inner.lock().unwrap().hints.clone();
        let mut out = Vec::new();
        let mut i = 0;
        while i < hints.len() {
            let tick = hints[i].0;
            let fp = prefix_fingerprint(spec, tick);
            while i < hints.len() && hints[i].0 == tick {
                if hints[i].1 == fp {
                    out.push(tick);
                }
                i += 1;
            }
        }
        out.dedup();
        out
    }

    /// Number of checkpoints currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Whether the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the reuse counters.
    pub fn stats(&self) -> ReuseStats {
        self.inner.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Role;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("base", 4, 3)
    }

    #[test]
    fn fingerprint_ignores_measurement_only_fields() {
        let a = spec();
        let mut b = spec();
        b.label = "other".into();
        b.base_seed = 77;
        b.watched = vec![9];
        let t = 1000;
        assert_eq!(prefix_fingerprint(&a, t), prefix_fingerprint(&b, t));
    }

    #[test]
    fn fingerprint_tracks_static_fields() {
        let a = spec();
        let mut b = spec();
        b.n = 5;
        assert_ne!(prefix_fingerprint(&a, 10), prefix_fingerprint(&b, 10));
        let mut c = spec();
        c.accountable = !c.accountable;
        assert_ne!(prefix_fingerprint(&a, 10), prefix_fingerprint(&c, 10));
    }

    #[test]
    fn fingerprint_sees_only_events_below_bound() {
        let a = spec();
        let b = spec().at(500, TimelineEvent::Crash(1));
        assert_eq!(prefix_fingerprint(&a, 500), prefix_fingerprint(&b, 500));
        assert_ne!(prefix_fingerprint(&a, 501), prefix_fingerprint(&b, 501));
    }

    #[test]
    fn fingerprint_sees_suffix_censor_collusion() {
        // A censoring seat scheduled *after* the bound still shapes the
        // t = 0 build (collusion set baked into behaviors), so it must
        // break prefix equality.
        let a = spec();
        let b = spec().at(500, TimelineEvent::SetRole(1, Role::PartialCensor));
        assert_ne!(prefix_fingerprint(&a, 100), prefix_fingerprint(&b, 100));
    }

    #[test]
    fn fingerprint_sees_all_partition_sugar() {
        let a = spec();
        let b = spec().at(
            900,
            TimelineEvent::PartitionStart {
                groups: vec![vec![0, 1], vec![2, 3]],
                bridges: vec![],
            },
        );
        // Sugar at tick 900 is static network config: even a bound of 10
        // must see it.
        assert_ne!(prefix_fingerprint(&a, 10), prefix_fingerprint(&b, 10));
    }

    #[test]
    fn boundaries_include_horizon_pseudo_boundary() {
        let s = spec().at(500, TimelineEvent::Crash(1));
        assert_eq!(boundaries(&s), vec![500, s.horizon]);
        assert_eq!(boundaries(&spec()), vec![spec().horizon]);
    }

    #[test]
    fn at_horizon_event_collapses_into_pseudo_boundary() {
        // An event scheduled exactly at the horizon must yield ONE
        // boundary there, and the fingerprint at that boundary must not
        // see the event (prefix is strictly below the bound) — so it
        // agrees with a sibling that has no at-horizon event at all.
        let h = spec().horizon;
        let s = spec().at(h, TimelineEvent::Crash(1));
        assert_eq!(boundaries(&s), vec![h]);
        assert_eq!(prefix_fingerprint(&s, h), prefix_fingerprint(&spec(), h));
        assert_ne!(
            prefix_fingerprint(&s, h + 1),
            prefix_fingerprint(&spec(), h + 1)
        );
    }

    #[test]
    fn fingerprint_tracks_workload_knobs() {
        use prft_workload::WorkloadSpec;
        let a = spec();
        let b = spec().workload(WorkloadSpec::steady(4, 100));
        let c = spec().workload(WorkloadSpec::steady(5, 100));
        assert_ne!(
            prefix_fingerprint(&a, 10),
            prefix_fingerprint(&b, 10),
            "population choice must separate fingerprints"
        );
        assert_ne!(
            prefix_fingerprint(&b, 10),
            prefix_fingerprint(&c, 10),
            "every workload knob is fingerprint-significant"
        );
    }

    #[test]
    fn capture_hints_match_only_shared_prefixes() {
        let store = CheckpointStore::default();
        assert!(store.capture_ticks_for(&spec()).is_empty());
        let crash = spec().at(500, TimelineEvent::Crash(1));
        let late = spec().at(900, TimelineEvent::Crash(2));
        store.set_capture_hints_for([&crash, &late]);
        // The schedule-free sibling shares both prefixes: it should
        // capture at both hint ticks, even though it has no events.
        assert_eq!(store.capture_ticks_for(&spec()), vec![500, 900]);
        // `crash` diverges at 500, so 900 advertises a fingerprint its
        // own trajectory can't match; `late` still matches 500.
        assert_eq!(store.capture_ticks_for(&crash), vec![500]);
        assert_eq!(store.capture_ticks_for(&late), vec![500, 900]);
        // A spec with different statics matches nothing.
        let mut other = spec();
        other.n = 5;
        assert!(store.capture_ticks_for(&other).is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let store = CheckpointStore::new(2);
        let entry = |tick| CheckpointEntry {
            snapshot: PopSnapshot::Committee(fake_snapshot()),
            board: None,
            hooks: HookSnapshot::default(),
            tick,
        };
        store.insert(1, 0, entry(10));
        store.insert(2, 0, entry(20));
        // Touch (1, 0) so (2, 0) is the LRU victim.
        assert!(store.lookup(1, 0, 100).is_some());
        store.insert(3, 0, entry(30));
        assert_eq!(store.len(), 2);
        assert!(store.lookup(2, 0, 100).is_none());
        assert!(store.lookup(3, 0, 100).is_some());
        let stats = store.stats();
        assert_eq!(stats.created, 3);
        assert_eq!(stats.forked, 2, "the miss on the evicted key is not a fork");
        assert_eq!(stats.prefix_ticks_saved, 10 + 30);
    }

    #[test]
    fn duplicate_insert_refreshes_the_surviving_slot() {
        let store = CheckpointStore::new(2);
        let entry = |tick| CheckpointEntry {
            snapshot: PopSnapshot::Committee(fake_snapshot()),
            board: None,
            hooks: HookSnapshot::default(),
            tick,
        };
        store.insert(1, 0, entry(10));
        store.insert(2, 0, entry(20));
        // A racing worker re-produces (1, 0, 10): the duplicate is
        // dropped, but it must *touch* the surviving slot — the sibling
        // cells about to probe it make it the hottest entry, not the
        // coldest.
        store.insert(1, 0, entry(10));
        store.insert(3, 0, entry(30));
        assert_eq!(store.len(), 2);
        assert!(
            store.lookup(1, 0, 100).is_some(),
            "the re-produced checkpoint was evicted despite being hot"
        );
        assert!(store.lookup(2, 0, 100).is_none(), "(2, 0) was the LRU");
        assert_eq!(store.stats().created, 3, "duplicates don't count");
    }

    #[test]
    fn lookup_returns_deepest_at_or_below_boundary() {
        let store = CheckpointStore::new(8);
        for tick in [10, 20, 30] {
            store.insert(
                7,
                1,
                CheckpointEntry {
                    snapshot: PopSnapshot::Committee(fake_snapshot()),
                    board: None,
                    hooks: HookSnapshot::default(),
                    tick,
                },
            );
        }
        assert_eq!(store.lookup(7, 1, 25).unwrap().tick(), 20);
        assert_eq!(store.lookup(7, 1, 30).unwrap().tick(), 30);
        assert!(store.lookup(7, 1, 5).is_none());
        assert!(store.lookup(7, 2, 30).is_none(), "seed is part of the key");
        store.retain_ticks_at_most(15);
        assert_eq!(store.lookup(7, 1, 30).unwrap().tick(), 10);
        assert_eq!(store.len(), 1);
    }

    /// A minimal real snapshot (the store never inspects it).
    fn fake_snapshot() -> SimSnapshot<Replica> {
        crate::build::build_sim(&spec(), 1).snapshot()
    }
}
