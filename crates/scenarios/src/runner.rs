//! The multi-threaded batch runner: fans seeded runs (or any per-item
//! work) across worker threads with deterministic results.
//!
//! Two properties make parallel sweeps reproducible:
//!
//! 1. **Order-independent seeding** — the seed of run `i` is
//!    [`derive_seed`]`(base, i)`, a pure function of the batch index. No
//!    RNG state is shared across runs, so which thread picks up which run
//!    (and in which order) cannot change any run's randomness.
//! 2. **Index-addressed results** — workers write into the slot of the item
//!    they claimed, and aggregation always walks slots in index order, so
//!    floating-point reductions happen in one fixed order regardless of
//!    thread count. `threads = 1` and `threads = 8` produce byte-identical
//!    reports.

use crate::build::{run_one, run_one_with};
use crate::checkpoint::CheckpointStore;
use crate::record::{BatchReport, RunRecord};
use crate::spec::ScenarioSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives the simulation seed for batch index `index` under `base`.
///
/// SplitMix64-style finalizer over `base ⊕ golden·(index+1)`: adjacent
/// indices land far apart, and the mapping depends only on `(base, index)`.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fans work for `items` across `threads` workers; returns outputs in item
/// order. The closure receives `(index, &item)`.
///
/// This is the one thread pool in the workspace: scenario batches, baseline
/// sweeps, and empirical-game profile grids all fan out through here.
pub fn par_map<I, O, F>(threads: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let threads = effective_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(i, &items[i]);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Resolves `0` to the machine's available parallelism.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Runs scenario batches across a fixed-size worker pool.
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    threads: usize,
}

impl BatchRunner {
    /// A runner with `threads` workers (`0` = all cores).
    pub fn new(threads: usize) -> Self {
        BatchRunner { threads }
    }

    /// A runner using every available core.
    pub fn all_cores() -> Self {
        BatchRunner { threads: 0 }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        effective_threads(self.threads)
    }

    /// Runs `seeds` seeded simulations of `spec` and aggregates them.
    pub fn run(&self, spec: &ScenarioSpec, seeds: u64) -> BatchReport {
        let indices: Vec<u64> = (0..seeds).collect();
        let records: Vec<RunRecord> = par_map(self.threads, &indices, |_, &i| {
            run_one(spec, derive_seed(spec.base_seed, i))
        });
        BatchReport::from_records(spec.label.clone(), spec.n, records)
    }

    /// Runs every grid point of a scenario, each over `seeds` seeds, with
    /// checkpoint/fork warm starts on (a store scoped to this call).
    /// Equivalent to [`BatchRunner::run_grid_with`] with a fresh
    /// [`CheckpointStore`]; results are byte-identical either way.
    pub fn run_grid(&self, specs: &[ScenarioSpec], seeds: u64) -> Vec<BatchReport> {
        self.run_grid_with(specs, seeds, Some(&CheckpointStore::default()))
    }

    /// Runs every grid point of a scenario, each over `seeds` seeds,
    /// optionally sharing `store` across cells so grid points with a
    /// common timeline prefix fork from one captured state instead of
    /// re-simulating it (`None` = cold, every cell from `t = 0`).
    ///
    /// The whole grid is flattened into **one** `specs × seeds` work list
    /// over the shared claim counter, so a grid of many small points
    /// saturates the pool instead of draining it once per point. Cells
    /// are index-addressed — cell `s·seeds + i` is spec `s` under
    /// [`derive_seed`]`(base_s, i)` — and each grid point aggregates the
    /// moment its last cell lands, in seed-index order, so reports stay
    /// byte-identical at any thread count, with or without warm starts,
    /// *and* byte-identical to the old sequential-per-point schedule.
    ///
    /// Records **stream** into their grid point's aggregation slot and are
    /// dropped as soon as the point completes: peak memory is proportional
    /// to the records of *in-flight* grid points, not the whole
    /// `specs × seeds` grid.
    pub fn run_grid_with(
        &self,
        specs: &[ScenarioSpec],
        seeds: u64,
        store: Option<&CheckpointStore>,
    ) -> Vec<BatchReport> {
        if seeds == 0 || specs.is_empty() {
            return specs
                .iter()
                .map(|s| BatchReport::from_records(s.label.clone(), s.n, Vec::new()))
                .collect();
        }
        // Advertise every cell's event boundaries as capture hints so
        // early-finishing cells capture at their siblings' fork ticks too
        // (suffix captures past their own last event).
        if let Some(store) = store {
            store.set_capture_hints_for(specs.iter());
        }
        struct SpecSlot {
            records: Vec<Option<RunRecord>>,
            remaining: usize,
        }
        let cells: Vec<(usize, u64)> = specs
            .iter()
            .enumerate()
            .flat_map(|(s, _)| (0..seeds).map(move |i| (s, i)))
            .collect();
        let slots: Vec<Mutex<SpecSlot>> = specs
            .iter()
            .map(|_| {
                Mutex::new(SpecSlot {
                    records: (0..seeds).map(|_| None).collect(),
                    remaining: seeds as usize,
                })
            })
            .collect();
        let reports: Vec<Mutex<Option<BatchReport>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let work = |c: usize| {
            let (s, i) = cells[c];
            let spec = &specs[s];
            let record = run_one_with(spec, derive_seed(spec.base_seed, i), store);
            let finished: Option<Vec<RunRecord>> = {
                let mut slot = slots[s].lock().expect("spec slot");
                slot.records[i as usize] = Some(record);
                slot.remaining -= 1;
                (slot.remaining == 0).then(|| {
                    slot.records
                        .iter_mut()
                        .map(|r| r.take().expect("every seed slot filled"))
                        .collect()
                })
            };
            if let Some(records) = finished {
                let report = BatchReport::from_records(spec.label.clone(), spec.n, records);
                *reports[s].lock().expect("report slot") = Some(report);
            }
        };
        let threads = effective_threads(self.threads).min(cells.len());
        if threads <= 1 {
            for c in 0..cells.len() {
                work(c);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= cells.len() {
                            break;
                        }
                        work(c);
                    });
                }
            });
        }
        reports
            .into_iter()
            .map(|r| {
                r.into_inner()
                    .expect("report slot")
                    .expect("every grid point completed")
            })
            .collect()
    }

    /// Deterministic parallel map over arbitrary items (see [`par_map`]).
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        par_map(self.threads, items, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_pure_and_spread_out() {
        assert_eq!(derive_seed(7, 0), derive_seed(7, 0));
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
        // Not the identity and not small-biased.
        assert!(derive_seed(0, 0) > 1 << 32);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(1, &items, |i, &x| x * 2 + i as u64);
        let parallel = par_map(8, &items, |i, &x| x * 2 + i as u64);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 9);
    }

    #[test]
    fn par_map_handles_empty_and_tiny() {
        let empty: Vec<u64> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[5u64], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn threads_resolve() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
        assert_eq!(BatchRunner::new(2).threads(), 2);
    }
}
