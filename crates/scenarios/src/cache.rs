//! The explorer's on-disk utility cache.
//!
//! A sweep cell is expensive (seeds × simulated committee runs) but pure:
//! its result is a function of `(profile, spec fingerprint, seed count)`
//! alone, because the batch runner derives every per-run seed from the
//! spec's base seed and the run index. The cache persists finished cells
//! so a re-sweep — or a strictly larger sweep sharing profiles with an
//! earlier one — only simulates the cells it has never seen.
//!
//! Format: one append-only text file per cache scope
//! (`<dir>/<scope>.cells`), one line per cell:
//!
//! ```text
//! v1 <TAB> fingerprint-hex <TAB> seeds <TAB> profile(csv) <TAB> seats(csv) <TAB> σ <TAB> utilities(csv) <TAB> ci95(csv)
//! ```
//!
//! `seats` records which committee seats the per-player utilities were
//! read from, so two games sharing a scope (and even a spec) can never
//! exchange cells measured for different seats.
//!
//! Floats are written with Rust's shortest-roundtrip formatting, so a
//! cache hit reproduces the computed cell *bit-exactly* and cached and
//! uncached sweeps emit byte-identical reports. Unreadable lines are
//! treated as misses (the cell is simply recomputed and re-appended); the
//! last line for a key wins.

use prft_game::{Profile, ProfileStats, SystemState};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The identity of one sweep cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`crate::ScenarioSpec::fingerprint`] of the cell's spec.
    pub fingerprint: u64,
    /// Seeded runs aggregated into the cell.
    pub seeds: u64,
    /// The strategy profile the spec realizes.
    pub profile: Profile,
    /// Committee seats the per-player utilities were read from.
    pub seats: Vec<usize>,
}

/// A directory of per-game cell files.
#[derive(Debug, Clone)]
pub struct UtilityCache {
    dir: PathBuf,
}

impl UtilityCache {
    /// A cache rooted at `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        UtilityCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file(&self, game: &str) -> PathBuf {
        self.dir.join(format!("{game}.cells"))
    }

    /// Loads every readable cell for `game` (empty when the file does not
    /// exist yet). Later lines shadow earlier ones.
    pub fn load(&self, game: &str) -> BTreeMap<CacheKey, ProfileStats> {
        let mut cells = BTreeMap::new();
        let Ok(content) = std::fs::read_to_string(self.file(game)) else {
            return cells;
        };
        for line in content.lines() {
            if let Some((key, stats)) = parse_line(line) {
                cells.insert(key, stats);
            }
        }
        cells
    }

    /// Appends finished cells for `game`, creating the directory and file
    /// as needed. I/O errors are reported, not fatal — a read-only cache
    /// directory degrades to cache-off behavior.
    pub fn append(&self, game: &str, entries: &[(CacheKey, ProfileStats)]) -> std::io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        std::fs::create_dir_all(&self.dir)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.file(game))?;
        let mut out = String::new();
        for (key, stats) in entries {
            out.push_str(&render_line(key, stats));
            out.push('\n');
        }
        file.write_all(out.as_bytes())
    }
}

fn csv_f64(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn csv_usize(values: &[usize]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn render_line(key: &CacheKey, stats: &ProfileStats) -> String {
    format!(
        "v1\t{:016x}\t{}\t{}\t{}\t{}\t{}\t{}",
        key.fingerprint,
        key.seeds,
        csv_usize(&key.profile),
        csv_usize(&key.seats),
        stats.sigma.symbol(),
        csv_f64(&stats.utilities),
        csv_f64(&stats.ci95),
    )
}

fn parse_line(line: &str) -> Option<(CacheKey, ProfileStats)> {
    let fields: Vec<&str> = line.split('\t').collect();
    let [version, fingerprint, seeds, profile, seats, sigma, utilities, ci95] = fields[..] else {
        return None;
    };
    if version != "v1" {
        return None;
    }
    let fingerprint = u64::from_str_radix(fingerprint, 16).ok()?;
    let seeds: u64 = seeds.parse().ok()?;
    let profile: Profile = profile
        .split(',')
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    let seats: Vec<usize> = seats
        .split(',')
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    let sigma = *SystemState::ALL.iter().find(|s| s.symbol() == sigma)?;
    let utilities: Vec<f64> = utilities
        .split(',')
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    let ci95: Vec<f64> = ci95
        .split(',')
        .map(|s| s.parse().ok())
        .collect::<Option<_>>()?;
    if utilities.len() != ci95.len() || utilities.is_empty() {
        return None;
    }
    Some((
        CacheKey {
            fingerprint,
            seeds,
            profile,
            seats,
        },
        ProfileStats {
            utilities,
            ci95,
            seeds,
            sigma,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ProfileStats {
        ProfileStats {
            utilities: vec![0.5, -10.25, 1.0 / 3.0],
            ci95: vec![0.0, 0.125, 0.001],
            seeds: 4,
            sigma: SystemState::Fork,
        }
    }

    fn key() -> CacheKey {
        CacheKey {
            fingerprint: 0xdead_beef_0bad_f00d,
            seeds: 4,
            profile: vec![0, 2, 1],
            seats: vec![1, 2, 3],
        }
    }

    #[test]
    fn lines_round_trip_bit_exactly() {
        let line = render_line(&key(), &stats());
        let (k, s) = parse_line(&line).expect("parses");
        assert_eq!(k, key());
        assert_eq!(s, stats());
    }

    #[test]
    fn malformed_lines_are_misses() {
        assert!(parse_line("").is_none());
        assert!(parse_line("v0\tffff\t1\t0\t0\tσ_0\t1\t0").is_none());
        assert!(parse_line("v1\tnot-hex\t1\t0\t0\tσ_0\t1\t0").is_none());
        assert!(parse_line("v1\tffff\t1\t0\t0\tσ_??\t1\t0").is_none());
        // Arity mismatch between utilities and CIs.
        assert!(parse_line("v1\tffff\t1\t0\t0\tσ_0\t1,2\t0").is_none());
        // A pre-seats line (the old 7-field shape) is a miss, not a panic.
        assert!(parse_line("v1\tffff\t1\t0\tσ_0\t1\t0").is_none());
    }

    #[test]
    fn missing_file_loads_empty_and_append_creates() {
        let dir = std::env::temp_dir().join(format!("prft-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = UtilityCache::new(&dir);
        assert!(cache.load("g").is_empty());
        cache.append("g", &[(key(), stats())]).expect("append");
        let loaded = cache.load("g");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.get(&key()), Some(&stats()));
        // Appending the same key again shadows, not duplicates.
        cache.append("g", &[(key(), stats())]).expect("append");
        assert_eq!(cache.load("g").len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
