//! The empirical game explorer: profile space → scenario spec → batch
//! runs → utility table.
//!
//! The paper's equilibrium claims (Lemma 4's DSIC, Table 2's payoffs,
//! Theorem 3's trap equilibria) are statements over *strategy profiles*. A
//! [`GameDef`] declares such a game: which committee seats are the rational
//! players, which strategies each may play, and how one profile becomes a
//! runnable [`ScenarioSpec`]. The [`GameExplorer`] then sweeps the space:
//!
//! 1. **Symmetry reduction** — profiles equivalent under a declared player
//!    symmetry are evaluated once ([`prft_game::ProfileSpace`]); the full
//!    table is reconstructed by permuting per-player utilities back.
//! 2. **Caching** — each cell is keyed by `(profile, spec fingerprint,
//!    seeds)` in an on-disk [`UtilityCache`]; re-sweeps only simulate new
//!    cells, and a hit reproduces the computed cell bit-exactly.
//! 3. **Deterministic parallelism** — cells × seeds are flattened into one
//!    work list and fanned through [`par_map`] with the batch runner's
//!    order-independent seeding, so `--threads 1` and `--threads 8`
//!    produce byte-identical utility tables.
//!
//! The finished [`prft_game::UtilityTable`] carries per-cell 95% CIs, and
//! its Nash/DSIC certificates report whether each verdict is robust to
//! them.

use crate::build::run_one_with;
use crate::cache::{CacheKey, UtilityCache};
use crate::checkpoint::{CheckpointStore, ReuseStats};
use crate::record::BatchReport;
use crate::runner::{derive_seed, par_map, BatchRunner};
use crate::spec::ScenarioSpec;
use prft_game::{Profile, ProfileSpace, ProfileStats, SystemState, UtilityTable};
use std::collections::BTreeMap;

/// How a game's profiles are evaluated.
pub enum GameEval {
    /// Map the profile to a committee spec and simulate it; player `p` of
    /// the game reads the measured utility of committee seat `players[p]`.
    /// The spec must measure utilities ([`ScenarioSpec::utility`]).
    Simulated {
        /// Committee seat of each game player.
        players: Vec<usize>,
        /// Profile → runnable spec.
        spec_of: fn(&Profile) -> ScenarioSpec,
    },
    /// Closed-form evaluation (no simulation; seeds are ignored and cells
    /// carry zero CI).
    Analytic(fn(&Profile) -> (Vec<f64>, SystemState)),
}

/// A declarative empirical game the explorer can sweep (`prft-lab explore
/// run <name>`).
pub struct GameDef {
    /// Registry name.
    pub name: &'static str,
    /// One-line description for `prft-lab explore list`.
    pub description: &'static str,
    /// Per-player strategy labels (`strategies[p][s]`), defining both the
    /// arity of the space and the names reports print.
    pub strategies: Vec<Vec<&'static str>>,
    /// Declared symmetry groups: sets of players whose identities do not
    /// matter to the game. Only declare what the simulation really honors —
    /// leader rotation, partition sides, and fork groups all break seat
    /// interchangeability.
    pub symmetry: Vec<Vec<usize>>,
    /// The profile every player "should" play (strategy index per player);
    /// the DSIC verdict asks whether each component is dominant.
    pub honest: Profile,
    /// Cache namespace. Games sharing `spec_of` may share a scope, so a
    /// wider sweep reuses the cells a narrower one already paid for.
    /// Cells are keyed by spec fingerprint *and* the player-seat vector,
    /// so scope sharing can never serve a stale cell or one measured for
    /// different seats.
    pub cache_scope: &'static str,
    /// How profiles are evaluated.
    pub eval: GameEval,
}

impl GameDef {
    /// The game's profile space, honoring declared symmetry when
    /// `use_symmetry` is set.
    pub fn space(&self, use_symmetry: bool) -> ProfileSpace {
        let mut space = ProfileSpace::new(self.strategies.iter().map(Vec::len).collect());
        if use_symmetry {
            for group in &self.symmetry {
                space = space.with_symmetry(group.iter().copied());
            }
        }
        space
    }

    /// Number of game players.
    pub fn players(&self) -> usize {
        self.strategies.len()
    }

    /// The label of `player`'s strategy `s`.
    pub fn label(&self, player: usize, s: usize) -> &'static str {
        self.strategies[player][s]
    }

    /// Formats a profile with strategy labels: `(π_0, π_abs, π_fork)`.
    pub fn profile_label(&self, profile: &Profile) -> String {
        let parts: Vec<&str> = profile
            .iter()
            .enumerate()
            .map(|(p, &s)| self.label(p, s))
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// A finished sweep: the complete utility table plus cost accounting.
pub struct Exploration {
    /// The complete measured game.
    pub table: UtilityTable,
    /// Seeded runs behind each simulated cell.
    pub seeds: u64,
    /// Cells simulated by this sweep.
    pub evaluated: usize,
    /// Cells served from the on-disk cache.
    pub cached: usize,
    /// Cells served from an identical cell another game in the same
    /// [`GameExplorer::explore_all`] batch already evaluated (cross-game
    /// reuse through a shared cache scope, no disk round-trip needed).
    pub shared: usize,
    /// Cells filled by symmetry expansion instead of simulation.
    pub expanded: usize,
}

/// Sweeps [`GameDef`]s into utility tables through the batch engine.
pub struct GameExplorer {
    runner: BatchRunner,
    cache: Option<UtilityCache>,
    use_symmetry: bool,
    warm_starts: bool,
}

impl GameExplorer {
    /// An explorer fanning work through `runner`, with no cache, symmetry
    /// reduction on, and checkpoint/fork warm starts on.
    pub fn new(runner: BatchRunner) -> Self {
        GameExplorer {
            runner,
            cache: None,
            use_symmetry: true,
            warm_starts: true,
        }
    }

    /// Persists (and reuses) finished cells in `cache`.
    #[must_use]
    pub fn with_cache(mut self, cache: UtilityCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Evaluates every profile even when the game declares symmetry (the
    /// cross-check mode the symmetry tests use).
    #[must_use]
    pub fn without_symmetry(mut self) -> Self {
        self.use_symmetry = false;
        self
    }

    /// Toggles checkpoint/fork warm starts across the sweep's cells
    /// (`prft-lab … --warm-starts on|off`). Results are byte-identical
    /// either way; off trades the reuse for zero capture overhead.
    #[must_use]
    pub fn warm_starts(mut self, on: bool) -> Self {
        self.warm_starts = on;
        self
    }

    /// Sweeps `game`, simulating `seeds` runs per evaluated cell.
    ///
    /// # Panics
    /// Panics if a simulated game's spec does not measure utilities or
    /// names a committee seat outside the committee.
    pub fn explore(&self, game: &GameDef, seeds: u64) -> Exploration {
        self.explore_all(std::slice::from_ref(game), seeds)
            .pop()
            .expect("one exploration per game")
    }

    /// Sweeps several games as **one** batch: every cache-missing cell
    /// across all the games is collected into a single flattened
    /// `cells × seeds` work list and fanned through one [`par_map`], so a
    /// `run-all`-style batch of many small games saturates the pool the
    /// same way one big game does. Results come back in `games` order.
    ///
    /// Games sharing a cache scope (and therefore a `spec_of` and seat
    /// vector — the [`CacheKey`] enforces agreement) additionally share
    /// *work*: a cell two games both need is simulated once, counted as
    /// `evaluated` for the first game and `shared` for the rest, even
    /// with no on-disk cache attached. Per-run seeds depend only on
    /// `(spec base seed, seed index)`, so neither the batching nor the
    /// thread count can perturb any run: the per-game reports are
    /// byte-identical to sweeping each game alone.
    ///
    /// # Panics
    /// Panics if a simulated game's spec does not measure utilities or
    /// names a committee seat outside the committee.
    pub fn explore_all(&self, games: &[GameDef], seeds: u64) -> Vec<Exploration> {
        self.explore_all_with_stats(games, seeds).0
    }

    /// [`GameExplorer::explore_all`], also returning the checkpoint reuse
    /// accounting of the batch's warm-start store (all zeros when warm
    /// starts are off). The stats are batch-level, not per game: cells of
    /// different games sharing a timeline prefix fork from each other's
    /// checkpoints, so per-game attribution would be arbitrary.
    pub fn explore_all_with_stats(
        &self,
        games: &[GameDef],
        seeds: u64,
    ) -> (Vec<Exploration>, ReuseStats) {
        let sim_seeds = seeds.max(1);
        let store = self.warm_starts.then(CheckpointStore::default);

        // One cache load per scope, shared by every game using it.
        let mut known: BTreeMap<&str, BTreeMap<CacheKey, ProfileStats>> = BTreeMap::new();
        if let Some(cache) = &self.cache {
            for game in games {
                if matches!(game.eval, GameEval::Simulated { .. }) {
                    known
                        .entry(game.cache_scope)
                        .or_insert_with(|| cache.load(game.cache_scope));
                }
            }
        }

        /// Where one target cell's stats come from.
        enum Source {
            /// Served from the on-disk cache.
            Cached(ProfileStats),
            /// Simulated by this batch (index into the work list).
            Fresh(usize),
            /// Same work another game in this batch already claimed.
            Shared(usize),
        }
        struct Plan {
            space: ProfileSpace,
            expanded: usize,
            sources: Vec<(Profile, Source)>,
        }
        struct WorkCell {
            spec: ScenarioSpec,
            key: CacheKey,
            scope: &'static str,
            game: &'static str,
        }

        let mut work: Vec<WorkCell> = Vec::new();
        let mut index_of: BTreeMap<(&str, CacheKey), usize> = BTreeMap::new();
        let mut results: Vec<Option<Exploration>> = Vec::with_capacity(games.len());
        let mut plans: Vec<Option<Plan>> = Vec::with_capacity(games.len());

        for game in games {
            let space = game.space(self.use_symmetry);
            let targets = space.canonical_profiles();
            let expanded = space.len() - targets.len();
            match &game.eval {
                GameEval::Analytic(eval) => {
                    let mut cells = BTreeMap::new();
                    for profile in &targets {
                        let (utilities, sigma) = eval(profile);
                        assert_eq!(utilities.len(), game.players(), "one utility per player");
                        cells.insert(
                            profile.clone(),
                            ProfileStats {
                                ci95: vec![0.0; game.players()],
                                seeds: 1,
                                utilities,
                                sigma,
                            },
                        );
                    }
                    results.push(Some(Exploration {
                        table: UtilityTable::from_canonical(space, &cells),
                        seeds: 1,
                        evaluated: targets.len(),
                        cached: 0,
                        shared: 0,
                        expanded,
                    }));
                    plans.push(None);
                }
                GameEval::Simulated { players, spec_of } => {
                    let cached_cells = known.get(game.cache_scope);
                    let mut sources = Vec::with_capacity(targets.len());
                    for profile in &targets {
                        let spec = spec_of(profile);
                        assert!(
                            spec.utility.is_some(),
                            "game '{}' spec for {profile:?} must measure utilities",
                            game.name
                        );
                        let key = CacheKey {
                            fingerprint: spec.fingerprint(),
                            seeds: sim_seeds,
                            profile: profile.clone(),
                            seats: players.to_vec(),
                        };
                        let source = match cached_cells.and_then(|c| c.get(&key)) {
                            Some(stats) if stats.utilities.len() == game.players() => {
                                Source::Cached(stats.clone())
                            }
                            _ => match index_of.get(&(game.cache_scope, key.clone())) {
                                Some(&cell) => Source::Shared(cell),
                                None => {
                                    let cell = work.len();
                                    index_of.insert((game.cache_scope, key.clone()), cell);
                                    work.push(WorkCell {
                                        spec,
                                        key,
                                        scope: game.cache_scope,
                                        game: game.name,
                                    });
                                    Source::Fresh(cell)
                                }
                            },
                        };
                        sources.push((profile.clone(), source));
                    }
                    results.push(None);
                    plans.push(Some(Plan {
                        space,
                        expanded,
                        sources,
                    }));
                }
            }
        }

        // Flatten every missing cell of every game × seeds into one work
        // list so many small cells (and many small games) still saturate
        // the pool; per-run seeds depend only on (spec base seed, seed
        // index), so scheduling cannot perturb any run.
        // Advertise the batch's event boundaries as capture hints: a cell
        // whose own schedule ends early still captures at sibling fork
        // ticks whose prefix fingerprints match (suffix captures), so
        // late-diverging siblings resume past the divergence.
        if let Some(store) = &store {
            store.set_capture_hints_for(work.iter().map(|w| &w.spec));
        }
        let flat: Vec<(usize, u64)> = (0..work.len())
            .flat_map(|cell| (0..sim_seeds).map(move |i| (cell, i)))
            .collect();
        let records = par_map(self.runner.threads(), &flat, |_, &(cell, i)| {
            let spec = &work[cell].spec;
            run_one_with(spec, derive_seed(spec.base_seed, i), store.as_ref())
        });

        let mut computed: Vec<ProfileStats> = Vec::with_capacity(work.len());
        for (cell, chunk) in records.chunks(sim_seeds as usize).enumerate() {
            let WorkCell {
                spec, key, game, ..
            } = &work[cell];
            let report = BatchReport::from_records(spec.label.clone(), spec.n, chunk.to_vec());
            computed.push(ProfileStats {
                utilities: key
                    .seats
                    .iter()
                    .map(|&seat| {
                        report
                            .utilities
                            .get(seat)
                            .unwrap_or_else(|| {
                                panic!("game '{game}': no seat {seat} in n={}", spec.n)
                            })
                            .mean
                    })
                    .collect(),
                ci95: key
                    .seats
                    .iter()
                    .map(|&seat| report.utilities[seat].ci95)
                    .collect(),
                seeds: sim_seeds,
                sigma: report.modal_sigma(),
            });
        }

        // Persist every freshly computed cell, grouped per scope, in work
        // order (deterministic file contents whatever the thread count).
        if let Some(cache) = &self.cache {
            let mut by_scope: BTreeMap<&str, Vec<(CacheKey, ProfileStats)>> = BTreeMap::new();
            for (cell, w) in work.iter().enumerate() {
                by_scope
                    .entry(w.scope)
                    .or_default()
                    .push((w.key.clone(), computed[cell].clone()));
            }
            for (scope, entries) in by_scope {
                if let Err(e) = cache.append(scope, &entries) {
                    eprintln!("warning: utility cache write failed: {e}");
                }
            }
        }

        for (slot, plan) in results.iter_mut().zip(plans) {
            let Some(plan) = plan else { continue };
            let mut cells = BTreeMap::new();
            let (mut evaluated, mut cached, mut shared) = (0, 0, 0);
            for (profile, source) in plan.sources {
                let stats = match source {
                    Source::Cached(stats) => {
                        cached += 1;
                        stats
                    }
                    Source::Fresh(cell) => {
                        evaluated += 1;
                        computed[cell].clone()
                    }
                    Source::Shared(cell) => {
                        shared += 1;
                        computed[cell].clone()
                    }
                };
                cells.insert(profile, stats);
            }
            *slot = Some(Exploration {
                table: UtilityTable::from_canonical(plan.space, &cells),
                seeds: sim_seeds,
                evaluated,
                cached,
                shared,
                expanded: plan.expanded,
            });
        }
        let stats = store.map(|s| s.stats()).unwrap_or_default();
        (
            results
                .into_iter()
                .map(|r| r.expect("every game explored"))
                .collect(),
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Role, UtilitySpec};
    use prft_game::Theta;

    fn tiny_game() -> GameDef {
        // Seats 4 and 5 of n = 6 choose {π_0, π_abs}; utilities depend only
        // on how many abstain, so the seats are genuinely symmetric.
        GameDef {
            name: "tiny-abstain",
            cache_scope: "tiny-abstain",
            description: "test game",
            strategies: vec![vec!["π_0", "π_abs"]; 2],
            symmetry: vec![vec![0, 1]],
            honest: vec![0, 0],
            eval: GameEval::Simulated {
                players: vec![4, 5],
                spec_of: |profile| {
                    let mut spec = ScenarioSpec::new(format!("{profile:?}"), 6, 2)
                        .base_seed(0x7e57)
                        .utility(UtilitySpec::standard(Theta::LivenessAttacking, 2))
                        .horizon(150_000);
                    for (i, &s) in profile.iter().enumerate() {
                        if s == 1 {
                            spec = spec.role(4 + i, Role::Abstain);
                        }
                    }
                    spec
                },
            },
        }
    }

    #[test]
    fn simulated_sweep_fills_the_table() {
        let out = GameExplorer::new(BatchRunner::new(2)).explore(&tiny_game(), 2);
        assert!(out.table.is_complete());
        assert_eq!(out.evaluated, 3, "C(3, 2) canonical profiles");
        assert_eq!(out.expanded, 1, "(1,0) is the mirror of (0,1)");
        assert_eq!(out.cached, 0);
        // Two abstainers of six jam the quorum: θ=3 profits.
        let jam = out.table.utilities(&vec![1, 1]);
        assert!(jam[0] > 0.0 && jam[1] > 0.0);
        assert_eq!(out.table.utilities(&vec![0, 0]), &[0.0, 0.0]);
    }

    #[test]
    fn analytic_games_skip_simulation() {
        let game = GameDef {
            name: "matching-pennies",
            cache_scope: "matching-pennies",
            description: "test game",
            strategies: vec![vec!["H", "T"]; 2],
            symmetry: vec![],
            honest: vec![0, 0],
            eval: GameEval::Analytic(|p| {
                let win = if p[0] == p[1] { 1.0 } else { -1.0 };
                (vec![win, -win], SystemState::HonestExecution)
            }),
        };
        let out = GameExplorer::new(BatchRunner::new(1)).explore(&game, 99);
        assert_eq!(out.evaluated, 4);
        assert!(out.table.nash_equilibria(0.0).is_empty(), "no pure NE");
    }
}
