//! Report emission: JSON documents, CSV tables, and terminal summaries
//! over one scenario's batch reports.

use crate::json::Json;
use crate::record::BatchReport;
use prft_game::SystemState;
use prft_metrics::AsciiTable;

/// The JSON document for one scenario run (`prft-lab run <name>`).
///
/// Aggregates are computed in seed-index order, so this document is
/// byte-identical whatever `--threads` was.
pub fn scenario_json(
    scenario: &str,
    seeds: u64,
    reports: &[BatchReport],
    include_runs: bool,
) -> String {
    let batches: Vec<Json> = reports
        .iter()
        .map(|r| {
            let mut json = r.to_json();
            if !include_runs {
                if let Json::Obj(pairs) = &mut json {
                    pairs.retain(|(k, _)| k != "runs");
                }
            }
            json
        })
        .collect();
    Json::obj([
        ("scenario", Json::str(scenario)),
        ("seeds", Json::u64(seeds)),
        ("batches", Json::Arr(batches)),
    ])
    .render_pretty()
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline
/// (grid labels like "abs=2,fork=2" would otherwise shift columns).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV with one row per grid point (aggregate means plus rates).
pub fn scenario_csv(scenario: &str, reports: &[BatchReport]) -> String {
    let mut out = String::from(
        "scenario,label,n,seeds,agreement_rate,sigma_modal,sigma_np,sigma_cp,sigma_fork,sigma_0,\
         min_final_height_mean,min_final_height_ci95,throughput_mean,view_changes_mean,\
         exposes_mean,burned_mean,messages_mean,bytes_mean\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_field(scenario),
            csv_field(&r.label),
            r.n,
            r.seeds,
            r.agreement_rate,
            r.modal_sigma().symbol(),
            r.sigma_hist[0],
            r.sigma_hist[1],
            r.sigma_hist[2],
            r.sigma_hist[3],
            r.min_final_height.mean,
            r.min_final_height.ci95,
            r.throughput.mean,
            r.view_changes.mean,
            r.exposes.mean,
            r.burned_players.mean,
            r.total_messages.mean,
            r.total_bytes.mean,
        ));
    }
    out
}

/// Human-readable table for the terminal.
pub fn scenario_table(scenario: &str, seeds: u64, reports: &[BatchReport]) -> String {
    let mut table = AsciiTable::new(vec![
        "label",
        "agree",
        "σ (modal)",
        "blocks (mean±ci95)",
        "throughput",
        "VCs",
        "burned",
        "msgs/run",
    ])
    .with_title(&format!("{scenario} — {seeds} seeded runs per grid point"));
    for r in reports {
        let hist = SystemState::ALL
            .iter()
            .zip(r.sigma_hist.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| format!("{}:{c}", s.symbol()))
            .collect::<Vec<_>>()
            .join(" ");
        table.row(vec![
            r.label.clone(),
            format!("{:.0}%", r.agreement_rate * 100.0),
            hist,
            format!(
                "{:.2}±{:.2}",
                r.min_final_height.mean, r.min_final_height.ci95
            ),
            format!("{:.2}", r.throughput.mean),
            format!("{:.1}", r.view_changes.mean),
            format!("{:.1}", r.burned_players.mean),
            format!("{:.0}", r.total_messages.mean),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunRecord;
    use prft_sim::RunOutcome;

    fn report() -> BatchReport {
        BatchReport::from_records(
            "k=1".into(),
            4,
            vec![RunRecord {
                seed: 9,
                outcome: RunOutcome::Quiescent,
                min_final_height: 3,
                max_final_height: 3,
                agreement: true,
                strict_ordering: true,
                burned: vec![2],
                view_changes: 1,
                exposes: 1,
                rounds_entered: 4,
                vc_consistent: true,
                txs_included: vec![true],
                watched_finalized: vec![],
                sigma: SystemState::HonestExecution,
                throughput: 1.0,
                total_messages: 100,
                total_bytes: 5_000,
                utilities: vec![0.0, -10.0],
            }],
        )
    }

    #[test]
    fn json_modes_differ_only_in_runs() {
        let r = [report()];
        let with = scenario_json("s", 1, &r, true);
        let without = scenario_json("s", 1, &r, false);
        assert!(with.contains("\"runs\""));
        assert!(!without.contains("\"runs\""));
        assert!(without.contains("\"agreement_rate\": 1"));
    }

    #[test]
    fn csv_has_header_and_row() {
        let csv = scenario_csv("s", &[report()]);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scenario,label"));
        assert!(lines[1].starts_with("s,k=1,4,1,1,"));
    }

    #[test]
    fn csv_quotes_labels_with_commas() {
        let mut r = report();
        r.label = "abs=2,fork=2".into();
        let csv = scenario_csv("s", &[r]);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("s,\"abs=2,fork=2\",4,"));
        // Column count must match the header whatever the label contains.
        let header_cols = csv.lines().next().unwrap().split(',').count();
        let quoted_extra = 1; // the one comma inside the quoted label
        assert_eq!(row.split(',').count(), header_cols + quoted_extra);
    }

    #[test]
    fn table_renders() {
        let t = scenario_table("s", 1, &[report()]);
        assert!(t.contains("k=1"));
        assert!(t.contains("100%"));
    }
}
