//! Report emission: JSON documents, CSV tables, and terminal summaries
//! over one scenario's batch reports, plus the equilibrium reports of
//! `prft-lab explore` (schemas documented in `docs/REPORT_SCHEMA.md`).

use crate::explore::{Exploration, GameDef};
use crate::json::Json;
use crate::record::BatchReport;
use prft_game::{Confidence, SystemState};
use prft_metrics::AsciiTable;

/// The JSON document for one scenario run (`prft-lab run <name>`).
///
/// Aggregates are computed in seed-index order, so this document is
/// byte-identical whatever `--threads` was.
pub fn scenario_json(
    scenario: &str,
    seeds: u64,
    reports: &[BatchReport],
    include_runs: bool,
) -> String {
    let batches: Vec<Json> = reports
        .iter()
        .map(|r| {
            let mut json = r.to_json();
            if !include_runs {
                if let Json::Obj(pairs) = &mut json {
                    pairs.retain(|(k, _)| k != "runs");
                }
            }
            json
        })
        .collect();
    Json::obj([
        ("scenario", Json::str(scenario)),
        ("seeds", Json::u64(seeds)),
        ("batches", Json::Arr(batches)),
    ])
    .render_pretty()
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline
/// (grid labels like "abs=2,fork=2" would otherwise shift columns).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV with one row per grid point (aggregate means plus rates).
pub fn scenario_csv(scenario: &str, reports: &[BatchReport]) -> String {
    let mut out = String::from(
        "scenario,label,n,seeds,agreement_rate,sigma_modal,sigma_np,sigma_cp,sigma_fork,sigma_0,\
         min_final_height_mean,min_final_height_ci95,throughput_mean,view_changes_mean,\
         exposes_mean,burned_mean,messages_mean,bytes_mean\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_field(scenario),
            csv_field(&r.label),
            r.n,
            r.seeds,
            r.agreement_rate,
            r.modal_sigma().symbol(),
            r.sigma_hist[0],
            r.sigma_hist[1],
            r.sigma_hist[2],
            r.sigma_hist[3],
            r.min_final_height.mean,
            r.min_final_height.ci95,
            r.throughput.mean,
            r.view_changes.mean,
            r.exposes.mean,
            r.burned_players.mean,
            r.total_messages.mean,
            r.total_bytes.mean,
        ));
    }
    out
}

/// Human-readable table for the terminal.
pub fn scenario_table(scenario: &str, seeds: u64, reports: &[BatchReport]) -> String {
    let mut table = AsciiTable::new(vec![
        "label",
        "agree",
        "σ (modal)",
        "blocks (mean±ci95)",
        "throughput",
        "VCs",
        "burned",
        "msgs/run",
    ])
    .with_title(&format!("{scenario} — {seeds} seeded runs per grid point"));
    for r in reports {
        let hist = SystemState::ALL
            .iter()
            .zip(r.sigma_hist.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| format!("{}:{c}", s.symbol()))
            .collect::<Vec<_>>()
            .join(" ");
        table.row(vec![
            r.label.clone(),
            format!("{:.0}%", r.agreement_rate * 100.0),
            hist,
            format!(
                "{:.2}±{:.2}",
                r.min_final_height.mean, r.min_final_height.ci95
            ),
            format!("{:.2}", r.throughput.mean),
            format!("{:.1}", r.view_changes.mean),
            format!("{:.1}", r.burned_players.mean),
            format!("{:.0}", r.total_messages.mean),
        ]);
    }
    table.render()
}

fn confidence_str(c: Confidence) -> &'static str {
    match c {
        Confidence::Certified => "certified",
        Confidence::Tentative => "tentative",
    }
}

fn f64_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

fn profile_arr(profile: &[usize]) -> Json {
    Json::Arr(profile.iter().map(|&s| Json::u64(s as u64)).collect())
}

/// The equilibrium-report JSON for one explored game (`prft-lab explore
/// run <name> --format json`).
///
/// Everything in the document is a pure function of `(game, seeds, eps)` —
/// cache state and thread count never appear, so cached and uncached
/// sweeps at any `--threads` emit byte-identical reports.
pub fn explore_json(game: &GameDef, exploration: &Exploration, eps: f64) -> String {
    let table = &exploration.table;
    let cells: Vec<Json> = table
        .cells()
        .map(|(profile, stats)| {
            Json::obj([
                ("profile", profile_arr(profile)),
                ("label", Json::str(game.profile_label(profile))),
                ("sigma", Json::str(stats.sigma.symbol())),
                ("utilities", f64_arr(&stats.utilities)),
                ("ci95", f64_arr(&stats.ci95)),
                ("seeds", Json::u64(stats.seeds)),
            ])
        })
        .collect();
    let nash: Vec<Json> = table
        .nash_equilibria(eps)
        .into_iter()
        .map(|profile| {
            let cert = table.certify_nash(&profile, eps);
            Json::obj([
                ("profile", profile_arr(&profile)),
                ("label", Json::str(game.profile_label(&profile))),
                ("confidence", Json::str(confidence_str(cert.confidence))),
                ("worst_gain", Json::Num(cert.worst_gain)),
            ])
        })
        .collect();
    let mut dominant = Vec::new();
    for player in 0..game.players() {
        for s in 0..game.strategies[player].len() {
            let cert = table.certify_dominant(player, s, eps);
            dominant.push(Json::obj([
                ("player", Json::u64(player as u64)),
                ("strategy", Json::u64(s as u64)),
                ("label", Json::str(game.label(player, s))),
                ("dominant", Json::Bool(cert.holds)),
                ("confidence", Json::str(confidence_str(cert.confidence))),
                ("worst_gain", Json::Num(cert.worst_gain)),
            ]));
        }
    }
    let dsic_certs: Vec<_> = (0..game.players())
        .map(|p| table.certify_dominant(p, game.honest[p], eps))
        .collect();
    let dsic = Json::obj([
        ("profile", profile_arr(&game.honest)),
        ("label", Json::str(game.profile_label(&game.honest))),
        ("holds", Json::Bool(dsic_certs.iter().all(|c| c.holds))),
        (
            "confidence",
            Json::str(
                if dsic_certs
                    .iter()
                    .all(|c| c.confidence == Confidence::Certified)
                {
                    "certified"
                } else {
                    "tentative"
                },
            ),
        ),
    ]);
    let regret = Json::Arr(
        table
            .regret_matrix()
            .iter()
            .map(|row| f64_arr(row))
            .collect(),
    );
    Json::obj([
        ("game", Json::str(game.name)),
        ("seeds", Json::u64(exploration.seeds)),
        ("eps", Json::Num(eps)),
        ("players", Json::u64(game.players() as u64)),
        (
            "strategies",
            Json::Arr(
                game.strategies
                    .iter()
                    .map(|s| Json::Arr(s.iter().map(|&l| Json::str(l)).collect()))
                    .collect(),
            ),
        ),
        (
            "symmetry",
            Json::Arr(
                game.symmetry
                    .iter()
                    .map(|g| Json::Arr(g.iter().map(|&p| Json::u64(p as u64)).collect()))
                    .collect(),
            ),
        ),
        ("cells", Json::Arr(cells)),
        ("nash", Json::Arr(nash)),
        ("dominant", Json::Arr(dominant)),
        ("dsic", dsic),
        ("regret", regret),
    ])
    .render_pretty()
}

/// CSV over the explored cells: one row per profile, per-player utility
/// and CI columns.
pub fn explore_csv(game: &GameDef, exploration: &Exploration) -> String {
    let mut out = String::from("game,profile,label,sigma,seeds");
    for p in 0..game.players() {
        out.push_str(&format!(",u{p},ci{p}"));
    }
    out.push('\n');
    for (profile, stats) in exploration.table.cells() {
        let profile_str = profile
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("-");
        out.push_str(&format!(
            "{},{},{},{},{}",
            csv_field(game.name),
            profile_str,
            csv_field(&game.profile_label(profile)),
            stats.sigma.symbol(),
            stats.seeds,
        ));
        for p in 0..game.players() {
            out.push_str(&format!(",{},{}", stats.utilities[p], stats.ci95[p]));
        }
        out.push('\n');
    }
    out
}

/// Human-readable equilibrium report for the terminal.
pub fn explore_table(game: &GameDef, exploration: &Exploration, eps: f64) -> String {
    let table = &exploration.table;
    let mut out = String::new();

    let mut headers = vec!["profile".to_string(), "σ".to_string()];
    for p in 0..game.players() {
        headers.push(format!("U(P{p})"));
    }
    let mut cells =
        AsciiTable::new(headers.iter().map(String::as_str).collect()).with_title(&format!(
            "{} — {} profiles × {} seeds",
            game.name,
            table.space().len(),
            exploration.seeds
        ));
    for (profile, stats) in table.cells() {
        let mut row = vec![game.profile_label(profile), stats.sigma.symbol().into()];
        for p in 0..game.players() {
            row.push(if stats.ci95[p] > 0.0 {
                format!("{:.3}±{:.3}", stats.utilities[p], stats.ci95[p])
            } else {
                format!("{:.3}", stats.utilities[p])
            });
        }
        cells.row(row);
    }
    out.push_str(&cells.render());
    out.push('\n');

    let ne = table.nash_equilibria(eps);
    out.push_str(&format!("\nPure Nash equilibria (ε = {eps}):\n"));
    if ne.is_empty() {
        out.push_str("  (none)\n");
    }
    for profile in &ne {
        let cert = table.certify_nash(profile, eps);
        out.push_str(&format!(
            "  {}  [{}; worst deviation gain {:.3}]\n",
            game.profile_label(profile),
            confidence_str(cert.confidence),
            cert.worst_gain,
        ));
    }

    let mut dom = AsciiTable::new(vec![
        "player",
        "strategy",
        "dominant",
        "confidence",
        "max regret",
    ])
    .with_title("Dominance and regret (per player × strategy)");
    for (player, regrets) in table.regret_matrix().iter().enumerate() {
        for (s, &regret) in regrets.iter().enumerate() {
            let cert = table.certify_dominant(player, s, eps);
            dom.row(vec![
                format!("P{player}"),
                game.label(player, s).to_string(),
                if cert.holds { "✓" } else { "✗" }.to_string(),
                confidence_str(cert.confidence).to_string(),
                format!("{regret:.3}"),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&dom.render());
    out.push('\n');

    let dsic_holds = (0..game.players()).all(|p| table.is_dominant(p, game.honest[p], eps));
    out.push_str(&format!(
        "\nDSIC at {}: {}\n",
        game.profile_label(&game.honest),
        if dsic_holds {
            "✓ (every component is weakly dominant)"
        } else {
            "✗"
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunRecord;
    use prft_sim::RunOutcome;

    fn report() -> BatchReport {
        BatchReport::from_records(
            "k=1".into(),
            4,
            vec![RunRecord {
                seed: 9,
                outcome: RunOutcome::Quiescent,
                min_final_height: 3,
                max_final_height: 3,
                agreement: true,
                strict_ordering: true,
                burned: vec![2],
                view_changes: 1,
                exposes: 1,
                rounds_entered: 4,
                vc_consistent: true,
                txs_included: vec![true],
                watched_finalized: vec![],
                sigma: SystemState::HonestExecution,
                throughput: 1.0,
                total_messages: 100,
                total_bytes: 5_000,
                utilities: vec![0.0, -10.0],
            }],
        )
    }

    #[test]
    fn json_modes_differ_only_in_runs() {
        let r = [report()];
        let with = scenario_json("s", 1, &r, true);
        let without = scenario_json("s", 1, &r, false);
        assert!(with.contains("\"runs\""));
        assert!(!without.contains("\"runs\""));
        assert!(without.contains("\"agreement_rate\": 1"));
    }

    #[test]
    fn csv_has_header_and_row() {
        let csv = scenario_csv("s", &[report()]);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scenario,label"));
        assert!(lines[1].starts_with("s,k=1,4,1,1,"));
    }

    #[test]
    fn csv_quotes_labels_with_commas() {
        let mut r = report();
        r.label = "abs=2,fork=2".into();
        let csv = scenario_csv("s", &[r]);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("s,\"abs=2,fork=2\",4,"));
        // Column count must match the header whatever the label contains.
        let header_cols = csv.lines().next().unwrap().split(',').count();
        let quoted_extra = 1; // the one comma inside the quoted label
        assert_eq!(row.split(',').count(), header_cols + quoted_extra);
    }

    #[test]
    fn table_renders() {
        let t = scenario_table("s", 1, &[report()]);
        assert!(t.contains("k=1"));
        assert!(t.contains("100%"));
    }

    #[test]
    fn explore_reports_render_the_trap_game() {
        use crate::games::find_game;
        use crate::runner::BatchRunner;
        let game = find_game("trap-k3").unwrap();
        let out = crate::explore::GameExplorer::new(BatchRunner::new(1)).explore(&game, 1);
        let json = explore_json(&game, &out, 1e-9);
        assert!(json.contains("\"game\": \"trap-k3\""));
        assert!(json.contains("\"nash\""));
        // Theorem 3: both all-fork and all-bait are equilibria.
        assert!(json.contains("(π_fork, π_fork, π_fork)"));
        assert!(json.contains("(π_bait, π_bait, π_bait)"));
        let csv = explore_csv(&game, &out);
        assert_eq!(csv.lines().count(), 1 + 8, "header + 2^3 profiles");
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("u0,ci0,u1,ci1,u2,ci2"));
        let table = explore_table(&game, &out, 1e-9);
        assert!(table.contains("Pure Nash equilibria"));
        assert!(table.contains("DSIC"));
    }
}
