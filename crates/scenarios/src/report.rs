//! Report emission: JSON documents, CSV tables, and terminal summaries
//! over one scenario's batch reports, plus the equilibrium reports of
//! `prft-lab explore` (schemas documented in `docs/REPORT_SCHEMA.md`).

use crate::checkpoint::ReuseStats;
use crate::explore::{Exploration, GameDef};
use crate::json::Json;
use crate::record::BatchReport;
use prft_game::{
    best_reply_path, best_reply_summary, mixed_analysis, mixture_label, Confidence,
    DynamicsOutcome, MixedAnalysis, SystemState, UtilityTable,
};
use prft_metrics::AsciiTable;

/// Which optional analyses an equilibrium report includes — the
/// `--mixed` / `--dynamics` flags of `prft-lab explore`. Both analyses
/// are pure functions of the finished utility table, so enabling them
/// never perturbs the base report and stays byte-identical at any thread
/// count or cache state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreOpts {
    /// Append the mixed-strategy equilibrium analysis.
    pub mixed: bool,
    /// Append the best-reply dynamics analysis.
    pub dynamics: bool,
}

/// The JSON document for one scenario run (`prft-lab run <name>`).
///
/// Aggregates are computed in seed-index order, so this document is
/// byte-identical whatever `--threads` was.
pub fn scenario_json(
    scenario: &str,
    seeds: u64,
    reports: &[BatchReport],
    include_runs: bool,
) -> String {
    let batches: Vec<Json> = reports
        .iter()
        .map(|r| {
            let mut json = r.to_json();
            if !include_runs {
                if let Json::Obj(pairs) = &mut json {
                    pairs.retain(|(k, _)| k != "runs");
                }
            }
            json
        })
        .collect();
    Json::obj([
        ("scenario", Json::str(scenario)),
        ("seeds", Json::u64(seeds)),
        ("batches", Json::Arr(batches)),
    ])
    .render_pretty()
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline
/// (grid labels like "abs=2,fork=2" would otherwise shift columns).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV with one row per grid point (aggregate means plus rates). The
/// workload columns read all-zero for batches without a workload section.
pub fn scenario_csv(scenario: &str, reports: &[BatchReport]) -> String {
    let mut out = String::from(
        "scenario,label,n,seeds,agreement_rate,sigma_modal,sigma_np,sigma_cp,sigma_fork,sigma_0,\
         min_final_height_mean,min_final_height_ci95,throughput_mean,view_changes_mean,\
         exposes_mean,burned_mean,messages_mean,bytes_mean,events_dispatched_mean,\
         peak_queue_depth_max,in_flight_max,sig_verifies_total,\
         wl_clients,wl_submitted_mean,wl_committed_mean,wl_dropped_mean,wl_pending_mean,\
         wl_retries_mean,wl_backpressure_mean,wl_latency_p50_mean,wl_latency_p90_mean,\
         wl_latency_p99_mean,wl_mempool_peak_max\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(scenario),
            csv_field(&r.label),
            r.n,
            r.seeds,
            r.agreement_rate,
            r.modal_sigma().symbol(),
            r.sigma_hist[0],
            r.sigma_hist[1],
            r.sigma_hist[2],
            r.sigma_hist[3],
            r.min_final_height.mean,
            r.min_final_height.ci95,
            r.throughput.mean,
            r.view_changes.mean,
            r.exposes.mean,
            r.burned_players.mean,
            r.total_messages.mean,
            r.total_bytes.mean,
            r.events_dispatched.mean,
            r.peak_queue_depth.max,
            r.in_flight_messages.max,
            r.observability.counter("crypto.sig_verifies"),
        ));
        match &r.workload {
            Some(w) => out.push_str(&format!(
                ",{},{},{},{},{},{},{},{},{},{},{}\n",
                w.clients,
                w.submitted.mean,
                w.committed.mean,
                w.dropped.mean,
                w.pending.mean,
                w.retries.mean,
                w.backpressure_rejects.mean,
                w.latency_p50.mean,
                w.latency_p90.mean,
                w.latency_p99.mean,
                w.mempool_peak_occupancy.max,
            )),
            None => out.push_str(",0,0,0,0,0,0,0,0,0,0,0\n"),
        }
    }
    out
}

/// Human-readable table for the terminal.
pub fn scenario_table(scenario: &str, seeds: u64, reports: &[BatchReport]) -> String {
    let mut table = AsciiTable::new(vec![
        "label",
        "agree",
        "σ (modal)",
        "blocks (mean±ci95)",
        "throughput",
        "VCs",
        "burned",
        "msgs/run",
    ])
    .with_title(&format!("{scenario} — {seeds} seeded runs per grid point"));
    for r in reports {
        let hist = SystemState::ALL
            .iter()
            .zip(r.sigma_hist.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| format!("{}:{c}", s.symbol()))
            .collect::<Vec<_>>()
            .join(" ");
        table.row(vec![
            r.label.clone(),
            format!("{:.0}%", r.agreement_rate * 100.0),
            hist,
            format!(
                "{:.2}±{:.2}",
                r.min_final_height.mean, r.min_final_height.ci95
            ),
            format!("{:.2}", r.throughput.mean),
            format!("{:.1}", r.view_changes.mean),
            format!("{:.1}", r.burned_players.mean),
            format!("{:.0}", r.total_messages.mean),
        ]);
    }
    table.render()
}

fn confidence_str(c: Confidence) -> &'static str {
    match c {
        Confidence::Certified => "certified",
        Confidence::Tentative => "tentative",
    }
}

fn f64_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

fn profile_arr(profile: &[usize]) -> Json {
    Json::Arr(profile.iter().map(|&s| Json::u64(s as u64)).collect())
}

/// The rendered label of a mixed profile, using the game's strategy
/// names: `(0.539·π_fork + 0.461·π_bait, …)`.
fn mixed_label(game: &GameDef, distributions: &[Vec<f64>]) -> String {
    mixture_label(distributions, |p, s| game.label(p, s).to_string())
}

fn outcome_str(outcome: DynamicsOutcome) -> &'static str {
    match outcome {
        DynamicsOutcome::Converged => "converged",
        DynamicsOutcome::Cycled => "cycled",
    }
}

/// The `mixed` JSON section: solver method plus verified strictly mixed
/// equilibria (pure equilibria stay in `nash`).
fn mixed_json(game: &GameDef, analysis: &MixedAnalysis) -> Json {
    Json::obj([
        ("method", Json::str(analysis.method)),
        (
            "equilibria",
            Json::Arr(
                analysis
                    .equilibria
                    .iter()
                    .map(|eq| {
                        Json::obj([
                            (
                                "distributions",
                                Json::Arr(eq.distributions.iter().map(|d| f64_arr(d)).collect()),
                            ),
                            ("label", Json::str(mixed_label(game, &eq.distributions))),
                            ("expected", f64_arr(&eq.expected)),
                            ("regret", Json::Num(eq.regret)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `dynamics` JSON section: the deterministic best-reply path from
/// the game's honest profile plus the whole-space attractor summary.
fn dynamics_json(game: &GameDef, table: &UtilityTable, eps: f64) -> Json {
    let from_honest = best_reply_path(table, game.honest.clone(), eps);
    let summary = best_reply_summary(table, eps);
    Json::obj([
        (
            "from_honest",
            Json::obj([
                (
                    "path",
                    Json::Arr(from_honest.path.iter().map(|p| profile_arr(p)).collect()),
                ),
                (
                    "labels",
                    Json::Arr(
                        from_honest
                            .path
                            .iter()
                            .map(|p| Json::str(game.profile_label(p)))
                            .collect(),
                    ),
                ),
                ("outcome", Json::str(outcome_str(from_honest.outcome))),
                ("steps", Json::u64(from_honest.steps() as u64)),
                (
                    "cycle_start",
                    match from_honest.cycle_start {
                        Some(i) => Json::u64(i as u64),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
        (
            "attractors",
            Json::Arr(
                summary
                    .attractors
                    .iter()
                    .map(|(profile, basin)| {
                        Json::obj([
                            ("profile", profile_arr(profile)),
                            ("label", Json::str(game.profile_label(profile))),
                            ("basin", Json::u64(*basin as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("cycling_starts", Json::u64(summary.cycling_starts as u64)),
        ("longest_path", Json::u64(summary.longest_path as u64)),
    ])
}

/// The equilibrium-report JSON for one explored game (`prft-lab explore
/// run <name> --format json`), without the optional analyses.
pub fn explore_json(game: &GameDef, exploration: &Exploration, eps: f64) -> String {
    explore_json_with(game, exploration, eps, ExploreOpts::default())
}

/// The equilibrium-report JSON for one explored game, with the optional
/// `mixed` / `dynamics` sections selected by `opts`.
///
/// Everything in the document is a pure function of `(game, seeds, eps,
/// opts)` — cache state and thread count never appear, so cached and
/// uncached sweeps at any `--threads` emit byte-identical reports.
pub fn explore_json_with(
    game: &GameDef,
    exploration: &Exploration,
    eps: f64,
    opts: ExploreOpts,
) -> String {
    let table = &exploration.table;
    let cells: Vec<Json> = table
        .cells()
        .map(|(profile, stats)| {
            Json::obj([
                ("profile", profile_arr(profile)),
                ("label", Json::str(game.profile_label(profile))),
                ("sigma", Json::str(stats.sigma.symbol())),
                ("utilities", f64_arr(&stats.utilities)),
                ("ci95", f64_arr(&stats.ci95)),
                ("seeds", Json::u64(stats.seeds)),
            ])
        })
        .collect();
    let nash: Vec<Json> = table
        .nash_equilibria(eps)
        .into_iter()
        .map(|profile| {
            let cert = table.certify_nash(&profile, eps);
            Json::obj([
                ("profile", profile_arr(&profile)),
                ("label", Json::str(game.profile_label(&profile))),
                ("confidence", Json::str(confidence_str(cert.confidence))),
                ("worst_gain", Json::Num(cert.worst_gain)),
            ])
        })
        .collect();
    let mut dominant = Vec::new();
    for player in 0..game.players() {
        for s in 0..game.strategies[player].len() {
            let cert = table.certify_dominant(player, s, eps);
            dominant.push(Json::obj([
                ("player", Json::u64(player as u64)),
                ("strategy", Json::u64(s as u64)),
                ("label", Json::str(game.label(player, s))),
                ("dominant", Json::Bool(cert.holds)),
                ("confidence", Json::str(confidence_str(cert.confidence))),
                ("worst_gain", Json::Num(cert.worst_gain)),
            ]));
        }
    }
    let dsic_certs: Vec<_> = (0..game.players())
        .map(|p| table.certify_dominant(p, game.honest[p], eps))
        .collect();
    let dsic = Json::obj([
        ("profile", profile_arr(&game.honest)),
        ("label", Json::str(game.profile_label(&game.honest))),
        ("holds", Json::Bool(dsic_certs.iter().all(|c| c.holds))),
        (
            "confidence",
            Json::str(
                if dsic_certs
                    .iter()
                    .all(|c| c.confidence == Confidence::Certified)
                {
                    "certified"
                } else {
                    "tentative"
                },
            ),
        ),
    ]);
    let regret = Json::Arr(
        table
            .regret_matrix()
            .iter()
            .map(|row| f64_arr(row))
            .collect(),
    );
    let mut doc: Vec<(&str, Json)> = vec![
        ("game", Json::str(game.name)),
        ("seeds", Json::u64(exploration.seeds)),
        ("eps", Json::Num(eps)),
        ("players", Json::u64(game.players() as u64)),
        (
            "strategies",
            Json::Arr(
                game.strategies
                    .iter()
                    .map(|s| Json::Arr(s.iter().map(|&l| Json::str(l)).collect()))
                    .collect(),
            ),
        ),
        (
            "symmetry",
            Json::Arr(
                game.symmetry
                    .iter()
                    .map(|g| Json::Arr(g.iter().map(|&p| Json::u64(p as u64)).collect()))
                    .collect(),
            ),
        ),
        ("cells", Json::Arr(cells)),
        ("nash", Json::Arr(nash)),
        ("dominant", Json::Arr(dominant)),
        ("dsic", dsic),
        ("regret", regret),
    ];
    if opts.mixed {
        doc.push(("mixed", mixed_json(game, &mixed_analysis(table, eps))));
    }
    if opts.dynamics {
        doc.push(("dynamics", dynamics_json(game, table, eps)));
    }
    Json::obj(doc).render_pretty()
}

/// CSV over the explored cells: one row per profile, per-player utility
/// and CI columns.
pub fn explore_csv(game: &GameDef, exploration: &Exploration) -> String {
    explore_csv_with(game, exploration, 1e-9, ExploreOpts::default())
}

/// [`explore_csv`] plus the optional analyses: each enabled analysis
/// appends, after a blank line, its own header + rows (a multi-table CSV
/// file; `docs/REPORT_SCHEMA.md` documents the blocks).
pub fn explore_csv_with(
    game: &GameDef,
    exploration: &Exploration,
    eps: f64,
    opts: ExploreOpts,
) -> String {
    let mut out = cells_csv(game, exploration);
    if opts.mixed {
        let analysis = mixed_analysis(&exploration.table, eps);
        out.push('\n');
        out.push_str("game,method,label,regret");
        for p in 0..game.players() {
            out.push_str(&format!(",eu{p}"));
        }
        out.push('\n');
        for eq in &analysis.equilibria {
            out.push_str(&format!(
                "{},{},{},{}",
                csv_field(game.name),
                analysis.method,
                csv_field(&mixed_label(game, &eq.distributions)),
                eq.regret,
            ));
            for p in 0..game.players() {
                out.push_str(&format!(",{}", eq.expected[p]));
            }
            out.push('\n');
        }
    }
    if opts.dynamics {
        let summary = best_reply_summary(&exploration.table, eps);
        out.push('\n');
        out.push_str("game,attractor,label,basin\n");
        for (profile, basin) in &summary.attractors {
            let profile_str = profile
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("-");
            out.push_str(&format!(
                "{},{},{},{}\n",
                csv_field(game.name),
                profile_str,
                csv_field(&game.profile_label(profile)),
                basin,
            ));
        }
        out.push_str(&format!(
            "{},cycling,—,{}\n",
            csv_field(game.name),
            summary.cycling_starts,
        ));
    }
    out
}

/// The base cell block of the equilibrium CSV.
fn cells_csv(game: &GameDef, exploration: &Exploration) -> String {
    let mut out = String::from("game,profile,label,sigma,seeds");
    for p in 0..game.players() {
        out.push_str(&format!(",u{p},ci{p}"));
    }
    out.push('\n');
    for (profile, stats) in exploration.table.cells() {
        let profile_str = profile
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("-");
        out.push_str(&format!(
            "{},{},{},{},{}",
            csv_field(game.name),
            profile_str,
            csv_field(&game.profile_label(profile)),
            stats.sigma.symbol(),
            stats.seeds,
        ));
        for p in 0..game.players() {
            out.push_str(&format!(",{},{}", stats.utilities[p], stats.ci95[p]));
        }
        out.push('\n');
    }
    out
}

/// The `--explain-reuse` accounting table: per-game cell reuse plus the
/// batch-level checkpoint warm-start stats (`prft-lab explore run[-all]
/// --explain-reuse`).
///
/// The per-game columns are scheduling-independent (each cell's source is
/// decided by the batch *plan*, before any work runs). The checkpoint
/// line is batch-level — cells of different games fork from each other's
/// checkpoints, so per-game attribution would be arbitrary — and its
/// counts are deterministic at `--threads 1` (the golden test pins that).
pub fn explain_reuse_table(rows: &[(&str, &Exploration)], stats: ReuseStats) -> String {
    let mut table = AsciiTable::new(vec![
        "game",
        "cells",
        "evaluated",
        "cached",
        "shared",
        "by symmetry",
    ])
    .with_title("cell reuse per game (cells = full profile space)");
    for (name, e) in rows {
        table.row(vec![
            name.to_string(),
            e.table.space().len().to_string(),
            e.evaluated.to_string(),
            e.cached.to_string(),
            e.shared.to_string(),
            e.expanded.to_string(),
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "\ncheckpoint warm starts (whole batch): {} captured, {} forked, \
         {} prefix ticks saved\n",
        stats.created, stats.forked, stats.prefix_ticks_saved
    ));
    out
}

/// Human-readable equilibrium report for the terminal.
pub fn explore_table(game: &GameDef, exploration: &Exploration, eps: f64) -> String {
    explore_table_with(game, exploration, eps, ExploreOpts::default())
}

/// [`explore_table`] plus the optional mixed/dynamics sections.
pub fn explore_table_with(
    game: &GameDef,
    exploration: &Exploration,
    eps: f64,
    opts: ExploreOpts,
) -> String {
    let table = &exploration.table;
    let mut out = String::new();

    let mut headers = vec!["profile".to_string(), "σ".to_string()];
    for p in 0..game.players() {
        headers.push(format!("U(P{p})"));
    }
    let mut cells =
        AsciiTable::new(headers.iter().map(String::as_str).collect()).with_title(&format!(
            "{} — {} profiles × {} seeds",
            game.name,
            table.space().len(),
            exploration.seeds
        ));
    for (profile, stats) in table.cells() {
        let mut row = vec![game.profile_label(profile), stats.sigma.symbol().into()];
        for p in 0..game.players() {
            row.push(if stats.ci95[p] > 0.0 {
                format!("{:.3}±{:.3}", stats.utilities[p], stats.ci95[p])
            } else {
                format!("{:.3}", stats.utilities[p])
            });
        }
        cells.row(row);
    }
    out.push_str(&cells.render());
    out.push('\n');

    let ne = table.nash_equilibria(eps);
    out.push_str(&format!("\nPure Nash equilibria (ε = {eps}):\n"));
    if ne.is_empty() {
        out.push_str("  (none)\n");
    }
    for profile in &ne {
        let cert = table.certify_nash(profile, eps);
        out.push_str(&format!(
            "  {}  [{}; worst deviation gain {:.3}]\n",
            game.profile_label(profile),
            confidence_str(cert.confidence),
            cert.worst_gain,
        ));
    }

    let mut dom = AsciiTable::new(vec![
        "player",
        "strategy",
        "dominant",
        "confidence",
        "max regret",
    ])
    .with_title("Dominance and regret (per player × strategy)");
    for (player, regrets) in table.regret_matrix().iter().enumerate() {
        for (s, &regret) in regrets.iter().enumerate() {
            let cert = table.certify_dominant(player, s, eps);
            dom.row(vec![
                format!("P{player}"),
                game.label(player, s).to_string(),
                if cert.holds { "✓" } else { "✗" }.to_string(),
                confidence_str(cert.confidence).to_string(),
                format!("{regret:.3}"),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&dom.render());
    out.push('\n');

    let dsic_holds = (0..game.players()).all(|p| table.is_dominant(p, game.honest[p], eps));
    out.push_str(&format!(
        "\nDSIC at {}: {}\n",
        game.profile_label(&game.honest),
        if dsic_holds {
            "✓ (every component is weakly dominant)"
        } else {
            "✗"
        },
    ));

    if opts.mixed {
        let analysis = mixed_analysis(table, eps);
        out.push_str(&format!(
            "\nMixed equilibria ({}, ε = {eps}):\n",
            analysis.method
        ));
        if analysis.equilibria.is_empty() {
            out.push_str(if analysis.method == "unsupported" {
                "  (no exact solver for this game shape — see the dynamics analysis)\n"
            } else {
                "  (none beyond the pure equilibria above)\n"
            });
        }
        for eq in &analysis.equilibria {
            let expected = eq
                .expected
                .iter()
                .map(|u| format!("{u:.3}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  {}  [expected: {expected}; regret {:.3e}]\n",
                mixed_label(game, &eq.distributions),
                eq.regret,
            ));
        }
    }

    if opts.dynamics {
        let from_honest = best_reply_path(table, game.honest.clone(), eps);
        let summary = best_reply_summary(table, eps);
        out.push_str(&format!("\nBest-reply dynamics (ε = {eps}):\n"));
        let trail = from_honest
            .path
            .iter()
            .map(|p| game.profile_label(p))
            .collect::<Vec<_>>()
            .join(" → ");
        match from_honest.outcome {
            DynamicsOutcome::Converged => out.push_str(&format!(
                "  from honest: converged in {} step(s): {trail}\n",
                from_honest.steps(),
            )),
            DynamicsOutcome::Cycled => out.push_str(&format!(
                "  from honest: cycles (first repeat at step {}): {trail}\n",
                from_honest.cycle_start.unwrap_or(0),
            )),
        }
        if summary.attractors.is_empty() {
            out.push_str("  attractors: (none — every start cycles)\n");
        } else {
            out.push_str("  attractors (basin / starts):\n");
            let total = table.space().len();
            for (profile, basin) in &summary.attractors {
                out.push_str(&format!(
                    "    {}  {basin}/{total}\n",
                    game.profile_label(profile)
                ));
            }
        }
        out.push_str(&format!(
            "  cycling starts: {}; longest path: {} step(s)\n",
            summary.cycling_starts, summary.longest_path
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunRecord;
    use prft_sim::RunOutcome;

    fn report() -> BatchReport {
        BatchReport::from_records(
            "k=1".into(),
            4,
            vec![RunRecord {
                seed: 9,
                outcome: RunOutcome::Quiescent,
                min_final_height: 3,
                max_final_height: 3,
                agreement: true,
                strict_ordering: true,
                burned: vec![2],
                view_changes: 1,
                exposes: 1,
                rounds_entered: 4,
                vc_consistent: true,
                txs_included: vec![true],
                watched_finalized: vec![],
                sigma: SystemState::HonestExecution,
                throughput: 1.0,
                total_messages: 100,
                total_bytes: 5_000,
                events_dispatched: 20,
                peak_queue_depth: 5,
                in_flight_messages: 0,
                obs: prft_sim::ObsRegistry::new(),
                workload: None,
                utilities: vec![0.0, -10.0],
            }],
        )
    }

    #[test]
    fn json_modes_differ_only_in_runs() {
        let r = [report()];
        let with = scenario_json("s", 1, &r, true);
        let without = scenario_json("s", 1, &r, false);
        assert!(with.contains("\"runs\""));
        assert!(!without.contains("\"runs\""));
        assert!(without.contains("\"agreement_rate\": 1"));
    }

    #[test]
    fn csv_has_header_and_row() {
        let csv = scenario_csv("s", &[report()]);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scenario,label"));
        assert!(lines[1].starts_with("s,k=1,4,1,1,"));
    }

    #[test]
    fn csv_quotes_labels_with_commas() {
        let mut r = report();
        r.label = "abs=2,fork=2".into();
        let csv = scenario_csv("s", &[r]);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("s,\"abs=2,fork=2\",4,"));
        // Column count must match the header whatever the label contains.
        let header_cols = csv.lines().next().unwrap().split(',').count();
        let quoted_extra = 1; // the one comma inside the quoted label
        assert_eq!(row.split(',').count(), header_cols + quoted_extra);
    }

    #[test]
    fn table_renders() {
        let t = scenario_table("s", 1, &[report()]);
        assert!(t.contains("k=1"));
        assert!(t.contains("100%"));
    }

    #[test]
    fn explore_reports_render_the_trap_game() {
        use crate::games::find_game;
        use crate::runner::BatchRunner;
        let game = find_game("trap-k3").unwrap();
        let out = crate::explore::GameExplorer::new(BatchRunner::new(1)).explore(&game, 1);
        let json = explore_json(&game, &out, 1e-9);
        assert!(json.contains("\"game\": \"trap-k3\""));
        assert!(json.contains("\"nash\""));
        // Theorem 3: both all-fork and all-bait are equilibria.
        assert!(json.contains("(π_fork, π_fork, π_fork)"));
        assert!(json.contains("(π_bait, π_bait, π_bait)"));
        let csv = explore_csv(&game, &out);
        assert_eq!(csv.lines().count(), 1 + 8, "header + 2^3 profiles");
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("u0,ci0,u1,ci1,u2,ci2"));
        let table = explore_table(&game, &out, 1e-9);
        assert!(table.contains("Pure Nash equilibria"));
        assert!(table.contains("DSIC"));
    }
}
