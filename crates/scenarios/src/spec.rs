//! The declarative scenario vocabulary: everything a pRFT experiment needs
//! to describe one committee configuration, with no trait objects and no
//! simulation state — a [`ScenarioSpec`] is plain data, `Clone + Send +
//! Sync`, so the batch runner can hand the same spec to every worker thread
//! and build an independent simulation per seed.

use prft_core::VerifyMode;
use prft_game::Theta;
use prft_sim::QueueBackend;
use prft_workload::WorkloadSpec;

/// Which synchrony flavour the run executes under (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Synchrony {
    /// Known delay bound Δ.
    Synchronous {
        /// The delay bound Δ (simulation ticks).
        delta: u64,
    },
    /// Adversarial delays until GST, then bounded by Δ.
    PartiallySynchronous {
        /// Global stabilization time.
        gst: u64,
        /// Post-GST bound Δ.
        delta: u64,
    },
    /// Finite but unbounded delays (geometric tail).
    Asynchronous,
}

/// One partition window layered over the base synchrony model: `groups`
/// are mutually isolated between `start` and `end`; `bridges` (if any)
/// talk to every group — the paper's "honest halves communicate only
/// through the adversary" construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Window start (inclusive, ticks).
    pub start: u64,
    /// Window end (exclusive, ticks) — cross-group traffic is held to here.
    pub end: u64,
    /// The isolated player groups (player indices).
    pub groups: Vec<Vec<usize>>,
    /// Players bridging every group (byzantine bridges).
    pub bridges: Vec<usize>,
}

/// A player's assigned strategy. Every index not named in
/// [`ScenarioSpec::roles`] plays honest `π_0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// `π_0`: follow the protocol.
    Honest,
    /// `π_abs`: send nothing (the θ=3 liveness attack, Theorem 1).
    Abstain,
    /// Crash fault from t = 0 (the CFT column of Table 1).
    Crash,
    /// `π_pc`: censor as leader, abstain under honest leaders (Theorem 2).
    /// The collusion is the set of all `PartialCensor` players; the censored
    /// set is [`ScenarioSpec::censored`].
    PartialCensor,
    /// `π_fork` colluder: double-sign along the [`ScenarioSpec::fork_b_group`]
    /// split whenever the shared blackboard has a plan (Lemma 4).
    ForkColluder,
    /// The byzantine leader seeding the fork: equivocate when leading.
    EquivocatingLeader {
        /// Attack only this round (attack every led round if `None`).
        only_round: Option<u64>,
    },
    /// Byzantine noise: votes for garbage values.
    GarbageVoter,
    /// Byzantine noise: double-signs unconditionally.
    DoubleVoter,
    /// Byzantine: proposes nothing when leading, otherwise honest.
    SilentLeader,
    /// Byzantine: silent in every phase but echoes view changes — the
    /// "T tries to force a view change" adversary of Claim 2.
    VcSpammer,
}

/// A transaction preloaded into mempools before the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxSpec {
    /// Transaction id.
    pub id: u64,
    /// Receiving player, or every player when `None` ("all honest players
    /// have tx as input").
    pub to: Option<usize>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// One scheduled change to a running committee — the spec-v2 timeline
/// vocabulary. The paper's adversaries are *dynamic* (T delays targeted
/// players until GST, colluders defect mid-stream, players crash and come
/// back); a schedule of `(tick, TimelineEvent)` pairs expresses them
/// declaratively while keeping [`ScenarioSpec`] plain data.
///
/// Events are applied at the *start* of their tick: the run loop processes
/// every simulation event strictly before the tick, applies the scheduled
/// events (same-tick events in insertion order), then resumes. This makes
/// timeline runs exactly as deterministic as static ones.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// Crash `player` at the scheduled tick: no further deliveries or
    /// timers until a [`TimelineEvent::Recover`].
    Crash(usize),
    /// Recover a previously crashed `player`: it resumes receiving *new*
    /// messages (held or in-flight traffic addressed to it while down is
    /// still dropped on dispatch).
    Recover(usize),
    /// Swap `player`'s strategy to `role` from the scheduled tick on —
    /// mid-run colluder defection (`SetRole(i, Role::Honest)`), late
    /// abstention, and every other behavioral switch. `Role::Crash` here
    /// is equivalent to [`TimelineEvent::Crash`].
    SetRole(usize, Role),
    /// Add a targeted-delay rule active over `[tick, tick + window)`:
    /// messages matching the (sender, receiver) pattern — `None` is a
    /// wildcard — get `extra` ticks of added delay on top of whatever the
    /// base network (and any partition) imposes.
    AddDelayRule {
        /// Matching sender (wildcard if `None`).
        from: Option<usize>,
        /// Matching receiver (wildcard if `None`).
        to: Option<usize>,
        /// Extra delay in ticks.
        extra: u64,
        /// Rule lifetime in ticks from the scheduled tick.
        window: u64,
    },
    /// Remove every live delay rule whose `(from, to)` pattern equals the
    /// given one — the inverse of [`TimelineEvent::AddDelayRule`], so a
    /// schedule can *lift* an attack instead of waiting out its window
    /// ("T stops delaying at GST"). Deliveries already scheduled keep the
    /// delay they were sent under; only future sends feel the removal.
    /// Removing a pattern nothing matches is a no-op.
    RemoveDelayRule {
        /// Matching sender pattern of the rules to drop (`None` = the
        /// wildcard pattern, compared as written).
        from: Option<usize>,
        /// Matching receiver pattern of the rules to drop.
        to: Option<usize>,
    },
    /// Inject a transaction into mempools at the scheduled tick (to every
    /// player when `to` is `None`) — late tx floods under censorship.
    InjectTx(TxSpec),
    /// Open a partition at the scheduled tick — sugar over
    /// [`PartitionSpec`]: the window runs until the matching
    /// [`TimelineEvent::PartitionEnd`] (or the horizon if never closed).
    PartitionStart {
        /// The isolated player groups (player indices).
        groups: Vec<Vec<usize>>,
        /// Players bridging every group (byzantine bridges).
        bridges: Vec<usize>,
    },
    /// Close the most recently opened (and still open) scheduled
    /// partition at the scheduled tick.
    PartitionEnd,
}

impl TimelineEvent {
    /// Whether this event is resolved statically at build time (partition
    /// sugar) rather than applied by the run loop between segments.
    pub fn is_partition_sugar(&self) -> bool {
        matches!(
            self,
            TimelineEvent::PartitionStart { .. } | TimelineEvent::PartitionEnd
        )
    }
}

/// Economic parameters for per-player utility measurement (Table 2 payoffs
/// discounted over the round budget, minus `L` on burn).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilitySpec {
    /// The rational type θ the utilities are measured for.
    pub theta: Theta,
    /// Per-round payoff magnitude α.
    pub alpha: f64,
    /// Discount factor δ.
    pub delta: f64,
    /// Collateral deposit L.
    pub penalty_l: f64,
    /// Rounds in the discounted utility stream.
    pub rounds: u64,
}

impl UtilitySpec {
    /// The paper's default economy (α = 1, δ = 0.9, L = 10) for `theta`,
    /// streamed over `rounds` rounds.
    pub fn standard(theta: Theta, rounds: u64) -> Self {
        UtilitySpec {
            theta,
            alpha: 1.0,
            delta: 0.9,
            penalty_l: 10.0,
            rounds,
        }
    }
}

/// One point of a scenario grid: a complete, declarative description of a
/// pRFT committee run. Seeds are *not* part of the spec — the runner derives
/// one simulation seed per batch index, so the same spec replayed with the
/// same seed count always produces the same report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Grid-point label ("k=3", "n=16", …) used in reports.
    pub label: String,
    /// Committee size n.
    pub n: usize,
    /// Round budget (0 = unbounded; then `horizon` alone stops the run).
    pub max_rounds: u64,
    /// Virtual-time horizon for the run.
    pub horizon: u64,
    /// Base seed the per-run seeds are derived from.
    pub base_seed: u64,
    /// Synchrony flavour.
    pub synchrony: Synchrony,
    /// Partition windows layered over the base network.
    pub partitions: Vec<PartitionSpec>,
    /// Non-honest role assignments (player index → role).
    pub roles: Vec<(usize, Role)>,
    /// The `b`-side of the fork split (receives block `b`); players not
    /// listed are on the `a` side.
    pub fork_b_group: Vec<usize>,
    /// Transactions preloaded into mempools.
    pub txs: Vec<TxSpec>,
    /// Transaction ids watched for censorship when classifying σ.
    pub watched: Vec<u64>,
    /// Transaction ids the censor coalition excludes from its blocks.
    pub censored: Vec<u64>,
    /// Agreement-threshold override (Claim 1 experiments only).
    pub tau_override: Option<usize>,
    /// Run the Reveal/PoF machinery (false = the ablation).
    pub accountable: bool,
    /// Per-phase timeout override (ticks).
    pub phase_timeout: Option<u64>,
    /// Measure per-player utilities with these economics.
    pub utility: Option<UtilitySpec>,
    /// The fault & network timeline: `(tick, event)` pairs applied at the
    /// start of their tick, in insertion order within a tick.
    pub schedule: Vec<(u64, TimelineEvent)>,
    /// The open-loop client workload riding on the committee, if any:
    /// `Some` appends `workload.clients` client actors behind the
    /// committee and switches the run to the mixed-population path.
    pub workload: Option<WorkloadSpec>,
    /// Which event-queue backend drains the run. **Not** part of the
    /// fingerprint: pop order (and with it every observable) is pinned
    /// byte-identical across backends, so this knob selects an execution
    /// strategy, never a semantics (see `docs/PERFORMANCE.md`).
    pub queue: QueueBackend,
    /// How replicas verify ballots and certificates: the memoized fast
    /// path or the reference verify-on-every-arrival path. **Not** part
    /// of the fingerprint either — the fast-vs-slow differential suite
    /// pins every report byte-identical across modes, so like `queue`
    /// this selects an execution strategy, never a semantics.
    pub verify_mode: VerifyMode,
}

impl ScenarioSpec {
    /// A spec with every player honest under a synchronous Δ = 10 network:
    /// the baseline all other specs are built from.
    pub fn new(label: impl Into<String>, n: usize, max_rounds: u64) -> Self {
        ScenarioSpec {
            label: label.into(),
            n,
            max_rounds,
            horizon: 2_000_000,
            base_seed: 0x05ee_d1ab,
            synchrony: Synchrony::Synchronous { delta: 10 },
            partitions: Vec::new(),
            roles: Vec::new(),
            fork_b_group: Vec::new(),
            txs: Vec::new(),
            watched: Vec::new(),
            censored: Vec::new(),
            tau_override: None,
            accountable: true,
            phase_timeout: None,
            utility: None,
            schedule: Vec::new(),
            workload: None,
            queue: QueueBackend::default(),
            verify_mode: VerifyMode::default(),
        }
    }

    /// Attaches an open-loop client workload to the run.
    #[must_use]
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Selects the event-queue backend (default: calendar). Results never
    /// depend on it — the backend-equivalence tests pin byte-identity —
    /// so it does not fingerprint.
    #[must_use]
    pub fn queue(mut self, backend: QueueBackend) -> Self {
        self.queue = backend;
        self
    }

    /// Selects the verification strategy (default: the memoized fast
    /// path). Results never depend on it — the fast-vs-slow differential
    /// suite pins byte-identity — so it does not fingerprint.
    #[must_use]
    pub fn verify_mode(mut self, mode: VerifyMode) -> Self {
        self.verify_mode = mode;
        self
    }

    /// Sets the synchrony flavour.
    #[must_use]
    pub fn synchrony(mut self, synchrony: Synchrony) -> Self {
        self.synchrony = synchrony;
        self
    }

    /// Adds a partition window.
    #[must_use]
    pub fn partition(mut self, window: PartitionSpec) -> Self {
        self.partitions.push(window);
        self
    }

    /// Assigns `role` to player `index`.
    #[must_use]
    pub fn role(mut self, index: usize, role: Role) -> Self {
        self.roles.push((index, role));
        self
    }

    /// Assigns `role` to every player in `indices`.
    #[must_use]
    pub fn roles(mut self, indices: impl IntoIterator<Item = usize>, role: Role) -> Self {
        for i in indices {
            self.roles.push((i, role.clone()));
        }
        self
    }

    /// Sets the fork split's `b` side.
    #[must_use]
    pub fn fork_b_group(mut self, group: impl IntoIterator<Item = usize>) -> Self {
        self.fork_b_group = group.into_iter().collect();
        self
    }

    /// Preloads a transaction (to every player when `to` is `None`).
    #[must_use]
    pub fn tx(mut self, id: u64, to: Option<usize>, payload: &[u8]) -> Self {
        self.txs.push(TxSpec {
            id,
            to,
            payload: payload.to_vec(),
        });
        self
    }

    /// Watches transaction ids for censorship classification.
    #[must_use]
    pub fn watch(mut self, ids: impl IntoIterator<Item = u64>) -> Self {
        self.watched.extend(ids);
        self
    }

    /// Sets the censor coalition's excluded set.
    #[must_use]
    pub fn censor(mut self, ids: impl IntoIterator<Item = u64>) -> Self {
        self.censored.extend(ids);
        self
    }

    /// Overrides the agreement threshold τ.
    #[must_use]
    pub fn tau(mut self, tau: usize) -> Self {
        self.tau_override = Some(tau);
        self
    }

    /// Toggles the Reveal/PoF machinery.
    #[must_use]
    pub fn accountable(mut self, on: bool) -> Self {
        self.accountable = on;
        self
    }

    /// Overrides the per-phase timeout.
    #[must_use]
    pub fn phase_timeout(mut self, ticks: u64) -> Self {
        self.phase_timeout = Some(ticks);
        self
    }

    /// Sets the virtual-time horizon.
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks;
        self
    }

    /// Sets the base seed runs are derived from.
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Measures per-player utilities with `spec`'s economics.
    #[must_use]
    pub fn utility(mut self, spec: UtilitySpec) -> Self {
        self.utility = Some(spec);
        self
    }

    /// Schedules `event` at `tick`. Same-tick events apply in the order
    /// they were added.
    #[must_use]
    pub fn at(mut self, tick: u64, event: TimelineEvent) -> Self {
        self.schedule.push((tick, event));
        self
    }

    /// A stable 64-bit fingerprint of the complete spec, used to key the
    /// explorer's on-disk utility cache: any change to any field (committee
    /// size, roles, synchrony, schedule, economics, base seed, …) changes
    /// the fingerprint, so stale cache cells can never be served for an
    /// edited game. FNV-1a over the derived `Debug` encoding plus a
    /// format-version salt (bump the salt when the spec vocabulary changes
    /// shape; `spec-v1 → spec-v2` with the timeline schedule, `spec-v2 →
    /// spec-v3` with the queue-backend knob, `spec-v3 → spec-v4` with the
    /// verify-mode knob, `spec-v4 → spec-v5` with the workload section, so
    /// every pre-change cache cell reads as a miss, never as a stale hit).
    ///
    /// The `queue` backend and `verify_mode` are deliberately
    /// **canonicalized away** before hashing: the backend-equivalence and
    /// fast-vs-slow differential tests pin every run observable
    /// byte-identical across those knobs, so two specs differing only in
    /// them describe the same experiment and must share cache cells.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut canonical = self.clone();
        canonical.queue = QueueBackend::default();
        canonical.verify_mode = VerifyMode::default();
        let mut hash = FNV_OFFSET;
        for byte in format!("spec-v5|{canonical:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// The role assigned to `index` at t = 0 (honest when unlisted; last
    /// write wins). One-off lookup; bulk consumers (the sim builder)
    /// resolve the whole committee once via
    /// [`ScenarioSpec::resolved_roles`] instead of scanning per seat.
    pub fn role_of(&self, index: usize) -> Role {
        self.roles
            .iter()
            .rev()
            .find(|(i, _)| *i == index)
            .map(|(_, r)| r.clone())
            .unwrap_or(Role::Honest)
    }

    /// The t = 0 role of every seat as a dense vector (index = player),
    /// resolved in one pass: unlisted seats are honest, last write wins.
    ///
    /// # Panics
    /// Panics if a role names a player outside `0..n`.
    pub fn resolved_roles(&self) -> Vec<Role> {
        let mut resolved = vec![Role::Honest; self.n];
        for (i, role) in &self.roles {
            assert!(
                *i < self.n,
                "role assigned to player {i} but n = {}",
                self.n
            );
            resolved[*i] = role.clone();
        }
        resolved
    }

    /// Every role a player can hold during the run: t = 0 assignments plus
    /// scheduled [`TimelineEvent::SetRole`] targets.
    fn all_roles(&self) -> impl Iterator<Item = &Role> {
        self.roles
            .iter()
            .map(|(_, r)| r)
            .chain(self.schedule.iter().filter_map(|(_, e)| match e {
                TimelineEvent::SetRole(_, r) => Some(r),
                _ => None,
            }))
    }

    /// Whether any player's role (initial or scheduled) needs the shared
    /// fork blackboard.
    pub fn uses_fork_blackboard(&self) -> bool {
        self.all_roles()
            .any(|r| matches!(r, Role::ForkColluder | Role::EquivocatingLeader { .. }))
    }

    /// Players who censor at any point of the run (initial or scheduled
    /// `π_pc` assignments) — the censor collusion set.
    pub fn censor_collusion(&self) -> Vec<usize> {
        let mut members: Vec<usize> = self
            .roles
            .iter()
            .filter(|(_, r)| matches!(r, Role::PartialCensor))
            .map(|(i, _)| *i)
            .chain(self.schedule.iter().filter_map(|(_, e)| match e {
                TimelineEvent::SetRole(i, Role::PartialCensor) => Some(*i),
                _ => None,
            }))
            .collect();
        members.sort_unstable();
        members.dedup();
        members
    }

    /// Whether the spec carries a (non-empty) timeline schedule.
    pub fn has_schedule(&self) -> bool {
        !self.schedule.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_plain_data() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<ScenarioSpec>();
    }

    #[test]
    fn role_of_defaults_honest_and_last_write_wins() {
        let spec = ScenarioSpec::new("x", 4, 1)
            .role(1, Role::Abstain)
            .role(1, Role::Crash);
        assert_eq!(spec.role_of(0), Role::Honest);
        assert_eq!(spec.role_of(1), Role::Crash);
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = ScenarioSpec::new("x", 4, 1);
        assert_eq!(
            base.fingerprint(),
            ScenarioSpec::new("x", 4, 1).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("y", 4, 1).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("x", 5, 1).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("x", 4, 1).base_seed(7).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("x", 4, 1)
                .role(1, Role::Abstain)
                .fingerprint()
        );
        // The workload section is semantic: attaching one, and every knob
        // inside it, must change the fingerprint.
        let loaded = ScenarioSpec::new("x", 4, 1).workload(WorkloadSpec::steady(10, 50));
        assert_ne!(base.fingerprint(), loaded.fingerprint());
        assert_ne!(
            loaded.fingerprint(),
            ScenarioSpec::new("x", 4, 1)
                .workload(WorkloadSpec::steady(10, 60))
                .fingerprint()
        );
        assert_ne!(
            loaded.fingerprint(),
            ScenarioSpec::new("x", 4, 1)
                .workload(WorkloadSpec::steady(10, 50).mempool_capacity(8))
                .fingerprint()
        );
    }

    #[test]
    fn blackboard_detection() {
        assert!(!ScenarioSpec::new("x", 4, 1).uses_fork_blackboard());
        assert!(ScenarioSpec::new("x", 4, 1)
            .role(
                0,
                Role::EquivocatingLeader {
                    only_round: Some(0)
                }
            )
            .uses_fork_blackboard());
        // A scheduled role switch needs the blackboard too.
        assert!(ScenarioSpec::new("x", 4, 1)
            .at(100, TimelineEvent::SetRole(1, Role::ForkColluder))
            .uses_fork_blackboard());
    }

    #[test]
    fn resolved_roles_match_role_of() {
        let spec = ScenarioSpec::new("x", 4, 1)
            .role(1, Role::Abstain)
            .role(1, Role::Crash)
            .role(3, Role::GarbageVoter);
        let resolved = spec.resolved_roles();
        assert_eq!(resolved.len(), 4);
        for (i, role) in resolved.iter().enumerate() {
            assert_eq!(*role, spec.role_of(i), "seat {i}");
        }
    }

    #[test]
    #[should_panic(expected = "but n = 4")]
    fn out_of_range_role_rejected_at_resolution() {
        let _ = ScenarioSpec::new("x", 4, 1)
            .role(9, Role::Abstain)
            .resolved_roles();
    }

    #[test]
    fn at_builder_preserves_insertion_order() {
        let spec = ScenarioSpec::new("x", 4, 1)
            .at(50, TimelineEvent::Crash(1))
            .at(10, TimelineEvent::Crash(2))
            .at(50, TimelineEvent::Recover(1));
        assert_eq!(
            spec.schedule,
            vec![
                (50, TimelineEvent::Crash(1)),
                (10, TimelineEvent::Crash(2)),
                (50, TimelineEvent::Recover(1)),
            ]
        );
        assert!(spec.has_schedule());
        assert!(!ScenarioSpec::new("x", 4, 1).has_schedule());
    }

    #[test]
    fn fingerprint_distinguishes_schedules() {
        let base = ScenarioSpec::new("x", 4, 1);
        let crash = base.clone().at(100, TimelineEvent::Crash(1));
        let crash_later = base.clone().at(200, TimelineEvent::Crash(1));
        let recover = base.clone().at(100, TimelineEvent::Recover(1));
        assert_ne!(base.fingerprint(), crash.fingerprint());
        assert_ne!(crash.fingerprint(), crash_later.fingerprint());
        assert_ne!(crash.fingerprint(), recover.fingerprint());
        // Same-tick order is semantic (insertion order), so it fingerprints.
        let ab = base
            .clone()
            .at(5, TimelineEvent::Crash(0))
            .at(5, TimelineEvent::Recover(0));
        let ba = base
            .at(5, TimelineEvent::Recover(0))
            .at(5, TimelineEvent::Crash(0));
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn queue_backend_is_fingerprint_neutral() {
        // The backend changes execution strategy, never results, so two
        // specs differing only in `queue` must share explorer cache cells
        // (equal fingerprints) while still comparing unequal as data.
        let calendar = ScenarioSpec::new("x", 4, 1).queue(QueueBackend::Calendar);
        let heap = ScenarioSpec::new("x", 4, 1).queue(QueueBackend::Heap);
        assert_eq!(calendar.fingerprint(), heap.fingerprint());
        assert_ne!(calendar, heap);
        // …but every *semantic* field still fingerprints (guard against
        // the canonical clone accidentally widening the exclusion).
        assert_ne!(
            heap.fingerprint(),
            ScenarioSpec::new("x", 5, 1)
                .queue(QueueBackend::Heap)
                .fingerprint()
        );
    }

    #[test]
    fn verify_mode_is_fingerprint_neutral() {
        // Like the queue backend: the fast-vs-slow differential suite pins
        // reports byte-identical across modes, so the knob must share
        // explorer cache cells while still comparing unequal as data.
        let fast = ScenarioSpec::new("x", 4, 1).verify_mode(VerifyMode::Fast);
        let reference = ScenarioSpec::new("x", 4, 1).verify_mode(VerifyMode::Reference);
        assert_eq!(fast.fingerprint(), reference.fingerprint());
        assert_ne!(fast, reference);
        assert_ne!(
            reference.fingerprint(),
            ScenarioSpec::new("x", 5, 1)
                .verify_mode(VerifyMode::Reference)
                .fingerprint()
        );
    }

    #[test]
    fn censor_collusion_merges_initial_and_scheduled() {
        let spec = ScenarioSpec::new("x", 6, 1)
            .role(2, Role::PartialCensor)
            .at(100, TimelineEvent::SetRole(4, Role::PartialCensor))
            .at(200, TimelineEvent::SetRole(2, Role::Honest));
        assert_eq!(spec.censor_collusion(), vec![2, 4]);
    }

    #[test]
    fn partition_sugar_is_detected() {
        assert!(TimelineEvent::PartitionStart {
            groups: vec![],
            bridges: vec![]
        }
        .is_partition_sugar());
        assert!(TimelineEvent::PartitionEnd.is_partition_sugar());
        assert!(!TimelineEvent::Crash(0).is_partition_sugar());
    }
}
