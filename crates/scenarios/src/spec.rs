//! The declarative scenario vocabulary: everything a pRFT experiment needs
//! to describe one committee configuration, with no trait objects and no
//! simulation state — a [`ScenarioSpec`] is plain data, `Clone + Send +
//! Sync`, so the batch runner can hand the same spec to every worker thread
//! and build an independent simulation per seed.

use prft_game::Theta;

/// Which synchrony flavour the run executes under (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Synchrony {
    /// Known delay bound Δ.
    Synchronous {
        /// The delay bound Δ (simulation ticks).
        delta: u64,
    },
    /// Adversarial delays until GST, then bounded by Δ.
    PartiallySynchronous {
        /// Global stabilization time.
        gst: u64,
        /// Post-GST bound Δ.
        delta: u64,
    },
    /// Finite but unbounded delays (geometric tail).
    Asynchronous,
}

/// One partition window layered over the base synchrony model: `groups`
/// are mutually isolated between `start` and `end`; `bridges` (if any)
/// talk to every group — the paper's "honest halves communicate only
/// through the adversary" construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Window start (inclusive, ticks).
    pub start: u64,
    /// Window end (exclusive, ticks) — cross-group traffic is held to here.
    pub end: u64,
    /// The isolated player groups (player indices).
    pub groups: Vec<Vec<usize>>,
    /// Players bridging every group (byzantine bridges).
    pub bridges: Vec<usize>,
}

/// A player's assigned strategy. Every index not named in
/// [`ScenarioSpec::roles`] plays honest `π_0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// `π_0`: follow the protocol.
    Honest,
    /// `π_abs`: send nothing (the θ=3 liveness attack, Theorem 1).
    Abstain,
    /// Crash fault from t = 0 (the CFT column of Table 1).
    Crash,
    /// `π_pc`: censor as leader, abstain under honest leaders (Theorem 2).
    /// The collusion is the set of all `PartialCensor` players; the censored
    /// set is [`ScenarioSpec::censored`].
    PartialCensor,
    /// `π_fork` colluder: double-sign along the [`ScenarioSpec::fork_b_group`]
    /// split whenever the shared blackboard has a plan (Lemma 4).
    ForkColluder,
    /// The byzantine leader seeding the fork: equivocate when leading.
    EquivocatingLeader {
        /// Attack only this round (attack every led round if `None`).
        only_round: Option<u64>,
    },
    /// Byzantine noise: votes for garbage values.
    GarbageVoter,
    /// Byzantine noise: double-signs unconditionally.
    DoubleVoter,
    /// Byzantine: proposes nothing when leading, otherwise honest.
    SilentLeader,
    /// Byzantine: silent in every phase but echoes view changes — the
    /// "T tries to force a view change" adversary of Claim 2.
    VcSpammer,
}

/// A transaction preloaded into mempools before the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxSpec {
    /// Transaction id.
    pub id: u64,
    /// Receiving player, or every player when `None` ("all honest players
    /// have tx as input").
    pub to: Option<usize>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Economic parameters for per-player utility measurement (Table 2 payoffs
/// discounted over the round budget, minus `L` on burn).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilitySpec {
    /// The rational type θ the utilities are measured for.
    pub theta: Theta,
    /// Per-round payoff magnitude α.
    pub alpha: f64,
    /// Discount factor δ.
    pub delta: f64,
    /// Collateral deposit L.
    pub penalty_l: f64,
    /// Rounds in the discounted utility stream.
    pub rounds: u64,
}

impl UtilitySpec {
    /// The paper's default economy (α = 1, δ = 0.9, L = 10) for `theta`,
    /// streamed over `rounds` rounds.
    pub fn standard(theta: Theta, rounds: u64) -> Self {
        UtilitySpec {
            theta,
            alpha: 1.0,
            delta: 0.9,
            penalty_l: 10.0,
            rounds,
        }
    }
}

/// One point of a scenario grid: a complete, declarative description of a
/// pRFT committee run. Seeds are *not* part of the spec — the runner derives
/// one simulation seed per batch index, so the same spec replayed with the
/// same seed count always produces the same report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Grid-point label ("k=3", "n=16", …) used in reports.
    pub label: String,
    /// Committee size n.
    pub n: usize,
    /// Round budget (0 = unbounded; then `horizon` alone stops the run).
    pub max_rounds: u64,
    /// Virtual-time horizon for the run.
    pub horizon: u64,
    /// Base seed the per-run seeds are derived from.
    pub base_seed: u64,
    /// Synchrony flavour.
    pub synchrony: Synchrony,
    /// Partition windows layered over the base network.
    pub partitions: Vec<PartitionSpec>,
    /// Non-honest role assignments (player index → role).
    pub roles: Vec<(usize, Role)>,
    /// The `b`-side of the fork split (receives block `b`); players not
    /// listed are on the `a` side.
    pub fork_b_group: Vec<usize>,
    /// Transactions preloaded into mempools.
    pub txs: Vec<TxSpec>,
    /// Transaction ids watched for censorship when classifying σ.
    pub watched: Vec<u64>,
    /// Transaction ids the censor coalition excludes from its blocks.
    pub censored: Vec<u64>,
    /// Agreement-threshold override (Claim 1 experiments only).
    pub tau_override: Option<usize>,
    /// Run the Reveal/PoF machinery (false = the ablation).
    pub accountable: bool,
    /// Per-phase timeout override (ticks).
    pub phase_timeout: Option<u64>,
    /// Measure per-player utilities with these economics.
    pub utility: Option<UtilitySpec>,
}

impl ScenarioSpec {
    /// A spec with every player honest under a synchronous Δ = 10 network:
    /// the baseline all other specs are built from.
    pub fn new(label: impl Into<String>, n: usize, max_rounds: u64) -> Self {
        ScenarioSpec {
            label: label.into(),
            n,
            max_rounds,
            horizon: 2_000_000,
            base_seed: 0x05ee_d1ab,
            synchrony: Synchrony::Synchronous { delta: 10 },
            partitions: Vec::new(),
            roles: Vec::new(),
            fork_b_group: Vec::new(),
            txs: Vec::new(),
            watched: Vec::new(),
            censored: Vec::new(),
            tau_override: None,
            accountable: true,
            phase_timeout: None,
            utility: None,
        }
    }

    /// Sets the synchrony flavour.
    #[must_use]
    pub fn synchrony(mut self, synchrony: Synchrony) -> Self {
        self.synchrony = synchrony;
        self
    }

    /// Adds a partition window.
    #[must_use]
    pub fn partition(mut self, window: PartitionSpec) -> Self {
        self.partitions.push(window);
        self
    }

    /// Assigns `role` to player `index`.
    #[must_use]
    pub fn role(mut self, index: usize, role: Role) -> Self {
        self.roles.push((index, role));
        self
    }

    /// Assigns `role` to every player in `indices`.
    #[must_use]
    pub fn roles(mut self, indices: impl IntoIterator<Item = usize>, role: Role) -> Self {
        for i in indices {
            self.roles.push((i, role.clone()));
        }
        self
    }

    /// Sets the fork split's `b` side.
    #[must_use]
    pub fn fork_b_group(mut self, group: impl IntoIterator<Item = usize>) -> Self {
        self.fork_b_group = group.into_iter().collect();
        self
    }

    /// Preloads a transaction (to every player when `to` is `None`).
    #[must_use]
    pub fn tx(mut self, id: u64, to: Option<usize>, payload: &[u8]) -> Self {
        self.txs.push(TxSpec {
            id,
            to,
            payload: payload.to_vec(),
        });
        self
    }

    /// Watches transaction ids for censorship classification.
    #[must_use]
    pub fn watch(mut self, ids: impl IntoIterator<Item = u64>) -> Self {
        self.watched.extend(ids);
        self
    }

    /// Sets the censor coalition's excluded set.
    #[must_use]
    pub fn censor(mut self, ids: impl IntoIterator<Item = u64>) -> Self {
        self.censored.extend(ids);
        self
    }

    /// Overrides the agreement threshold τ.
    #[must_use]
    pub fn tau(mut self, tau: usize) -> Self {
        self.tau_override = Some(tau);
        self
    }

    /// Toggles the Reveal/PoF machinery.
    #[must_use]
    pub fn accountable(mut self, on: bool) -> Self {
        self.accountable = on;
        self
    }

    /// Overrides the per-phase timeout.
    #[must_use]
    pub fn phase_timeout(mut self, ticks: u64) -> Self {
        self.phase_timeout = Some(ticks);
        self
    }

    /// Sets the virtual-time horizon.
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks;
        self
    }

    /// Sets the base seed runs are derived from.
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Measures per-player utilities with `spec`'s economics.
    #[must_use]
    pub fn utility(mut self, spec: UtilitySpec) -> Self {
        self.utility = Some(spec);
        self
    }

    /// A stable 64-bit fingerprint of the complete spec, used to key the
    /// explorer's on-disk utility cache: any change to any field (committee
    /// size, roles, synchrony, economics, base seed, …) changes the
    /// fingerprint, so stale cache cells can never be served for an edited
    /// game. FNV-1a over the derived `Debug` encoding plus a format-version
    /// salt (bump the salt when the spec vocabulary changes shape).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in format!("spec-v1|{self:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// The role assigned to `index` (honest when unlisted; last write wins).
    pub fn role_of(&self, index: usize) -> Role {
        self.roles
            .iter()
            .rev()
            .find(|(i, _)| *i == index)
            .map(|(_, r)| r.clone())
            .unwrap_or(Role::Honest)
    }

    /// Indices of players whose role needs the shared fork blackboard.
    pub fn uses_fork_blackboard(&self) -> bool {
        self.roles
            .iter()
            .any(|(_, r)| matches!(r, Role::ForkColluder | Role::EquivocatingLeader { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_plain_data() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<ScenarioSpec>();
    }

    #[test]
    fn role_of_defaults_honest_and_last_write_wins() {
        let spec = ScenarioSpec::new("x", 4, 1)
            .role(1, Role::Abstain)
            .role(1, Role::Crash);
        assert_eq!(spec.role_of(0), Role::Honest);
        assert_eq!(spec.role_of(1), Role::Crash);
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = ScenarioSpec::new("x", 4, 1);
        assert_eq!(
            base.fingerprint(),
            ScenarioSpec::new("x", 4, 1).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("y", 4, 1).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("x", 5, 1).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("x", 4, 1).base_seed(7).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ScenarioSpec::new("x", 4, 1)
                .role(1, Role::Abstain)
                .fingerprint()
        );
    }

    #[test]
    fn blackboard_detection() {
        assert!(!ScenarioSpec::new("x", 4, 1).uses_fork_blackboard());
        assert!(ScenarioSpec::new("x", 4, 1)
            .role(
                0,
                Role::EquivocatingLeader {
                    only_round: Some(0)
                }
            )
            .uses_fork_blackboard());
    }
}
