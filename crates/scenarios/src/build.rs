//! Turning a [`ScenarioSpec`] into a live simulation, executing its
//! timeline schedule, and turning a finished run into a [`RunRecord`].
//! This is the one place in the workspace that assembles committees for
//! experiments — the `prft-bench` binaries and the `prft-lab` CLI both
//! come through here.
//!
//! ## The timeline run loop
//!
//! A spec without a schedule runs in one `run_until(horizon)` segment,
//! exactly as before. A spec *with* a schedule is executed as alternating
//! segments: for each scheduled tick `t` (ascending; ties in insertion
//! order) the loop runs the simulation up to — but excluding — `t`
//! ([`Simulation::run_before`]), applies every event scheduled at `t`,
//! then continues. Scheduled events therefore take effect "at the start
//! of tick `t`", before any same-tick protocol traffic, and the whole run
//! stays bit-deterministic: segment boundaries are pure functions of the
//! spec, and no scheduled event draws randomness.
//!
//! Partition sugar ([`TimelineEvent::PartitionStart`]/`PartitionEnd`) is
//! resolved statically into [`PartitionSpec`] windows at network-build
//! time — partitions are window-based in `prft-net`, so they need no
//! runtime action.

use crate::checkpoint::{
    boundaries, ordered_events, prefix_fingerprint, CheckpointEntry, CheckpointStore, PopSnapshot,
};
use crate::record::RunRecord;
use crate::spec::{PartitionSpec, Role, ScenarioSpec, Synchrony, TimelineEvent, UtilitySpec};
use prft_adversary::{
    blackboard, Abstain, Blackboard, DoubleVoter, EquivocatingLeader, ForkColluder, GarbageVoter,
    PartialCensor, SilentLeader,
};
use prft_core::analysis::{analyze, honest_ids, tx_finalized_everywhere, tx_included_anywhere};
use prft_core::{
    AsReplica, BallotAction, Behavior, Config, Harness, Honest, NetworkChoice, ProposeAction,
    Replica,
};
use prft_game::{PayoffTable, SystemState};
use prft_metrics::{classify, StateObservation};
use prft_net::{DelayRule, DelayRuleHandle, PartitionWindow, PartitionedNet, TargetedDelay};
use prft_sim::{LinkModel, Node, QueueBackend, RunOutcome, SimTime, Simulation};
use prft_types::{Block, Digest, NodeId, Round, Transaction, TxId};
use prft_workload::{Actor, WorkloadRunStats, WorkloadSpec};
use std::collections::HashSet;

/// The honest committee replica behind a node id (honest ids only ever
/// name committee seats, never workload clients).
fn replica<N: Node + AsReplica>(sim: &Simulation<N>, id: NodeId) -> &Replica {
    sim.node(id)
        .as_replica()
        .expect("honest ids name committee replicas")
}

/// The Claim 2 adversary: silent in every protocol phase but participating
/// in view changes, pressing the committee to abandon rounds.
#[derive(Debug, Default, Clone)]
struct VcSpammer;

impl Behavior for VcSpammer {
    fn label(&self) -> &'static str {
        "vc-spammer"
    }
    fn on_propose(&mut self, _round: Round, _b: &Block) -> ProposeAction {
        ProposeAction::Silent
    }
    fn on_vote(&mut self, _r: Round, _v: Digest) -> BallotAction {
        BallotAction::Silent
    }
    fn on_commit(&mut self, _r: Round, _v: Digest) -> BallotAction {
        BallotAction::Silent
    }
    fn on_reveal(&mut self, _r: Round, _v: Digest) -> BallotAction {
        BallotAction::Silent
    }
}

/// Expands the schedule's partition sugar into explicit windows:
/// `PartitionStart` opens at its tick, `PartitionEnd` closes the most
/// recently opened (still open) scheduled partition, and anything left
/// open runs to the horizon.
///
/// # Panics
/// Panics on a `PartitionEnd` with no open scheduled partition.
fn scheduled_partitions(spec: &ScenarioSpec) -> Vec<PartitionSpec> {
    let mut sugar: Vec<(u64, &TimelineEvent)> = spec
        .schedule
        .iter()
        .filter(|(_, e)| e.is_partition_sugar())
        .map(|(t, e)| (*t, e))
        .collect();
    // Stable sort: same-tick sugar stays in insertion order. Open
    // partitions are half-built windows (end = horizon); PartitionEnd
    // tightens the most recent one still open.
    sugar.sort_by_key(|(t, _)| *t);
    let mut open: Vec<PartitionSpec> = Vec::new();
    let mut windows = Vec::new();
    for (tick, event) in sugar {
        match event {
            TimelineEvent::PartitionStart { groups, bridges } => {
                open.push(PartitionSpec {
                    start: tick,
                    end: spec.horizon,
                    groups: groups.clone(),
                    bridges: bridges.clone(),
                });
            }
            TimelineEvent::PartitionEnd => {
                let mut window = open
                    .pop()
                    .expect("PartitionEnd without an open scheduled partition");
                window.end = tick;
                if window.end > window.start {
                    windows.push(window);
                }
            }
            _ => unreachable!("filtered to partition sugar"),
        }
    }
    windows.extend(open.into_iter().filter(|w| w.end > w.start));
    windows
}

/// Builds the link-model stack for `spec`: base synchrony flavour, wrapped
/// by a [`PartitionedNet`] when any partition window exists (explicit or
/// scheduled sugar), wrapped by a [`TargetedDelay`] when the schedule
/// installs delay rules. Returns the handle for mid-run rule additions
/// alongside the model.
fn network_model(spec: &ScenarioSpec) -> (NetworkChoice, Option<DelayRuleHandle>) {
    let base: Box<dyn LinkModel> = match spec.synchrony {
        Synchrony::Synchronous { delta } => Box::new(prft_net::SynchronousNet::new(SimTime(delta))),
        Synchrony::PartiallySynchronous { gst, delta } => Box::new(
            prft_net::PartiallySynchronousNet::new(SimTime(gst), SimTime(delta)),
        ),
        Synchrony::Asynchronous => Box::new(prft_net::AsynchronousNet::typical()),
    };
    let mut windows: Vec<PartitionSpec> = spec.partitions.clone();
    windows.extend(scheduled_partitions(spec));
    let partitioned: Box<dyn LinkModel> = if windows.is_empty() {
        base
    } else {
        let mut net = PartitionedNet::new(base);
        for p in &windows {
            let groups: Vec<Vec<NodeId>> = p
                .groups
                .iter()
                .map(|g| g.iter().map(|&i| NodeId(i)).collect())
                .collect();
            let window = if p.bridges.is_empty() {
                PartitionWindow::split(SimTime(p.start), SimTime(p.end), groups)
            } else {
                PartitionWindow::split_with_bridges(
                    SimTime(p.start),
                    SimTime(p.end),
                    groups,
                    p.bridges.iter().map(|&i| NodeId(i)).collect(),
                )
            };
            net.add_window(window);
        }
        Box::new(net)
    };
    let needs_delay = spec.schedule.iter().any(|(_, e)| {
        matches!(
            e,
            TimelineEvent::AddDelayRule { .. } | TimelineEvent::RemoveDelayRule { .. }
        )
    });
    if needs_delay {
        let targeted = TargetedDelay::new(partitioned);
        let handle = targeted.handle();
        (NetworkChoice::Custom(Box::new(targeted)), Some(handle))
    } else {
        (NetworkChoice::Custom(partitioned), None)
    }
}

fn behavior_for(
    spec: &ScenarioSpec,
    role: &Role,
    board: &Option<Blackboard>,
    collusion: &HashSet<NodeId>,
) -> Option<Box<dyn Behavior>> {
    let b_group: HashSet<NodeId> = spec.fork_b_group.iter().map(|&i| NodeId(i)).collect();
    match role {
        Role::Honest | Role::Crash => None,
        Role::Abstain => Some(Box::new(Abstain)),
        Role::PartialCensor => {
            let censor: HashSet<TxId> = spec.censored.iter().map(|&id| TxId(id)).collect();
            Some(Box::new(PartialCensor::new(
                spec.n,
                collusion.clone(),
                censor,
            )))
        }
        Role::ForkColluder => Some(Box::new(ForkColluder::new(
            board.clone().expect("fork role requires blackboard"),
            b_group,
            spec.n,
        ))),
        Role::EquivocatingLeader { only_round } => {
            let leader = EquivocatingLeader::new(
                board.clone().expect("fork role requires blackboard"),
                b_group,
                spec.n,
            );
            Some(Box::new(match only_round {
                Some(r) => leader.only_rounds([Round(*r)]),
                None => leader,
            }))
        }
        Role::GarbageVoter => Some(Box::new(GarbageVoter)),
        Role::DoubleVoter => Some(Box::new(DoubleVoter::new(spec.n))),
        Role::SilentLeader => Some(Box::new(SilentLeader)),
        Role::VcSpammer => Some(Box::new(VcSpammer)),
    }
}

/// The two node populations the timeline executor can drive: the pure
/// committee (`Simulation<Replica>`) and the mixed committee-plus-clients
/// population of a workload run (`Simulation<Actor>`). Scheduled events
/// only ever target committee seats, so the trait exposes replica access
/// by id plus the run-segment controls — everything [`apply_event`] and
/// [`execute_schedule`] need, and nothing population-specific.
trait TimelineSim {
    fn crash_node(&mut self, id: NodeId);
    fn recover_node(&mut self, id: NodeId);
    fn replica_mut(&mut self, id: NodeId) -> &mut Replica;
    fn run_before_t(&mut self, t: SimTime) -> RunOutcome;
    fn run_until_t(&mut self, t: SimTime) -> RunOutcome;
}

impl TimelineSim for Simulation<Replica> {
    fn crash_node(&mut self, id: NodeId) {
        self.crash(id);
    }
    fn recover_node(&mut self, id: NodeId) {
        self.recover(id);
    }
    fn replica_mut(&mut self, id: NodeId) -> &mut Replica {
        self.node_mut(id)
    }
    fn run_before_t(&mut self, t: SimTime) -> RunOutcome {
        self.run_before(t)
    }
    fn run_until_t(&mut self, t: SimTime) -> RunOutcome {
        self.run_until(t)
    }
}

impl TimelineSim for Simulation<Actor> {
    fn crash_node(&mut self, id: NodeId) {
        self.crash(id);
    }
    fn recover_node(&mut self, id: NodeId) {
        self.recover(id);
    }
    fn replica_mut(&mut self, id: NodeId) -> &mut Replica {
        self.node_mut(id)
            .as_replica_mut()
            .expect("timeline events target committee replicas")
    }
    fn run_before_t(&mut self, t: SimTime) -> RunOutcome {
        self.run_before(t)
    }
    fn run_until_t(&mut self, t: SimTime) -> RunOutcome {
        self.run_until(t)
    }
}

/// A built simulation plus the shared state the timeline executor needs:
/// the fork blackboard (scheduled colluders must join the *same* board as
/// the initial ones) and the live delay-rule handle.
struct Built<S> {
    sim: S,
    board: Option<Blackboard>,
    collusion: HashSet<NodeId>,
    delay: Option<DelayRuleHandle>,
}

/// Everything [`build`] and [`build_workload`] share: the configured
/// harness (behaviors installed, txs preloaded) plus the adversary state
/// and delay handle the timeline executor will need. Only the final
/// assembly step differs between the two populations.
fn prepared(
    spec: &ScenarioSpec,
    seed: u64,
) -> (
    Harness,
    Option<Blackboard>,
    HashSet<NodeId>,
    Option<DelayRuleHandle>,
    Vec<Role>,
) {
    let mut cfg = Config::for_committee(spec.n).with_max_rounds(spec.max_rounds);
    if let Some(t) = spec.phase_timeout {
        cfg = cfg.with_timeout(SimTime(t));
    }
    if let Some(batch) = spec.workload.as_ref().and_then(|w| w.max_batch) {
        // Config freezes at replica construction, so the workload's batch
        // override must land here, not in `assemble`.
        cfg = cfg.with_max_batch(batch);
    }

    let board = if spec.uses_fork_blackboard() {
        Some(blackboard())
    } else {
        None
    };
    // Collusion spans the whole run: players censoring at any scheduled
    // point count as coalition members from the start.
    let collusion: HashSet<NodeId> = spec.censor_collusion().into_iter().map(NodeId).collect();
    let (network, delay) = network_model(spec);

    let mut h = Harness::new(spec.n, seed)
        .config(cfg)
        .accountable(spec.accountable)
        .network(network)
        .queue(spec.queue)
        .verify_mode(spec.verify_mode);
    if let Some(tau) = spec.tau_override {
        h = h.tau(tau);
    }
    for tx in &spec.txs {
        h = h.submit(
            tx.to.map(NodeId),
            Transaction::new(tx.id, NodeId(tx.to.unwrap_or(0)), tx.payload.clone()),
        );
    }
    // Roles resolved once into a dense vector — no per-seat reverse scans.
    let roles = spec.resolved_roles();
    let behaviors: Vec<(NodeId, Box<dyn Behavior>)> = roles
        .iter()
        .enumerate()
        .filter_map(|(i, role)| {
            behavior_for(spec, role, &board, &collusion).map(|b| (NodeId(i), b))
        })
        .collect();
    (h.with_behaviors(behaviors), board, collusion, delay, roles)
}

fn apply_initial_crashes<S: TimelineSim>(sim: &mut S, roles: &[Role]) {
    for (i, role) in roles.iter().enumerate() {
        if matches!(role, Role::Crash) {
            sim.crash_node(NodeId(i));
        }
    }
}

fn build(spec: &ScenarioSpec, seed: u64) -> Built<Simulation<Replica>> {
    let (h, board, collusion, delay, roles) = prepared(spec, seed);
    let mut sim = h.build();
    apply_initial_crashes(&mut sim, &roles);
    Built {
        sim,
        board,
        collusion,
        delay,
    }
}

fn build_workload(spec: &ScenarioSpec, seed: u64, w: &WorkloadSpec) -> Built<Simulation<Actor>> {
    let (h, board, collusion, delay, roles) = prepared(spec, seed);
    let (replicas, network, seed, queue) = h.build_parts();
    let mut sim = prft_workload::assemble(replicas, w, network, seed, queue);
    apply_initial_crashes(&mut sim, &roles);
    Built {
        sim,
        board,
        collusion,
        delay,
    }
}

/// Builds the simulation for `spec` under one derived `seed`. Crash roles
/// are applied before returning. The spec's timeline schedule is **not**
/// executed — callers driving the simulation by hand get the t = 0 state;
/// use [`run_sim`] (or [`run_one`]) to run a spec schedule and all.
pub fn build_sim(spec: &ScenarioSpec, seed: u64) -> Simulation<Replica> {
    build(spec, seed).sim
}

/// Checkpoint support for a node population: how to build one cell of it,
/// capture its engine state into a population-tagged [`PopSnapshot`], and
/// restore a simulation from one. Implemented by the two populations the
/// timeline executor drives, so the whole warm-start run path
/// ([`run_one_with`]) is written once, generically.
trait CheckpointPop: Node + AsReplica + Clone + Sized {
    /// Builds a fresh (cold) cell of this population.
    fn build_cell(spec: &ScenarioSpec, seed: u64) -> Built<Simulation<Self>>;
    /// Captures the engine state, tagged with the population.
    fn capture(sim: &mut Simulation<Self>) -> PopSnapshot;
    /// Restores a simulation from a captured state of this population.
    /// The fingerprint keeps populations apart (`workload` is part of the
    /// canonical spec), so a mismatched variant is a store-corruption
    /// bug, not a recoverable miss.
    fn restore(
        snapshot: &PopSnapshot,
        network: NetworkChoice,
        backend: QueueBackend,
    ) -> Simulation<Self>;
}

impl CheckpointPop for Replica {
    fn build_cell(spec: &ScenarioSpec, seed: u64) -> Built<Simulation<Replica>> {
        build(spec, seed)
    }
    fn capture(sim: &mut Simulation<Replica>) -> PopSnapshot {
        PopSnapshot::Committee(sim.snapshot())
    }
    fn restore(
        snapshot: &PopSnapshot,
        network: NetworkChoice,
        backend: QueueBackend,
    ) -> Simulation<Replica> {
        match snapshot {
            PopSnapshot::Committee(s) => {
                Simulation::restore_with_backend(s, network.into_model(), backend)
            }
            PopSnapshot::Workload(_) => {
                unreachable!("fingerprints keep workload captures off committee keys")
            }
        }
    }
}

impl CheckpointPop for Actor {
    fn build_cell(spec: &ScenarioSpec, seed: u64) -> Built<Simulation<Actor>> {
        let w = spec
            .workload
            .as_ref()
            .expect("the workload population requires a workload section");
        build_workload(spec, seed, w)
    }
    fn capture(sim: &mut Simulation<Actor>) -> PopSnapshot {
        PopSnapshot::Workload(sim.snapshot())
    }
    fn restore(
        snapshot: &PopSnapshot,
        network: NetworkChoice,
        backend: QueueBackend,
    ) -> Simulation<Actor> {
        match snapshot {
            PopSnapshot::Workload(s) => {
                Simulation::restore_with_backend(s, network.into_model(), backend)
            }
            PopSnapshot::Committee(_) => {
                unreachable!("fingerprints keep committee captures off workload keys")
            }
        }
    }
}

/// Applies one scheduled event at the start of `tick`.
fn apply_event<S: TimelineSim>(
    spec: &ScenarioSpec,
    built: &mut Built<S>,
    tick: u64,
    event: &TimelineEvent,
) {
    match event {
        TimelineEvent::Crash(player) => built.sim.crash_node(NodeId(*player)),
        TimelineEvent::Recover(player) => built.sim.recover_node(NodeId(*player)),
        TimelineEvent::SetRole(player, role) => {
            if matches!(role, Role::Crash) {
                built.sim.crash_node(NodeId(*player));
            } else {
                let behavior = behavior_for(spec, role, &built.board, &built.collusion)
                    .unwrap_or_else(|| Box::new(Honest));
                built
                    .sim
                    .replica_mut(NodeId(*player))
                    .set_behavior(behavior);
            }
        }
        TimelineEvent::AddDelayRule { .. } | TimelineEvent::RemoveDelayRule { .. } => {
            let handle = built
                .delay
                .as_ref()
                .expect("network_model installs TargetedDelay for scheduled rules");
            apply_delay_event(handle, tick, event);
        }
        TimelineEvent::InjectTx(tx) => {
            let transaction =
                Transaction::new(tx.id, NodeId(tx.to.unwrap_or(0)), tx.payload.clone());
            match tx.to {
                Some(player) => {
                    built
                        .sim
                        .replica_mut(NodeId(player))
                        .mempool_mut()
                        .submit(transaction);
                }
                None => {
                    for i in 0..spec.n {
                        built
                            .sim
                            .replica_mut(NodeId(i))
                            .mempool_mut()
                            .submit(transaction.clone());
                    }
                }
            }
        }
        TimelineEvent::PartitionStart { .. } | TimelineEvent::PartitionEnd => {
            unreachable!("partition sugar is resolved at network build time")
        }
    }
}

/// Applies one scheduled delay-rule event to a live [`DelayRuleHandle`].
///
/// Shared between the timeline executor ([`apply_event`]) and the
/// checkpoint-fork path, which replays the prefix's delay events onto a
/// freshly built network stack — the rule a fork reconstructs must be
/// field-for-field the rule the original run installed, so there is
/// exactly one place that builds it. Non-delay events are ignored.
fn apply_delay_event(handle: &DelayRuleHandle, tick: u64, event: &TimelineEvent) {
    match event {
        TimelineEvent::AddDelayRule {
            from,
            to,
            extra,
            window,
        } => {
            handle.add_rule(DelayRule {
                from: from.map(NodeId),
                to: to.map(NodeId),
                from_time: SimTime(tick),
                until_time: SimTime(tick.saturating_add(*window)),
                extra: SimTime(*extra),
            });
        }
        TimelineEvent::RemoveDelayRule { from, to } => {
            handle.remove_matching(from.map(NodeId), to.map(NodeId));
        }
        _ => {}
    }
}

/// Runs `built` to the spec's horizon, interleaving scheduled events with
/// [`Simulation::run_before`] segments in tick order (ties broken by
/// insertion index). Returns the outcome of the final segment, or
/// [`RunOutcome::EventLimit`] as soon as any segment trips the valve.
fn execute_schedule<S: TimelineSim>(spec: &ScenarioSpec, built: &mut Built<S>) -> RunOutcome {
    let events = ordered_events(spec);
    let mut i = 0;
    while i < events.len() {
        let tick = events[i].0;
        if tick > 0 && built.sim.run_before_t(SimTime(tick)) == RunOutcome::EventLimit {
            return RunOutcome::EventLimit;
        }
        while i < events.len() && events[i].0 == tick {
            apply_event(spec, built, tick, events[i].1);
            i += 1;
        }
    }
    built.sim.run_until_t(SimTime(spec.horizon))
}

/// Builds one seeded simulation of `spec`, executes its timeline schedule
/// to the horizon, and returns the finished simulation with the run
/// outcome. `configure` runs on the freshly built simulation before any
/// event is processed (e.g. `|sim| sim.set_tracing(true)`).
pub fn run_sim(
    spec: &ScenarioSpec,
    seed: u64,
    configure: impl FnOnce(&mut Simulation<Replica>),
) -> (Simulation<Replica>, RunOutcome) {
    let mut built = build(spec, seed);
    configure(&mut built.sim);
    let outcome = execute_schedule(spec, &mut built);
    (built.sim, outcome)
}

/// The workload twin of [`run_sim`]: builds the mixed committee-plus-client
/// population for `spec` (which must carry a workload section), executes
/// the timeline schedule to the horizon, and returns the finished
/// simulation with the run outcome.
///
/// # Panics
/// Panics when `spec.workload` is `None`.
pub fn run_workload_sim(
    spec: &ScenarioSpec,
    seed: u64,
    configure: impl FnOnce(&mut Simulation<Actor>),
) -> (Simulation<Actor>, RunOutcome) {
    let w = spec
        .workload
        .as_ref()
        .expect("run_workload_sim needs a workload section");
    let mut built = build_workload(spec, seed, w);
    configure(&mut built.sim);
    let outcome = execute_schedule(spec, &mut built);
    (built.sim, outcome)
}

/// Classifies the σ state of a finished run, watching `watched` for
/// censorship (the whole-run observation window).
pub fn classify_watched<N: Node + AsReplica>(sim: &Simulation<N>, watched: &[TxId]) -> SystemState {
    let honest = honest_ids(sim);
    let chains = honest.iter().map(|&id| replica(sim, id).chain()).collect();
    classify(&StateObservation {
        chains,
        watched: watched.to_vec(),
        baseline_height: 0,
    })
}

/// Classifies the σ state of a finished run, watching `spec.watched`.
pub fn classify_sim<N: Node + AsReplica>(spec: &ScenarioSpec, sim: &Simulation<N>) -> SystemState {
    let watched: Vec<TxId> = spec.watched.iter().map(|&id| TxId(id)).collect();
    classify_watched(sim, &watched)
}

/// Measures `player`'s discounted utility over a finished run in `state`:
/// `Σ_{r<R} δ^r · f(σ, θ) − L·[player burned]` (the utility stream runs
/// over *time periods*, not protocol progress — a jammed system keeps
/// paying the σ_NP penalty; the penalty applies iff any honest player's
/// ledger burned `player`).
pub fn discounted_utility<N: Node + AsReplica>(
    sim: &Simulation<N>,
    state: SystemState,
    player: NodeId,
    u: &UtilitySpec,
) -> f64 {
    let table = PayoffTable::new(u.alpha);
    let per_round = table.f(state, u.theta);
    let mut total = 0.0;
    let mut weight = 1.0;
    for _ in 0..u.rounds {
        total += weight * per_round;
        weight *= u.delta;
    }
    let burned = honest_ids(sim)
        .iter()
        .any(|&id| replica(sim, id).collateral().is_burned(player));
    if burned {
        total -= u.penalty_l;
    }
    total
}

/// Measures `player`'s discounted utility with the spec's economics
/// (0 when the spec does not measure utilities).
pub fn measure_utility_for<N: Node + AsReplica>(
    spec: &ScenarioSpec,
    sim: &Simulation<N>,
    state: SystemState,
    player: NodeId,
) -> f64 {
    match spec.utility {
        Some(u) => discounted_utility(sim, state, player, &u),
        None => 0.0,
    }
}

/// Builds, runs (timeline schedule included), and summarizes one seeded
/// run of `spec`.
///
/// The thread-local observability hooks are reset before the build, so the
/// record's `obs` registry holds this run's exact hook deltas — the batch
/// runner executes each seeded run wholly inside one worker closure, which
/// is what makes the aggregated `observability` section independent of
/// `--threads`.
pub fn run_one(spec: &ScenarioSpec, seed: u64) -> RunRecord {
    prft_sim::obs::hooks::reset();
    match &spec.workload {
        Some(w) => {
            let mut built = build_workload(spec, seed, w);
            let outcome = execute_schedule(spec, &mut built);
            let mut rec = summarize(spec, &built.sim, seed, outcome);
            let stats = WorkloadRunStats::collect(&built.sim);
            mirror_workload_obs(&mut rec, &stats);
            rec.workload = Some(stats);
            rec
        }
        None => {
            let (sim, outcome) = run_sim(spec, seed, |_| {});
            summarize(spec, &sim, seed, outcome)
        }
    }
}

/// [`run_one`] with checkpoint/fork warm starts.
///
/// With a [`CheckpointStore`], a run first looks for a captured state of
/// a sibling cell sharing its timeline prefix — trying its own fork
/// boundaries deepest-first, with the horizon as a pseudo-boundary so
/// schedule-free cells can also reuse — and resumes from the deepest hit
/// instead of re-simulating the prefix. Hit or miss, the run then
/// captures its own state at each remaining event boundary, plus any
/// matching capture hints the store advertises
/// ([`CheckpointStore::set_capture_hints_for`]), for later cells (first
/// writer wins). **Both populations** participate: pure committee cells
/// and workload (committee-plus-clients) cells each fork from captures of
/// their own population, kept apart by the fingerprint. Forked and fresh
/// runs produce byte-identical records — pinned per registry timeline
/// scenario, queue backend, and thread count by
/// `tests/checkpoint_equiv.rs`.
pub fn run_one_with(spec: &ScenarioSpec, seed: u64, store: Option<&CheckpointStore>) -> RunRecord {
    match store {
        Some(store) => run_one_warm(spec, seed, store),
        None => run_one(spec, seed),
    }
}

fn run_one_warm(spec: &ScenarioSpec, seed: u64, store: &CheckpointStore) -> RunRecord {
    match &spec.workload {
        Some(_) => {
            let (built, outcome) = warm_run::<Actor>(spec, seed, store);
            let mut rec = summarize(spec, &built.sim, seed, outcome);
            let stats = WorkloadRunStats::collect(&built.sim);
            mirror_workload_obs(&mut rec, &stats);
            rec.workload = Some(stats);
            rec
        }
        None => {
            let (built, outcome) = warm_run::<Replica>(spec, seed, store);
            summarize(spec, &built.sim, seed, outcome)
        }
    }
}

/// The population-generic warm-start body: probe, fork or build cold,
/// then execute the schedule with captures.
fn warm_run<N: CheckpointPop>(
    spec: &ScenarioSpec,
    seed: u64,
    store: &CheckpointStore,
) -> (Built<Simulation<N>>, RunOutcome)
where
    Simulation<N>: TimelineSim,
{
    let hit = boundaries(spec)
        .into_iter()
        .rev()
        .find_map(|tb| store.lookup(prefix_fingerprint(spec, tb), seed, tb));
    match hit {
        Some(entry) => {
            // The entry's hook counters are the prefix's exact deltas; a
            // fresh run would have accumulated them from a reset.
            prft_sim::obs::hooks::restore(entry.hooks);
            let mut built = fork_from::<N>(spec, &entry);
            let outcome =
                execute_schedule_captured(spec, &mut built, Some(entry.tick), store, seed);
            (built, outcome)
        }
        None => {
            prft_sim::obs::hooks::reset();
            let mut built = N::build_cell(spec, seed);
            let outcome = execute_schedule_captured(spec, &mut built, None, store, seed);
            (built, outcome)
        }
    }
}

/// Reassembles a runnable population from a captured prefix state.
///
/// The engine snapshot restores nodes (committee replicas, and for the
/// workload population the clients with their in-flight/retry state),
/// queue, arena, meter, counters, and broadcast domain; the scenario
/// layer re-supplies what the snapshot deliberately leaves out:
///
/// - the **network stack**, rebuilt from the spec (a pure function of its
///   static fields) with the prefix's delay-rule events replayed onto the
///   fresh [`DelayRuleHandle`] — so a rule lifted before the capture
///   stays lifted and one still active stays active;
/// - the **fork blackboard**, deep-copied into a fresh `Arc` and rebound
///   into every committee replica's behavior, so the fork never aliases
///   the producer run's live coordination state (and later scheduled
///   colluders join the fork's own board);
/// - the consumer's own queue backend (checkpoints are backend-portable).
fn fork_from<N: CheckpointPop>(spec: &ScenarioSpec, entry: &CheckpointEntry) -> Built<Simulation<N>>
where
    Simulation<N>: TimelineSim,
{
    let (network, delay) = network_model(spec);
    if let Some(handle) = &delay {
        for (tick, event) in ordered_events(spec) {
            if tick >= entry.tick {
                break;
            }
            apply_delay_event(handle, tick, event);
        }
    }
    let mut sim = N::restore(&entry.snapshot, network, spec.queue);
    let board: Option<Blackboard> = match (&entry.board, spec.uses_fork_blackboard()) {
        (Some(plan), _) => Some(std::sync::Arc::new(std::sync::Mutex::new(plan.clone()))),
        // The producer had no board but this spec schedules fork roles in
        // its suffix: give them a fresh (empty) board, exactly what a
        // fresh run of this spec would have built at t = 0.
        (None, true) => Some(blackboard()),
        (None, false) => None,
    };
    if let Some(b) = &board {
        // Only committee seats (0..n) carry behaviors; clients have none.
        for i in 0..spec.n {
            sim.replica_mut(NodeId(i)).rebind_behavior_state(b);
        }
    }
    let collusion: HashSet<NodeId> = spec.censor_collusion().into_iter().map(NodeId).collect();
    Built {
        sim,
        board,
        collusion,
        delay,
    }
}

/// The population-generic twin of [`execute_schedule`] with checkpoint
/// capture: after running up to each capture tick (and before applying
/// any events there) the state is offered to `store` under the prefix
/// fingerprint below that tick. Capture ticks are the spec's own event
/// boundaries plus any store-advertised capture hints whose fingerprint
/// matches ([`CheckpointStore::capture_ticks_for`]) — the latter give
/// sibling cells *suffix* captures past this spec's last own event. The
/// capture plan is a pure function of `(spec, hint set)`; store contents
/// only skip the clone, never change where the run pauses (and
/// `run_before` at a non-event tick is state-neutral, so the extra
/// segmentation cannot perturb observables). `resume_from` marks a forked
/// run: events below the resumed boundary are skipped and captures at or
/// below it are suppressed (the store already holds them).
fn execute_schedule_captured<N: CheckpointPop>(
    spec: &ScenarioSpec,
    built: &mut Built<Simulation<N>>,
    resume_from: Option<u64>,
    store: &CheckpointStore,
    seed: u64,
) -> RunOutcome
where
    Simulation<N>: TimelineSim,
{
    let events = ordered_events(spec);
    let mut captures: Vec<u64> = events.iter().map(|&(t, _)| t).filter(|&t| t > 0).collect();
    captures.extend(store.capture_ticks_for(spec));
    captures.sort_unstable();
    captures.dedup();
    if let Some(tc) = resume_from {
        captures.retain(|&t| t > tc);
    }
    let mut i = match resume_from {
        Some(tc) => events.partition_point(|&(t, _)| t < tc),
        None => 0,
    };
    let mut c = 0;
    while i < events.len() || c < captures.len() {
        let tick = match (events.get(i).map(|&(t, _)| t), captures.get(c).copied()) {
            (Some(e), Some(h)) => e.min(h),
            (Some(e), None) => e,
            (None, Some(h)) => h,
            (None, None) => unreachable!("loop condition"),
        };
        if tick > 0 && built.sim.run_before_t(SimTime(tick)) == RunOutcome::EventLimit {
            return RunOutcome::EventLimit;
        }
        if captures.get(c) == Some(&tick) {
            c += 1;
            let fp = prefix_fingerprint(spec, tick);
            // Check-then-clone: the population clone is the expensive
            // part, so skip it when a sibling already captured this
            // boundary. A racing duplicate only refreshes the survivor's
            // LRU stamp (first writer wins).
            if !store.contains(fp, seed, tick) {
                let entry = CheckpointEntry {
                    snapshot: N::capture(&mut built.sim),
                    board: built.board.as_ref().map(|b| b.lock().unwrap().clone()),
                    hooks: prft_sim::obs::hooks::snapshot(),
                    tick,
                };
                store.insert(fp, seed, entry);
            }
        }
        while i < events.len() && events[i].0 == tick {
            apply_event(spec, built, tick, events[i].1);
            i += 1;
        }
    }
    built.sim.run_until_t(SimTime(spec.horizon))
}

/// Mirrors the workload stats into the record's observability registry, so
/// the batch report's `observability` section carries the client-side view
/// next to the protocol counters (counters sum across seeds, latency and
/// occupancy gauges take the worst seed).
fn mirror_workload_obs(rec: &mut RunRecord, stats: &WorkloadRunStats) {
    let obs = &mut rec.obs;
    obs.add("workload.txs_submitted", stats.submitted);
    obs.add("workload.txs_committed", stats.committed);
    obs.add("workload.txs_dropped", stats.dropped);
    obs.add("workload.txs_pending", stats.pending);
    obs.add("workload.retries", stats.retries);
    obs.add("workload.backpressure_rejects", stats.backpressure_rejects);
    obs.add(
        "workload.mempool_rejected_full",
        stats.mempool_rejected_full,
    );
    obs.gauge_max(
        "workload.mempool_peak_occupancy",
        stats.mempool_peak_occupancy,
    );
    obs.gauge_max("workload.latency_p50", stats.latency.p50);
    obs.gauge_max("workload.latency_p90", stats.latency.p90);
    obs.gauge_max("workload.latency_p99", stats.latency.p99);
    obs.gauge_max("workload.latency_max", stats.latency.max);
}

/// Extracts the [`RunRecord`] from a finished simulation (either
/// population; the workload section is attached by [`run_one`], not here).
pub fn summarize<N: Node + AsReplica>(
    spec: &ScenarioSpec,
    sim: &Simulation<N>,
    seed: u64,
    outcome: prft_sim::RunOutcome,
) -> RunRecord {
    let report = analyze(sim);
    let state = classify_sim(spec, sim);
    let utilities = if spec.utility.is_some() {
        (0..spec.n)
            .map(|i| measure_utility_for(spec, sim, state, NodeId(i)))
            .collect()
    } else {
        Vec::new()
    };
    let honest = honest_ids(sim);
    let rounds_entered = honest
        .iter()
        .map(|&id| replica(sim, id).stats().rounds_entered)
        .max()
        .unwrap_or(0);
    // Claim 2 consistency: a round abandoned by any honest player via view
    // change must not be finalized by any honest player.
    let mut vc_consistent = true;
    for &abandoner in &honest {
        for &vc_round in &replica(sim, abandoner).stats().view_changed_rounds {
            for &other in &honest {
                if replica(sim, other)
                    .stats()
                    .finalize_times
                    .iter()
                    .any(|(r, _)| *r == vc_round)
                {
                    vc_consistent = false;
                }
            }
        }
    }
    let txs_included = spec
        .txs
        .iter()
        .map(|tx| tx_included_anywhere(sim, TxId(tx.id)))
        .collect();
    let watched_finalized = spec
        .watched
        .iter()
        .map(|&id| tx_finalized_everywhere(sim, TxId(id)))
        .collect();
    RunRecord {
        seed,
        outcome,
        min_final_height: report.min_final_height,
        max_final_height: report.max_final_height,
        agreement: report.agreement,
        strict_ordering: report.strict_ordering,
        burned: report.burned.iter().map(|id| id.0).collect(),
        view_changes: report.view_changes,
        exposes: report.exposes,
        rounds_entered,
        vc_consistent,
        txs_included,
        watched_finalized,
        sigma: state,
        throughput: prft_core::analysis::throughput(sim),
        total_messages: sim.meter().total_messages(),
        total_bytes: sim.meter().total_bytes(),
        events_dispatched: sim.events_dispatched(),
        peak_queue_depth: sim.peak_queue_depth() as u64,
        in_flight_messages: sim.in_flight_messages() as u64,
        obs: prft_core::obs::collect(sim, &prft_sim::obs::hooks::snapshot()),
        workload: None,
        utilities,
    }
}
