//! Turning a [`ScenarioSpec`] into a live simulation and a finished run
//! into a [`RunRecord`]. This is the one place in the workspace that
//! assembles committees for experiments — the `prft-bench` binaries and the
//! `prft-lab` CLI both come through here.

use crate::record::RunRecord;
use crate::spec::{Role, ScenarioSpec, Synchrony, UtilitySpec};
use prft_adversary::{
    blackboard, Abstain, Blackboard, DoubleVoter, EquivocatingLeader, ForkColluder, GarbageVoter,
    PartialCensor, SilentLeader,
};
use prft_core::analysis::{analyze, honest_ids, tx_finalized_everywhere, tx_included_anywhere};
use prft_core::{BallotAction, Behavior, Config, Harness, NetworkChoice, ProposeAction, Replica};
use prft_game::{PayoffTable, SystemState};
use prft_metrics::{classify, StateObservation};
use prft_net::{PartitionWindow, PartitionedNet};
use prft_sim::{LinkModel, SimTime, Simulation};
use prft_types::{Block, Digest, NodeId, Round, Transaction, TxId};
use std::collections::HashSet;

/// The Claim 2 adversary: silent in every protocol phase but participating
/// in view changes, pressing the committee to abandon rounds.
#[derive(Debug, Default)]
struct VcSpammer;

impl Behavior for VcSpammer {
    fn label(&self) -> &'static str {
        "vc-spammer"
    }
    fn on_propose(&mut self, _round: Round, _b: &Block) -> ProposeAction {
        ProposeAction::Silent
    }
    fn on_vote(&mut self, _r: Round, _v: Digest) -> BallotAction {
        BallotAction::Silent
    }
    fn on_commit(&mut self, _r: Round, _v: Digest) -> BallotAction {
        BallotAction::Silent
    }
    fn on_reveal(&mut self, _r: Round, _v: Digest) -> BallotAction {
        BallotAction::Silent
    }
}

fn network_model(spec: &ScenarioSpec) -> NetworkChoice {
    let base: Box<dyn LinkModel> = match spec.synchrony {
        Synchrony::Synchronous { delta } => Box::new(prft_net::SynchronousNet::new(SimTime(delta))),
        Synchrony::PartiallySynchronous { gst, delta } => Box::new(
            prft_net::PartiallySynchronousNet::new(SimTime(gst), SimTime(delta)),
        ),
        Synchrony::Asynchronous => Box::new(prft_net::AsynchronousNet::typical()),
    };
    if spec.partitions.is_empty() {
        return NetworkChoice::Custom(base);
    }
    let mut net = PartitionedNet::new(base);
    for p in &spec.partitions {
        let groups: Vec<Vec<NodeId>> = p
            .groups
            .iter()
            .map(|g| g.iter().map(|&i| NodeId(i)).collect())
            .collect();
        let window = if p.bridges.is_empty() {
            PartitionWindow::split(SimTime(p.start), SimTime(p.end), groups)
        } else {
            PartitionWindow::split_with_bridges(
                SimTime(p.start),
                SimTime(p.end),
                groups,
                p.bridges.iter().map(|&i| NodeId(i)).collect(),
            )
        };
        net.add_window(window);
    }
    NetworkChoice::Custom(Box::new(net))
}

fn behavior_for(
    spec: &ScenarioSpec,
    role: &Role,
    board: &Option<Blackboard>,
    collusion: &HashSet<NodeId>,
) -> Option<Box<dyn Behavior>> {
    let b_group: HashSet<NodeId> = spec.fork_b_group.iter().map(|&i| NodeId(i)).collect();
    match role {
        Role::Honest | Role::Crash => None,
        Role::Abstain => Some(Box::new(Abstain)),
        Role::PartialCensor => {
            let censor: HashSet<TxId> = spec.censored.iter().map(|&id| TxId(id)).collect();
            Some(Box::new(PartialCensor::new(
                spec.n,
                collusion.clone(),
                censor,
            )))
        }
        Role::ForkColluder => Some(Box::new(ForkColluder::new(
            board.clone().expect("fork role requires blackboard"),
            b_group,
            spec.n,
        ))),
        Role::EquivocatingLeader { only_round } => {
            let leader = EquivocatingLeader::new(
                board.clone().expect("fork role requires blackboard"),
                b_group,
                spec.n,
            );
            Some(Box::new(match only_round {
                Some(r) => leader.only_rounds([Round(*r)]),
                None => leader,
            }))
        }
        Role::GarbageVoter => Some(Box::new(GarbageVoter)),
        Role::DoubleVoter => Some(Box::new(DoubleVoter::new(spec.n))),
        Role::SilentLeader => Some(Box::new(SilentLeader)),
        Role::VcSpammer => Some(Box::new(VcSpammer)),
    }
}

/// Builds the simulation for `spec` under one derived `seed`. Crash roles
/// are applied before returning, so the caller only needs to run it.
pub fn build_sim(spec: &ScenarioSpec, seed: u64) -> Simulation<Replica> {
    let mut cfg = Config::for_committee(spec.n).with_max_rounds(spec.max_rounds);
    if let Some(t) = spec.phase_timeout {
        cfg = cfg.with_timeout(SimTime(t));
    }

    let board = if spec.uses_fork_blackboard() {
        Some(blackboard())
    } else {
        None
    };
    let collusion: HashSet<NodeId> = (0..spec.n)
        .filter(|&i| matches!(spec.role_of(i), Role::PartialCensor))
        .map(NodeId)
        .collect();

    let mut h = Harness::new(spec.n, seed)
        .config(cfg)
        .accountable(spec.accountable)
        .network(network_model(spec));
    if let Some(tau) = spec.tau_override {
        h = h.tau(tau);
    }
    for tx in &spec.txs {
        h = h.submit(
            tx.to.map(NodeId),
            Transaction::new(tx.id, NodeId(tx.to.unwrap_or(0)), tx.payload.clone()),
        );
    }
    let behaviors: Vec<(NodeId, Box<dyn Behavior>)> = (0..spec.n)
        .filter_map(|i| {
            behavior_for(spec, &spec.role_of(i), &board, &collusion).map(|b| (NodeId(i), b))
        })
        .collect();
    let mut sim = h.with_behaviors(behaviors).build();
    for i in 0..spec.n {
        if matches!(spec.role_of(i), Role::Crash) {
            sim.crash(NodeId(i));
        }
    }
    sim
}

/// Classifies the σ state of a finished run, watching `watched` for
/// censorship (the whole-run observation window).
pub fn classify_watched(sim: &Simulation<Replica>, watched: &[TxId]) -> SystemState {
    let honest = honest_ids(sim);
    let chains = honest.iter().map(|&id| sim.node(id).chain()).collect();
    classify(&StateObservation {
        chains,
        watched: watched.to_vec(),
        baseline_height: 0,
    })
}

/// Classifies the σ state of a finished run, watching `spec.watched`.
pub fn classify_sim(spec: &ScenarioSpec, sim: &Simulation<Replica>) -> SystemState {
    let watched: Vec<TxId> = spec.watched.iter().map(|&id| TxId(id)).collect();
    classify_watched(sim, &watched)
}

/// Measures `player`'s discounted utility over a finished run in `state`:
/// `Σ_{r<R} δ^r · f(σ, θ) − L·[player burned]` (the utility stream runs
/// over *time periods*, not protocol progress — a jammed system keeps
/// paying the σ_NP penalty; the penalty applies iff any honest player's
/// ledger burned `player`).
pub fn discounted_utility(
    sim: &Simulation<Replica>,
    state: SystemState,
    player: NodeId,
    u: &UtilitySpec,
) -> f64 {
    let table = PayoffTable::new(u.alpha);
    let per_round = table.f(state, u.theta);
    let mut total = 0.0;
    let mut weight = 1.0;
    for _ in 0..u.rounds {
        total += weight * per_round;
        weight *= u.delta;
    }
    let burned = honest_ids(sim)
        .iter()
        .any(|&id| sim.node(id).collateral().is_burned(player));
    if burned {
        total -= u.penalty_l;
    }
    total
}

/// Measures `player`'s discounted utility with the spec's economics
/// (0 when the spec does not measure utilities).
pub fn measure_utility_for(
    spec: &ScenarioSpec,
    sim: &Simulation<Replica>,
    state: SystemState,
    player: NodeId,
) -> f64 {
    match spec.utility {
        Some(u) => discounted_utility(sim, state, player, &u),
        None => 0.0,
    }
}

/// Builds, runs, and summarizes one seeded run of `spec`.
pub fn run_one(spec: &ScenarioSpec, seed: u64) -> RunRecord {
    let mut sim = build_sim(spec, seed);
    let outcome = sim.run_until(SimTime(spec.horizon));
    summarize(spec, &sim, seed, outcome)
}

/// Extracts the [`RunRecord`] from a finished simulation.
pub fn summarize(
    spec: &ScenarioSpec,
    sim: &Simulation<Replica>,
    seed: u64,
    outcome: prft_sim::RunOutcome,
) -> RunRecord {
    let report = analyze(sim);
    let state = classify_sim(spec, sim);
    let utilities = if spec.utility.is_some() {
        (0..spec.n)
            .map(|i| measure_utility_for(spec, sim, state, NodeId(i)))
            .collect()
    } else {
        Vec::new()
    };
    let honest = honest_ids(sim);
    let rounds_entered = honest
        .iter()
        .map(|&id| sim.node(id).stats().rounds_entered)
        .max()
        .unwrap_or(0);
    // Claim 2 consistency: a round abandoned by any honest player via view
    // change must not be finalized by any honest player.
    let mut vc_consistent = true;
    for &abandoner in &honest {
        for &vc_round in &sim.node(abandoner).stats().view_changed_rounds {
            for &other in &honest {
                if sim
                    .node(other)
                    .stats()
                    .finalize_times
                    .iter()
                    .any(|(r, _)| *r == vc_round)
                {
                    vc_consistent = false;
                }
            }
        }
    }
    let txs_included = spec
        .txs
        .iter()
        .map(|tx| tx_included_anywhere(sim, TxId(tx.id)))
        .collect();
    let watched_finalized = spec
        .watched
        .iter()
        .map(|&id| tx_finalized_everywhere(sim, TxId(id)))
        .collect();
    RunRecord {
        seed,
        outcome,
        min_final_height: report.min_final_height,
        max_final_height: report.max_final_height,
        agreement: report.agreement,
        strict_ordering: report.strict_ordering,
        burned: report.burned.iter().map(|id| id.0).collect(),
        view_changes: report.view_changes,
        exposes: report.exposes,
        rounds_entered,
        vc_consistent,
        txs_included,
        watched_finalized,
        sigma: state,
        throughput: prft_core::analysis::throughput(sim),
        total_messages: sim.meter().total_messages(),
        total_bytes: sim.meter().total_bytes(),
        utilities,
    }
}
