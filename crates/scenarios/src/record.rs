//! Per-run observables and their batch aggregates.

use crate::json::Json;
use prft_game::SystemState;
use prft_sim::{ObsRegistry, RunOutcome};
use prft_workload::WorkloadRunStats;

/// Everything one seeded run produces that experiments read.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The derived simulation seed of this run.
    pub seed: u64,
    /// Why the simulation stopped.
    pub outcome: RunOutcome,
    /// Smallest finalized height among honest players.
    pub min_final_height: u64,
    /// Largest finalized height among honest players.
    pub max_final_height: u64,
    /// Honest finalized prefixes agree (no fork).
    pub agreement: bool,
    /// Full chains satisfy 1-strict ordering pairwise.
    pub strict_ordering: bool,
    /// Players burned in any honest view.
    pub burned: Vec<usize>,
    /// View changes completed across honest replicas.
    pub view_changes: u64,
    /// Valid exposes applied across honest replicas.
    pub exposes: u64,
    /// Largest `rounds_entered` among honest replicas.
    pub rounds_entered: u64,
    /// Claim 2 consistency: no honest player finalized a round another
    /// honest player abandoned via view change.
    pub vc_consistent: bool,
    /// Per-[`crate::TxSpec`] (in spec order): the tx appears in some honest
    /// chain, even tentatively.
    pub txs_included: Vec<bool>,
    /// Per-watched-id (in spec order): the tx is finalized at every honest
    /// player (the censorship-resistance observable).
    pub watched_finalized: Vec<bool>,
    /// The run's σ state.
    pub sigma: SystemState,
    /// Finalized blocks per entered round, averaged over honest replicas.
    pub throughput: f64,
    /// Messages sent during the run.
    pub total_messages: u64,
    /// Wire bytes sent during the run.
    pub total_bytes: u64,
    /// Events the engine dispatched during the run.
    pub events_dispatched: u64,
    /// The deepest the event queue ever got during the run.
    pub peak_queue_depth: u64,
    /// Messages still in flight when the run stopped (nonzero only when
    /// the horizon cut traffic off mid-air).
    pub in_flight_messages: u64,
    /// The run's full observability registry (see `docs/OBSERVABILITY.md`
    /// for the counter catalog). Aggregated into the batch `observability`
    /// section; not serialized per run.
    pub obs: ObsRegistry,
    /// The client-workload view of the run (`Some` only when the spec
    /// carries a workload section): conservation counters and the
    /// submit→commit latency summary in virtual time.
    pub workload: Option<WorkloadRunStats>,
    /// Per-player discounted utilities (empty unless the spec asks).
    pub utilities: Vec<f64>,
}

/// JSON object for one run's workload stats.
fn workload_json(w: &WorkloadRunStats) -> Json {
    Json::obj([
        ("clients", Json::u64(w.clients)),
        ("submitted", Json::u64(w.submitted)),
        ("committed", Json::u64(w.committed)),
        ("dropped", Json::u64(w.dropped)),
        ("pending", Json::u64(w.pending)),
        ("retries", Json::u64(w.retries)),
        ("backpressure_rejects", Json::u64(w.backpressure_rejects)),
        ("mempool_rejected_full", Json::u64(w.mempool_rejected_full)),
        (
            "mempool_peak_occupancy",
            Json::u64(w.mempool_peak_occupancy),
        ),
        (
            "latency",
            Json::obj([
                ("count", Json::u64(w.latency.count)),
                ("p50", Json::u64(w.latency.p50)),
                ("p90", Json::u64(w.latency.p90)),
                ("p99", Json::u64(w.latency.p99)),
                ("max", Json::u64(w.latency.max)),
                ("mean", Json::u64(w.latency.mean())),
            ]),
        ),
    ])
}

impl RunRecord {
    /// Stable string name for the run outcome.
    pub fn outcome_str(&self) -> &'static str {
        match self.outcome {
            RunOutcome::Quiescent => "quiescent",
            RunOutcome::HorizonReached => "horizon",
            RunOutcome::EventLimit => "event-limit",
        }
    }

    /// JSON object for one run. The `workload` object appears only when
    /// the run carried one, so non-workload reports stay byte-identical to
    /// the previous schema.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seed", Json::u64(self.seed)),
            ("outcome", Json::str(self.outcome_str())),
            ("min_final_height", Json::u64(self.min_final_height)),
            ("max_final_height", Json::u64(self.max_final_height)),
            ("agreement", Json::Bool(self.agreement)),
            ("strict_ordering", Json::Bool(self.strict_ordering)),
            (
                "burned",
                Json::Arr(self.burned.iter().map(|&b| Json::u64(b as u64)).collect()),
            ),
            ("view_changes", Json::u64(self.view_changes)),
            ("exposes", Json::u64(self.exposes)),
            ("rounds_entered", Json::u64(self.rounds_entered)),
            ("vc_consistent", Json::Bool(self.vc_consistent)),
            (
                "txs_included",
                Json::Arr(self.txs_included.iter().map(|&b| Json::Bool(b)).collect()),
            ),
            (
                "watched_finalized",
                Json::Arr(
                    self.watched_finalized
                        .iter()
                        .map(|&b| Json::Bool(b))
                        .collect(),
                ),
            ),
            ("sigma", Json::str(self.sigma.symbol())),
            ("throughput", Json::Num(self.throughput)),
            ("total_messages", Json::u64(self.total_messages)),
            ("total_bytes", Json::u64(self.total_bytes)),
            ("events_dispatched", Json::u64(self.events_dispatched)),
            ("peak_queue_depth", Json::u64(self.peak_queue_depth)),
            ("in_flight_messages", Json::u64(self.in_flight_messages)),
        ];
        if let Some(w) = &self.workload {
            fields.push(("workload", workload_json(w)));
        }
        fields.push((
            "utilities",
            Json::Arr(self.utilities.iter().map(|&u| Json::Num(u)).collect()),
        ));
        Json::obj(fields)
    }
}

/// JSON object for an observability registry: counters then gauges, each
/// alphabetical by key — deterministic by construction.
pub fn obs_to_json(reg: &ObsRegistry) -> Json {
    Json::obj([
        (
            "counters",
            Json::obj(
                reg.counters()
                    .map(|(k, v)| (k.to_string(), Json::u64(v)))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "gauges",
            Json::obj(
                reg.gauges()
                    .map(|(k, v)| (k.to_string(), Json::u64(v)))
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

/// Mean / min / max / standard deviation / 95% CI over one metric.
///
/// Always computed over the batch in seed-index order, so a parallel sweep
/// and a serial sweep aggregate in the same floating-point order and
/// produce byte-identical values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Normal-approximation 95% confidence half-width (1.96·σ/√count).
    pub ci95: f64,
}

impl Aggregate {
    /// Aggregates `values` in the order given.
    pub fn over(values: &[f64]) -> Aggregate {
        if values.is_empty() {
            return Aggregate {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let n = values.len() as f64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        let mean = sum / n;
        let mut var = 0.0;
        for &v in values {
            var += (v - mean) * (v - mean);
        }
        var /= n;
        let std_dev = var.sqrt();
        Aggregate {
            count: values.len(),
            mean,
            min,
            max,
            std_dev,
            ci95: 1.96 * std_dev / n.sqrt(),
        }
    }

    /// JSON object for this aggregate.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::u64(self.count as u64)),
            ("mean", Json::Num(self.mean)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
            ("std_dev", Json::Num(self.std_dev)),
            ("ci95", Json::Num(self.ci95)),
        ])
    }
}

/// Per-seed workload aggregates for one grid point: conservation counters
/// and latency percentiles, each aggregated over the batch in seed-index
/// order (a percentile's aggregate is over the per-run percentile values,
/// not a re-ranking of the pooled latencies — runs stay the unit).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadAggregates {
    /// Client population size (constant across seeds of a grid point).
    pub clients: u64,
    /// Transactions submitted per run.
    pub submitted: Aggregate,
    /// Transactions committed (acked) per run.
    pub committed: Aggregate,
    /// Transactions dropped per run (retry budget exhausted / reject-drop).
    pub dropped: Aggregate,
    /// Transactions still pending at the horizon per run.
    pub pending: Aggregate,
    /// Retry sends per run.
    pub retries: Aggregate,
    /// Backpressure rejection acks received per run.
    pub backpressure_rejects: Aggregate,
    /// Mempool capacity rejections across replicas per run.
    pub mempool_rejected_full: Aggregate,
    /// Mempool occupancy high-water (max over replicas) per run.
    pub mempool_peak_occupancy: Aggregate,
    /// p50 submit→commit latency per run, in virtual-time ticks.
    pub latency_p50: Aggregate,
    /// p90 submit→commit latency per run.
    pub latency_p90: Aggregate,
    /// p99 submit→commit latency per run.
    pub latency_p99: Aggregate,
    /// Worst submit→commit latency per run.
    pub latency_max: Aggregate,
}

impl WorkloadAggregates {
    /// Aggregates the workload sections of `records`; `None` when any run
    /// lacks one (mixed batches never happen — the workload section is a
    /// property of the spec, not the seed).
    fn from_records(records: &[RunRecord]) -> Option<WorkloadAggregates> {
        if records.is_empty() || records.iter().any(|r| r.workload.is_none()) {
            return None;
        }
        let w = |f: &dyn Fn(&WorkloadRunStats) -> f64| {
            Aggregate::over(
                &records
                    .iter()
                    .map(|r| f(r.workload.as_ref().expect("checked above")))
                    .collect::<Vec<_>>(),
            )
        };
        Some(WorkloadAggregates {
            clients: records[0].workload.as_ref().expect("checked above").clients,
            submitted: w(&|s| s.submitted as f64),
            committed: w(&|s| s.committed as f64),
            dropped: w(&|s| s.dropped as f64),
            pending: w(&|s| s.pending as f64),
            retries: w(&|s| s.retries as f64),
            backpressure_rejects: w(&|s| s.backpressure_rejects as f64),
            mempool_rejected_full: w(&|s| s.mempool_rejected_full as f64),
            mempool_peak_occupancy: w(&|s| s.mempool_peak_occupancy as f64),
            latency_p50: w(&|s| s.latency.p50 as f64),
            latency_p90: w(&|s| s.latency.p90 as f64),
            latency_p99: w(&|s| s.latency.p99 as f64),
            latency_max: w(&|s| s.latency.max as f64),
        })
    }

    /// JSON object for these aggregates.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("clients", Json::u64(self.clients)),
            ("submitted", self.submitted.to_json()),
            ("committed", self.committed.to_json()),
            ("dropped", self.dropped.to_json()),
            ("pending", self.pending.to_json()),
            ("retries", self.retries.to_json()),
            ("backpressure_rejects", self.backpressure_rejects.to_json()),
            (
                "mempool_rejected_full",
                self.mempool_rejected_full.to_json(),
            ),
            (
                "mempool_peak_occupancy",
                self.mempool_peak_occupancy.to_json(),
            ),
            ("latency_p50", self.latency_p50.to_json()),
            ("latency_p90", self.latency_p90.to_json()),
            ("latency_p99", self.latency_p99.to_json()),
            ("latency_max", self.latency_max.to_json()),
        ])
    }
}

/// Aggregated report for one grid point of a scenario, over all its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Grid-point label from the spec.
    pub label: String,
    /// Committee size.
    pub n: usize,
    /// Number of seeded runs aggregated.
    pub seeds: u64,
    /// Fraction of runs keeping agreement.
    pub agreement_rate: f64,
    /// Fraction of runs keeping 1-strict ordering.
    pub strict_ordering_rate: f64,
    /// Fraction of runs satisfying Claim 2 view-change consistency.
    pub vc_consistent_rate: f64,
    /// σ-state histogram in [`SystemState::ALL`] order (NP, CP, Fork, σ_0).
    pub sigma_hist: [u64; 4],
    /// Finalized-height aggregate (min over honest players, per run).
    pub min_final_height: Aggregate,
    /// Throughput aggregate.
    pub throughput: Aggregate,
    /// Rounds-entered aggregate (max over honest players, per run).
    pub rounds_entered: Aggregate,
    /// View-change aggregate.
    pub view_changes: Aggregate,
    /// Expose aggregate.
    pub exposes: Aggregate,
    /// Burned-player-count aggregate.
    pub burned_players: Aggregate,
    /// Message-count aggregate.
    pub total_messages: Aggregate,
    /// Wire-byte aggregate.
    pub total_bytes: Aggregate,
    /// Engine events-dispatched aggregate.
    pub events_dispatched: Aggregate,
    /// Queue-depth high-water aggregate.
    pub peak_queue_depth: Aggregate,
    /// End-of-run in-flight-message aggregate.
    pub in_flight_messages: Aggregate,
    /// The merged observability registry over all runs (counters summed,
    /// gauges maxed — order-independent, so byte-identical at any thread
    /// count and across queue backends).
    pub observability: ObsRegistry,
    /// Workload aggregates (`Some` only when the spec carries a workload
    /// section — every seed of the batch then has per-run stats).
    pub workload: Option<WorkloadAggregates>,
    /// Per-player utility aggregates (one per player index; empty unless
    /// the spec measures utilities).
    pub utilities: Vec<Aggregate>,
    /// The per-run records, in seed-index order.
    pub records: Vec<RunRecord>,
}

impl BatchReport {
    /// Aggregates `records` (already in seed-index order) for `label`.
    pub fn from_records(label: String, n: usize, records: Vec<RunRecord>) -> BatchReport {
        let count = records.len().max(1) as f64;
        let rate =
            |f: &dyn Fn(&RunRecord) -> bool| records.iter().filter(|r| f(r)).count() as f64 / count;
        let agg = |f: &dyn Fn(&RunRecord) -> f64| {
            Aggregate::over(&records.iter().map(f).collect::<Vec<_>>())
        };
        let mut sigma_hist = [0u64; 4];
        for r in &records {
            let idx = SystemState::ALL
                .iter()
                .position(|s| *s == r.sigma)
                .expect("state in ALL");
            sigma_hist[idx] += 1;
        }
        let players = records.first().map_or(0, |r| r.utilities.len());
        let utilities = (0..players)
            .map(|p| agg(&|r: &RunRecord| r.utilities[p]))
            .collect();
        let mut observability = ObsRegistry::new();
        for r in &records {
            observability.merge(&r.obs);
        }
        let workload = WorkloadAggregates::from_records(&records);
        BatchReport {
            label,
            n,
            seeds: records.len() as u64,
            agreement_rate: rate(&|r| r.agreement),
            strict_ordering_rate: rate(&|r| r.strict_ordering),
            vc_consistent_rate: rate(&|r| r.vc_consistent),
            sigma_hist,
            min_final_height: agg(&|r| r.min_final_height as f64),
            throughput: agg(&|r| r.throughput),
            rounds_entered: agg(&|r| r.rounds_entered as f64),
            view_changes: agg(&|r| r.view_changes as f64),
            exposes: agg(&|r| r.exposes as f64),
            burned_players: agg(&|r| r.burned.len() as f64),
            total_messages: agg(&|r| r.total_messages as f64),
            total_bytes: agg(&|r| r.total_bytes as f64),
            events_dispatched: agg(&|r| r.events_dispatched as f64),
            peak_queue_depth: agg(&|r| r.peak_queue_depth as f64),
            in_flight_messages: agg(&|r| r.in_flight_messages as f64),
            observability,
            workload,
            utilities,
            records,
        }
    }

    /// The modal σ state of the batch (ties break toward severity).
    pub fn modal_sigma(&self) -> SystemState {
        let (idx, _) = self
            .sigma_hist
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, usize::MAX - i))
            .expect("four states");
        SystemState::ALL[idx]
    }

    /// JSON object for this batch (aggregates plus per-run records). The
    /// `workload` section appears only when the batch carried one.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("label", Json::str(&self.label)),
            ("n", Json::u64(self.n as u64)),
            ("seeds", Json::u64(self.seeds)),
            ("agreement_rate", Json::Num(self.agreement_rate)),
            ("strict_ordering_rate", Json::Num(self.strict_ordering_rate)),
            ("vc_consistent_rate", Json::Num(self.vc_consistent_rate)),
            (
                "sigma_hist",
                Json::obj(
                    SystemState::ALL
                        .iter()
                        .zip(self.sigma_hist.iter())
                        .map(|(s, &c)| (s.symbol(), Json::u64(c)))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("min_final_height", self.min_final_height.to_json()),
            ("throughput", self.throughput.to_json()),
            ("rounds_entered", self.rounds_entered.to_json()),
            ("view_changes", self.view_changes.to_json()),
            ("exposes", self.exposes.to_json()),
            ("burned_players", self.burned_players.to_json()),
            ("total_messages", self.total_messages.to_json()),
            ("total_bytes", self.total_bytes.to_json()),
            ("events_dispatched", self.events_dispatched.to_json()),
            ("peak_queue_depth", self.peak_queue_depth.to_json()),
            ("in_flight_messages", self.in_flight_messages.to_json()),
            ("observability", obs_to_json(&self.observability)),
        ];
        if let Some(w) = &self.workload {
            fields.push(("workload", w.to_json()));
        }
        fields.push((
            "utilities",
            Json::Arr(self.utilities.iter().map(Aggregate::to_json).collect()),
        ));
        fields.push((
            "runs",
            Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
        ));
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64, height: u64, sigma: SystemState) -> RunRecord {
        RunRecord {
            seed,
            outcome: RunOutcome::Quiescent,
            min_final_height: height,
            max_final_height: height,
            agreement: true,
            strict_ordering: true,
            burned: vec![],
            view_changes: 0,
            exposes: 0,
            rounds_entered: height,
            vc_consistent: true,
            txs_included: vec![],
            watched_finalized: vec![],
            sigma,
            throughput: 1.0,
            total_messages: 10,
            total_bytes: 100,
            events_dispatched: 20,
            peak_queue_depth: 5,
            in_flight_messages: 0,
            obs: ObsRegistry::new(),
            workload: None,
            utilities: vec![],
        }
    }

    #[test]
    fn aggregate_basics() {
        let a = Aggregate::over(&[1.0, 2.0, 3.0]);
        assert_eq!(a.count, 3);
        assert_eq!(a.mean, 2.0);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert!(a.std_dev > 0.8 && a.std_dev < 0.9);
        let empty = Aggregate::over(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn histogram_and_modal_state() {
        let report = BatchReport::from_records(
            "x".into(),
            4,
            vec![
                record(0, 3, SystemState::HonestExecution),
                record(1, 3, SystemState::HonestExecution),
                record(2, 0, SystemState::NoProgress),
            ],
        );
        assert_eq!(report.sigma_hist, [1, 0, 0, 2]);
        assert_eq!(report.modal_sigma(), SystemState::HonestExecution);
        assert_eq!(report.agreement_rate, 1.0);
        assert_eq!(report.min_final_height.mean, 2.0);
    }
}
