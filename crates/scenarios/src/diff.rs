//! Tolerance-aware comparison of two report documents
//! (`prft-lab diff a.json b.json`).
//!
//! The determinism contract pins reports byte-identical across `--threads`,
//! queue backends, and verify modes — for those, `--eps 0` (the default)
//! and any drift is a bug. The tolerance exists for the *other* use: diffing
//! reports across code revisions or parameter tweaks, where counters are
//! expected to move a little and the question is "did anything move more
//! than ε?". Numeric leaves compare within a relative-or-absolute ε band;
//! everything else (strings, booleans, structure, key sets) must match
//! exactly. Array elements pair up by index — reports are deterministic, so
//! reordering *is* a difference.

use crate::json::Json;

/// One place two documents disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path from the document root, array steps as `[i]`
    /// (e.g. `reports[0].aggregates.committed_height.mean`).
    pub path: String,
    /// What disagrees there, human-readable.
    pub detail: String,
}

impl DiffEntry {
    fn new(path: &str, detail: String) -> Self {
        DiffEntry {
            path: if path.is_empty() {
                "$".into()
            } else {
                path.into()
            },
            detail,
        }
    }
}

/// Compares two parsed documents. Numbers match when
/// `|a - b| <= eps * max(1, |a|, |b|)` — a relative band that degrades to
/// absolute near zero, so `--eps 0.01` means "within 1%" for large
/// aggregates and "within 0.01" for values under one. Returns every
/// disagreement, in document order; empty means the reports agree.
pub fn diff(a: &Json, b: &Json, eps: f64) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    walk(a, b, eps, "", &mut out);
    out
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::UInt(_) | Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::UInt(u) => Some(*u as f64),
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

fn numbers_match(x: f64, y: f64, eps: f64) -> bool {
    if x == y {
        return true; // covers infinities of the same sign
    }
    if !x.is_finite() || !y.is_finite() {
        return false; // NaN or mismatched infinities never match
    }
    (x - y).abs() <= eps * x.abs().max(y.abs()).max(1.0)
}

fn child_path(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn walk(a: &Json, b: &Json, eps: f64, path: &str, out: &mut Vec<DiffEntry>) {
    // Numbers first: UInt vs Num is a representation detail, not a diff.
    if let (Some(x), Some(y)) = (as_f64(a), as_f64(b)) {
        if !numbers_match(x, y, eps) {
            let delta = y - x;
            out.push(DiffEntry::new(
                path,
                format!(
                    "{} != {} (delta {delta:+}, eps {eps})",
                    a.render(),
                    b.render()
                ),
            ));
        }
        return;
    }
    match (a, b) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(x), Json::Bool(y)) => {
            if x != y {
                out.push(DiffEntry::new(path, format!("{x} != {y}")));
            }
        }
        (Json::Str(x), Json::Str(y)) => {
            if x != y {
                out.push(DiffEntry::new(path, format!("{x:?} != {y:?}")));
            }
        }
        (Json::Arr(xs), Json::Arr(ys)) => {
            if xs.len() != ys.len() {
                out.push(DiffEntry::new(
                    path,
                    format!("array length {} != {}", xs.len(), ys.len()),
                ));
            }
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                walk(x, y, eps, &format!("{path}[{i}]"), out);
            }
        }
        (Json::Obj(xs), Json::Obj(ys)) => {
            for (k, x) in xs {
                match ys.iter().find(|(yk, _)| yk == k) {
                    Some((_, y)) => walk(x, y, eps, &child_path(path, k), out),
                    None => out.push(DiffEntry::new(
                        &child_path(path, k),
                        "only in first report".to_string(),
                    )),
                }
            }
            for (k, _) in ys {
                if !xs.iter().any(|(xk, _)| xk == k) {
                    out.push(DiffEntry::new(
                        &child_path(path, k),
                        "only in second report".to_string(),
                    ));
                }
            }
        }
        _ => out.push(DiffEntry::new(
            path,
            format!("type mismatch: {} != {}", type_name(a), type_name(b)),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn identical_documents_produce_no_entries() {
        let doc = parse(r#"{"a": 1, "b": {"c": [1, 2.5, "x"]}}"#);
        assert!(diff(&doc, &doc, 0.0).is_empty());
    }

    #[test]
    fn eps_zero_flags_any_numeric_drift() {
        let a = parse(r#"{"m": 100}"#);
        let b = parse(r#"{"m": 100.000001}"#);
        let d = diff(&a, &b, 0.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "m");
    }

    #[test]
    fn eps_band_is_relative_above_one_absolute_below() {
        let a = parse(r#"{"big": 1000, "small": 0.001}"#);
        let b = parse(r#"{"big": 1005, "small": 0.005}"#);
        assert!(diff(&a, &b, 0.01).is_empty(), "within 1% / 0.01");
        assert_eq!(diff(&a, &b, 1e-6).len(), 2, "tighter eps flags both");
    }

    #[test]
    fn uint_and_num_compare_numerically() {
        let a = Json::obj([("n", Json::u64(4))]);
        let b = Json::obj([("n", Json::Num(4.0))]);
        assert!(diff(&a, &b, 0.0).is_empty());
    }

    #[test]
    fn missing_keys_and_type_mismatches_are_reported_with_paths() {
        let a = parse(r#"{"x": {"y": 1, "gone": 2}, "arr": [1, 2]}"#);
        let b = parse(r#"{"x": {"y": "1"}, "arr": [1], "new": true}"#);
        let d = diff(&a, &b, 0.0);
        let paths: Vec<&str> = d.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"x.y"), "type mismatch surfaced: {paths:?}");
        assert!(paths.contains(&"x.gone"));
        assert!(paths.contains(&"arr"));
        assert!(paths.contains(&"new"));
    }

    #[test]
    fn strings_and_bools_never_get_tolerance() {
        let a = parse(r#"{"s": "abc", "b": true}"#);
        let b = parse(r#"{"s": "abd", "b": false}"#);
        assert_eq!(diff(&a, &b, 1e9).len(), 2);
    }
}
