//! Chrome-trace export for scenario runs (`prft-lab run --trace-out`).
//!
//! A trace is always produced from **one** seeded run with delivery
//! tracing enabled — batch aggregation makes no sense for a timeline. The
//! run is rebuilt from the spec with the same derived seed the batch
//! runner would use, so the exported spans correspond exactly to seed
//! index 0 of the report next to it.

use crate::build::run_sim;
use crate::spec::ScenarioSpec;
use prft_sim::ChromeTrace;

/// Runs one traced simulation of `spec` at `seed` and assembles its
/// Chrome-trace document: per-replica phase spans plus message-delivery
/// instants. Render with [`ChromeTrace::render`] and open the file in
/// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn chrome_trace_for(spec: &ScenarioSpec, seed: u64) -> ChromeTrace {
    let (sim, _outcome) = run_sim(spec, seed, |sim| sim.set_tracing(true));
    prft_core::obs::chrome_trace(&sim)
}
