//! The named game registry for `prft-lab explore`: every equilibrium
//! experiment the repo sweeps, declared as a [`GameDef`] over the scenario
//! vocabulary.
//!
//! The paper's 3×3×3 Lemma 4 game lives here next to strictly larger
//! spaces (4 strategies per player) and an analytic TRAP game — the
//! explorer does not care how big the space is, only how profiles map to
//! specs.

use crate::explore::{GameDef, GameEval};
use crate::spec::{PartitionSpec, Role, ScenarioSpec, TimelineEvent, UtilitySpec};
use prft_baselines::trap::{TrapGame, TrapStrategy};
use prft_game::{Profile, Theta, UtilityParams};

/// Committee size of the Lemma 4 games: t0 = 2, quorum 7; k = 3, t = 1 ⇒
/// k + t = 4 < n/2.
const LEMMA4_N: usize = 9;

/// The Lemma 4 committee for one profile: byzantine seat 0 equivocates
/// whenever anyone forks; rational seats 1–3 play the profile. Strategy
/// indices: 0 = π_0, 1 = π_abs, 2 = π_fork, 3 = crash (wide game only).
fn lemma4_spec(profile: &Profile) -> ScenarioSpec {
    let anyone_forks = profile.contains(&2);
    let mut spec = ScenarioSpec::new(format!("{profile:?}"), LEMMA4_N, 3)
        .base_seed(71)
        .fork_b_group([7, 8])
        .utility(UtilitySpec::standard(Theta::ForkSeeking, 3))
        .horizon(600_000);
    if anyone_forks {
        spec = spec.role(0, Role::EquivocatingLeader { only_round: None });
    }
    for (i, &s) in profile.iter().enumerate() {
        spec = match s {
            0 => spec,
            1 => spec.role(1 + i, Role::Abstain),
            2 => spec.role(1 + i, Role::ForkColluder),
            3 => spec.role(1 + i, Role::Crash),
            _ => unreachable!("strategy out of range"),
        };
    }
    spec
}

/// The defection game over the Lemma 4 committee: every rational seat
/// starts as a fork colluder next to an always-equivocating leader, and
/// each chooses between *staying* in the collusion and *defecting* to
/// `π_0` at tick 10 — a strategy only the spec-v2 timeline can express
/// (a `SetRole` scheduled mid-attack). Tick 10 lands inside round 0,
/// after the equivocating propose but (for most delay draws) before the
/// colluders' split commit: a defector usually escapes the double-sign
/// and with it the collateral burn. This is the paper's "colluders defect
/// mid-stream" question as an empirical game.
fn fork_defection_spec(profile: &Profile) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(format!("{profile:?}"), LEMMA4_N, 3)
        .base_seed(0xdefec7)
        .role(0, Role::EquivocatingLeader { only_round: None })
        .roles(1..=3, Role::ForkColluder)
        .fork_b_group([7, 8])
        .utility(UtilitySpec::standard(Theta::ForkSeeking, 3))
        .horizon(600_000);
    for (i, &s) in profile.iter().enumerate() {
        if s == 1 {
            spec = spec.at(10, TimelineEvent::SetRole(1 + i, Role::Honest));
        }
    }
    spec
}

/// The four σ-inducing coalition scripts behind Table 2, as one-axis
/// profiles: 0 = honest (σ_0), 1 = abstention (σ_NP), 2 = censorship
/// (σ_CP), 3 = fork under a broken τ (σ_Fork — pRFT's own τ never forks,
/// so this script runs outside Claim 1's safe window).
fn table2_spec(profile: &Profile) -> ScenarioSpec {
    match profile[0] {
        0 => ScenarioSpec::new("σ_0", 8, 4)
            .base_seed(1)
            .utility(UtilitySpec::standard(Theta::ForkSeeking, 4)),
        1 => ScenarioSpec::new("σ_NP", 8, 4)
            .base_seed(2)
            .roles([6, 7], Role::Abstain)
            .utility(UtilitySpec::standard(Theta::ForkSeeking, 4))
            .horizon(100_000),
        2 => ScenarioSpec::new("σ_CP", 4, 8)
            .base_seed(3)
            .roles([0, 1], Role::PartialCensor)
            .tx(99, None, b"censored")
            .tx(1, None, b"ok")
            .watch([99])
            .censor([99])
            .utility(UtilitySpec::standard(Theta::ForkSeeking, 8)),
        3 => {
            let n = 10;
            ScenarioSpec::new("σ_Fork", n, 1)
                .base_seed(14)
                .tau(6)
                .partition(PartitionSpec {
                    start: 0,
                    end: 50_000,
                    groups: vec![(3..6).collect(), (6..n).collect()],
                    bridges: vec![0, 1, 2],
                })
                .role(
                    0,
                    Role::EquivocatingLeader {
                        only_round: Some(0),
                    },
                )
                .roles([1, 2], Role::ForkColluder)
                .fork_b_group(6..n)
                .utility(UtilitySpec::standard(Theta::ForkSeeking, 1))
                .horizon(40_000)
        }
        _ => unreachable!("strategy out of range"),
    }
}

/// The symmetric abstention game: seats 5–7 of an n = 8 committee (t0 = 2,
/// quorum 7 — never leaders inside the 2-round budget) each choose
/// {π_0, π_abs}. Utilities depend only on *how many* abstain, so the seats
/// are interchangeable and the declared symmetry cuts 8 profiles to 4.
fn abstain_quorum_spec(profile: &Profile) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(format!("{profile:?}"), 8, 2)
        .base_seed(0xab5)
        .utility(UtilitySpec::standard(Theta::LivenessAttacking, 2))
        .horizon(150_000);
    for (i, &s) in profile.iter().enumerate() {
        if s == 1 {
            spec = spec.role(5 + i, Role::Abstain);
        }
    }
    spec
}

/// TRAP's Theorem 3 game at n = 20, t = 6, k = 3 with the paper's
/// economics (G = 8, R = 2, L = 10): closed-form, fully symmetric.
fn trap_eval(profile: &Profile) -> (Vec<f64>, prft_game::SystemState) {
    let params = UtilityParams {
        gain_g: 8.0,
        reward_r: 2.0,
        penalty_l: 10.0,
        ..UtilityParams::default()
    };
    let game = TrapGame::new(20, 6, 3, params);
    let strategies = [TrapStrategy::Fork, TrapStrategy::Bait];
    let chosen: Vec<TrapStrategy> = profile.iter().map(|&i| strategies[i]).collect();
    let outcome = game.play(&chosen);
    (outcome.utilities, outcome.state)
}

/// Builds the full game registry.
pub fn game_registry() -> Vec<GameDef> {
    vec![
        GameDef {
            name: "lemma4-dsic",
            cache_scope: "lemma4",
            description:
                "Lemma 4: rational seats 1-3 choose {π_0, π_abs, π_fork} vs an equivocating leader (27 profiles)",
            strategies: vec![vec!["π_0", "π_abs", "π_fork"]; 3],
            // Seats 1-3 are NOT symmetric: the leader schedule reaches
            // seats 1 and 2 inside the 3-round budget but never seat 3.
            symmetry: vec![],
            honest: vec![0, 0, 0],
            eval: GameEval::Simulated {
                players: vec![1, 2, 3],
                spec_of: lemma4_spec,
            },
        },
        GameDef {
            name: "lemma4-wide",
            cache_scope: "lemma4",
            description:
                "the Lemma 4 game widened to 4 strategies per player — {π_0, π_abs, π_fork, crash} (64 profiles)",
            strategies: vec![vec!["π_0", "π_abs", "π_fork", "crash"]; 3],
            symmetry: vec![],
            honest: vec![0, 0, 0],
            eval: GameEval::Simulated {
                players: vec![1, 2, 3],
                spec_of: lemma4_spec,
            },
        },
        GameDef {
            name: "table2-sigma",
            cache_scope: "table2-sigma",
            description:
                "Table 2: one axis of four coalition scripts driving the system into each σ state",
            strategies: vec![vec!["σ_0", "σ_NP", "σ_CP", "σ_Fork"]],
            symmetry: vec![],
            honest: vec![0],
            eval: GameEval::Simulated {
                players: vec![3],
                spec_of: table2_spec,
            },
        },
        GameDef {
            name: "abstain-quorum",
            cache_scope: "abstain-quorum",
            description:
                "symmetric abstention game: three interchangeable seats choose {π_0, π_abs} (8 profiles, 4 evaluated)",
            strategies: vec![vec!["π_0", "π_abs"]; 3],
            symmetry: vec![vec![0, 1, 2]],
            honest: vec![0, 0, 0],
            eval: GameEval::Simulated {
                players: vec![5, 6, 7],
                spec_of: abstain_quorum_spec,
            },
        },
        GameDef {
            name: "fork-defection",
            cache_scope: "fork-defection",
            description:
                "timeline game: three colluding seats each choose {stay π_fork, defect to π_0 @ t=10} mid-attack (8 profiles)",
            strategies: vec![vec!["π_fork", "π_fork→π_0"]; 3],
            // Same committee as lemma4: the leader schedule breaks seat
            // interchangeability, so the space is swept in full.
            symmetry: vec![],
            honest: vec![1, 1, 1],
            eval: GameEval::Simulated {
                players: vec![1, 2, 3],
                spec_of: fork_defection_spec,
            },
        },
        GameDef {
            name: "trap-k3",
            cache_scope: "trap-k3",
            description:
                "Theorem 3 (analytic): TRAP's k = 3 collusion chooses {π_fork, π_bait} inside the tolerated regime",
            strategies: vec![vec!["π_fork", "π_bait"]; 3],
            symmetry: vec![vec![0, 1, 2]],
            honest: vec![1, 1, 1],
            eval: GameEval::Analytic(trap_eval),
        },
        GameDef {
            name: "matching-pennies",
            cache_scope: "matching-pennies",
            description:
                "analytic 2×2 reference: zero-sum matching game with no pure NE and the unique mixed NE (1/2, 1/2)",
            strategies: vec![vec!["heads", "tails"]; 2],
            symmetry: vec![],
            honest: vec![0, 0],
            eval: GameEval::Analytic(|p| {
                let win = if p[0] == p[1] { 1.0 } else { -1.0 };
                (vec![win, -win], prft_game::SystemState::HonestExecution)
            }),
        },
    ]
}

/// Looks a game up by name.
pub fn find_game(name: &str) -> Option<GameDef> {
    game_registry().into_iter().find(|g| g.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let reg = game_registry();
        let mut names: Vec<_> = reg.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
        assert!(find_game("lemma4-dsic").is_some());
        assert!(find_game("no-such-game").is_none());
        // The acceptance criterion: a strictly larger sweep exists.
        let wide = find_game("lemma4-wide").unwrap();
        assert!(wide.strategies.iter().all(|s| s.len() >= 4));
        assert_eq!(wide.space(true).len(), 64);
    }

    #[test]
    fn specs_are_deterministic_and_measured() {
        for game in game_registry() {
            if let GameEval::Simulated { spec_of, players } = &game.eval {
                let space = game.space(false);
                for profile in space.profiles() {
                    let spec = spec_of(&profile);
                    assert!(spec.utility.is_some(), "{}: {profile:?}", game.name);
                    assert_eq!(spec.fingerprint(), spec_of(&profile).fingerprint());
                    for &seat in players {
                        assert!(seat < spec.n, "{}: seat {seat}", game.name);
                    }
                }
            }
        }
    }

    #[test]
    fn fork_defection_profiles_differ_only_in_their_schedules() {
        let game = find_game("fork-defection").unwrap();
        let GameEval::Simulated { spec_of, .. } = game.eval else {
            panic!("simulated game");
        };
        let stay = spec_of(&vec![0, 0, 0]);
        let defect = spec_of(&vec![1, 1, 1]);
        assert!(!stay.has_schedule());
        assert_eq!(defect.schedule.len(), 3);
        // The schedule alone must separate the cache cells.
        assert_eq!(stay.roles, defect.roles);
        assert_ne!(
            ScenarioSpec {
                label: String::new(),
                ..stay
            }
            .fingerprint(),
            ScenarioSpec {
                label: String::new(),
                ..defect
            }
            .fingerprint()
        );
    }

    #[test]
    fn profile_labels_render() {
        let g = find_game("lemma4-dsic").unwrap();
        assert_eq!(g.profile_label(&vec![0, 1, 2]), "(π_0, π_abs, π_fork)");
    }
}
