//! The `prft-lab` CLI: list and run registered scenarios.
//!
//! ```text
//! prft-lab list
//! prft-lab run <scenario> [--seeds N] [--threads T]
//!                         [--format table|json|csv] [--out FILE] [--runs]
//! prft-lab run-all [--seeds N] [--threads T]
//! ```
//!
//! Aggregates are independent of `--threads`: `--threads 1` and
//! `--threads 8` emit byte-identical JSON.

use prft_lab::{registry, report, BatchRunner, Scenario};
use std::process::ExitCode;

struct Options {
    seeds: u64,
    threads: usize,
    format: Format,
    out: Option<String>,
    include_runs: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Json,
    Csv,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: prft-lab <command>\n\
         \n\
         commands:\n\
         \x20 list                      list registered scenarios\n\
         \x20 run <scenario> [options]  run one scenario's grid\n\
         \x20 run-all [options]         run every registered scenario\n\
         \n\
         options:\n\
         \x20 --seeds N      seeded runs per grid point (default 16)\n\
         \x20 --threads T    worker threads, 0 = all cores (default 0)\n\
         \x20 --format F     table | json | csv (default table)\n\
         \x20 --out FILE     write the report to FILE instead of stdout\n\
         \x20                (run-all writes one FILE-<scenario> per scenario)\n\
         \x20 --runs         include per-run records in JSON output"
    );
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        seeds: 16,
        threads: 0,
        format: Format::Table,
        out: None,
        include_runs: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "--seeds must be a number".to_string())?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a number".to_string())?;
            }
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format: {other}")),
                };
            }
            "--out" => opts.out = Some(value("--out")?),
            "--runs" => opts.include_runs = true,
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    Ok(opts)
}

fn emit(content: String, out: &Option<String>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, &content).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// The output path for one scenario: `--out` verbatim for a single run;
/// for `run-all`, the scenario name is spliced in before the extension so
/// each scenario's report survives (instead of the last one overwriting
/// the file).
fn out_path_for(out: &Option<String>, scenario: &str, multi: bool) -> Option<String> {
    out.as_ref().map(|path| {
        if !multi {
            return path.clone();
        }
        // Split off the directory first: a dot in a directory component
        // (`runs.v2/report`) is not an extension separator.
        let (dir, file) = match path.rsplit_once('/') {
            Some((dir, file)) => (Some(dir), file),
            None => (None, path.as_str()),
        };
        let file = match file.rsplit_once('.') {
            Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{scenario}.{ext}"),
            _ => format!("{file}-{scenario}"),
        };
        match dir {
            Some(dir) => format!("{dir}/{file}"),
            None => file,
        }
    })
}

fn run_scenario(scenario: &Scenario, opts: &Options, out: Option<String>) -> Result<(), String> {
    let runner = BatchRunner::new(opts.threads);
    eprintln!(
        "running {} ({} grid points × {} seeds, {} threads)",
        scenario.name,
        scenario.specs.len(),
        opts.seeds,
        runner.threads()
    );
    let reports = runner.run_grid(&scenario.specs, opts.seeds);
    let content = match opts.format {
        Format::Table => report::scenario_table(scenario.name, opts.seeds, &reports),
        Format::Json => {
            report::scenario_json(scenario.name, opts.seeds, &reports, opts.include_runs)
        }
        Format::Csv => report::scenario_csv(scenario.name, &reports),
    };
    emit(content, &out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "list" => {
            let mut table = prft_metrics::AsciiTable::new(vec!["scenario", "grid", "description"])
                .with_title("registered scenarios (prft-lab run <name>)");
            for s in registry() {
                table.row(vec![
                    s.name.to_string(),
                    s.specs.len().to_string(),
                    s.description.to_string(),
                ]);
            }
            println!("{}", table.render());
            Ok(())
        }
        "run" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            match prft_lab::find(name) {
                Some(scenario) => parse_options(&args[2..]).and_then(|opts| {
                    let out = out_path_for(&opts.out, scenario.name, false);
                    run_scenario(&scenario, &opts, out)
                }),
                None => Err(format!("unknown scenario: {name} (try `prft-lab list`)")),
            }
        }
        "run-all" => parse_options(&args[1..]).and_then(|opts| {
            for scenario in registry() {
                let out = out_path_for(&opts.out, scenario.name, true);
                run_scenario(&scenario, &opts, out)?;
            }
            Ok(())
        }),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        _ => {
            eprintln!("unknown command: {command}\n");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::out_path_for;

    #[test]
    fn out_paths_splice_only_the_filename() {
        let out = Some("report.json".to_string());
        assert_eq!(
            out_path_for(&out, "fork-attack", true).unwrap(),
            "report-fork-attack.json"
        );
        assert_eq!(
            out_path_for(&out, "fork-attack", false).unwrap(),
            "report.json"
        );
        let dotted_dir = Some("runs.v2/report".to_string());
        assert_eq!(
            out_path_for(&dotted_dir, "x", true).unwrap(),
            "runs.v2/report-x"
        );
        let dotted_both = Some("runs.v2/report.csv".to_string());
        assert_eq!(
            out_path_for(&dotted_both, "x", true).unwrap(),
            "runs.v2/report-x.csv"
        );
        let hidden = Some(".hidden".to_string());
        assert_eq!(out_path_for(&hidden, "x", true).unwrap(), ".hidden-x");
        assert_eq!(out_path_for(&None, "x", true), None);
    }
}
