//! The `prft-lab` CLI: list and run registered scenarios and explore
//! registered empirical games.
//!
//! ```text
//! prft-lab list [--timeline]
//! prft-lab run <scenario> [--seeds N] [--threads T]
//!                         [--format table|json|csv] [--out FILE] [--runs]
//!                         [--trace-out FILE] [--warm-starts on|off]
//! prft-lab run-all [--seeds N] [--threads T] [--out FILE]
//!                  [--warm-starts on|off]
//! prft-lab explore list
//! prft-lab explore run <game> [--seeds N] [--threads T]
//!                             [--format table|json|csv] [--out FILE]
//!                             [--cache DIR] [--full] [--eps E]
//!                             [--mixed] [--dynamics]
//!                             [--warm-starts on|off] [--explain-reuse]
//! prft-lab explore run-all [same options as explore run]
//! prft-lab diff <a.json> <b.json> [--eps E]
//! ```
//!
//! Aggregates are independent of `--threads`: `--threads 1` and
//! `--threads 8` emit byte-identical JSON, for scenario reports and
//! equilibrium reports alike. `run-all --out FILE` (and `explore
//! run-all --out FILE`) also writes a machine-readable manifest mapping
//! each scenario (game) to its report file. `explore run-all` sweeps
//! every registered game as **one** flattened work list, so games
//! sharing a cache scope evaluate shared cells once (the `shared` count
//! in the stderr stats).

use prft_lab::{
    registry, report, BatchRunner, CheckpointStore, Exploration, GameDef, GameExplorer,
    QueueBackend, Scenario, ScenarioSpec, UtilityCache, VerifyMode,
};
use std::process::ExitCode;

struct Options {
    seeds: u64,
    threads: usize,
    format: Format,
    out: Option<String>,
    include_runs: bool,
    cache: Option<String>,
    full: bool,
    eps: f64,
    mixed: bool,
    dynamics: bool,
    seeds_given: bool,
    queue: Option<QueueBackend>,
    verify: Option<VerifyMode>,
    trace_out: Option<String>,
    warm: bool,
    explain_reuse: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Json,
    Csv,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: prft-lab <command>\n\
         \n\
         commands:\n\
         \x20 list [--timeline]         list registered scenarios\n\
         \x20                           (--timeline adds a column showing\n\
         \x20                           which carry fault schedules)\n\
         \x20 run <scenario> [options]  run one scenario's grid\n\
         \x20 run-all [options]         run every registered scenario\n\
         \x20 explore list              list registered empirical games\n\
         \x20 explore run <game> [options]\n\
         \x20                           sweep a game's strategy space and\n\
         \x20                           report its equilibria\n\
         \x20 explore run-all [options]\n\
         \x20                           sweep every registered game as one\n\
         \x20                           batch (shared cells evaluate once)\n\
         \x20 diff <a.json> <b.json> [--eps E]\n\
         \x20                           compare two JSON reports; numeric\n\
         \x20                           leaves within the relative band E\n\
         \x20                           (default 0 = byte-exact semantics)\n\
         \x20                           count as equal; exits non-zero and\n\
         \x20                           lists every path that drifted\n\
         \n\
         options:\n\
         \x20 --seeds N      seeded runs per grid point (default 16;\n\
         \x20                explore default 8 per profile)\n\
         \x20 --threads T    worker threads, 0 = all cores (default 0)\n\
         \x20 --format F     table | json | csv (default table)\n\
         \x20 --out FILE     write the report to FILE instead of stdout\n\
         \x20                (run-all writes one FILE-<scenario> per\n\
         \x20                scenario plus a FILE-manifest index)\n\
         \x20 --runs         include per-run records in JSON output\n\
         \x20 --queue B      event-queue backend: calendar (default) |\n\
         \x20                heap (reference); results are byte-identical\n\
         \x20                across backends (run / run-all only)\n\
         \x20 --verify-mode M\n\
         \x20                verification strategy: fast (default,\n\
         \x20                memoized) | reference (re-verify on every\n\
         \x20                arrival); results are byte-identical across\n\
         \x20                modes (run / run-all only)\n\
         \x20 --trace-out F  also write a Chrome Trace Event JSON of one\n\
         \x20                traced run (seed index 0 of the first grid\n\
         \x20                point) to F — open in Perfetto or\n\
         \x20                chrome://tracing (run only)\n\
         \x20 --warm-starts on|off\n\
         \x20                checkpoint/fork warm starts: cells sharing a\n\
         \x20                timeline prefix fork from one captured state\n\
         \x20                instead of re-simulating it (default on;\n\
         \x20                results are byte-identical either way)\n\
         \n\
         explore options:\n\
         \x20 --cache DIR    reuse finished profile cells from DIR and\n\
         \x20                persist new ones (skips already-swept cells)\n\
         \x20 --full         evaluate every profile even when the game\n\
         \x20                declares a player symmetry\n\
         \x20 --eps E        equilibrium tolerance (default 1e-9)\n\
         \x20 --mixed        append the mixed-strategy equilibrium analysis\n\
         \x20                (support enumeration / symmetric indifference)\n\
         \x20 --dynamics     append the best-reply dynamics analysis\n\
         \x20                (path from honest, attractor basins, cycles)\n\
         \x20 --explain-reuse\n\
         \x20                print a per-game cell-reuse table (cached /\n\
         \x20                shared / symmetry) plus the batch's checkpoint\n\
         \x20                warm-start accounting to stderr"
    );
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        seeds: 16,
        threads: 0,
        format: Format::Table,
        out: None,
        include_runs: false,
        cache: None,
        full: false,
        eps: 1e-9,
        mixed: false,
        dynamics: false,
        seeds_given: false,
        queue: None,
        verify: None,
        trace_out: None,
        warm: true,
        explain_reuse: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|_| "--seeds must be a number".to_string())?;
                opts.seeds_given = true;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a number".to_string())?;
            }
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format: {other}")),
                };
            }
            "--out" => opts.out = Some(value("--out")?),
            "--queue" => {
                let name = value("--queue")?;
                opts.queue = Some(QueueBackend::parse(&name).ok_or_else(|| {
                    format!("unknown queue backend: {name} (use heap | calendar)")
                })?);
            }
            "--verify-mode" => {
                let name = value("--verify-mode")?;
                opts.verify = Some(VerifyMode::parse(&name).ok_or_else(|| {
                    format!("unknown verify mode: {name} (use fast | reference)")
                })?);
            }
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--warm-starts" => {
                opts.warm = match value("--warm-starts")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--warm-starts must be on or off, got {other}")),
                };
            }
            "--explain-reuse" => opts.explain_reuse = true,
            "--runs" => opts.include_runs = true,
            "--cache" => opts.cache = Some(value("--cache")?),
            "--full" => opts.full = true,
            "--mixed" => opts.mixed = true,
            "--dynamics" => opts.dynamics = true,
            "--eps" => {
                opts.eps = value("--eps")?
                    .parse()
                    .map_err(|_| "--eps must be a number".to_string())?;
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if opts.seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    Ok(opts)
}

fn emit(content: String, out: &Option<String>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, &content).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// The output path for one scenario: `--out` verbatim for a single run;
/// for `run-all`, the scenario name is spliced in before the extension so
/// each scenario's report survives (instead of the last one overwriting
/// the file).
fn out_path_for(out: &Option<String>, scenario: &str, multi: bool) -> Option<String> {
    out.as_ref().map(|path| {
        if !multi {
            return path.clone();
        }
        // Split off the directory first: a dot in a directory component
        // (`runs.v2/report`) is not an extension separator.
        let (dir, file) = match path.rsplit_once('/') {
            Some((dir, file)) => (Some(dir), file),
            None => (None, path.as_str()),
        };
        let file = match file.rsplit_once('.') {
            Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{scenario}.{ext}"),
            _ => format!("{file}-{scenario}"),
        };
        match dir {
            Some(dir) => format!("{dir}/{file}"),
            None => file,
        }
    })
}

/// Builds the configured explorer for the explore subcommands.
fn explorer_for(opts: &Options) -> GameExplorer {
    let mut explorer = GameExplorer::new(BatchRunner::new(opts.threads)).warm_starts(opts.warm);
    if let Some(dir) = &opts.cache {
        explorer = explorer.with_cache(UtilityCache::new(dir));
    }
    if opts.full {
        explorer = explorer.without_symmetry();
    }
    explorer
}

fn report_opts(opts: &Options) -> report::ExploreOpts {
    report::ExploreOpts {
        mixed: opts.mixed,
        dynamics: opts.dynamics,
    }
}

/// Emits one game's equilibrium report. Cost accounting goes to stderr:
/// the report itself is a pure function of (game, seeds, eps, analyses),
/// byte-identical whatever the cache held or the batch shared.
fn emit_exploration(
    game: &GameDef,
    exploration: &Exploration,
    opts: &Options,
    out: Option<String>,
) -> Result<(), String> {
    eprintln!(
        "{}: evaluated {} cells, {} from cache, {} shared, {} by symmetry",
        game.name,
        exploration.evaluated,
        exploration.cached,
        exploration.shared,
        exploration.expanded
    );
    let content = match opts.format {
        Format::Table => report::explore_table_with(game, exploration, opts.eps, report_opts(opts)),
        Format::Json => report::explore_json_with(game, exploration, opts.eps, report_opts(opts)),
        Format::Csv => report::explore_csv_with(game, exploration, opts.eps, report_opts(opts)),
    };
    emit(content, &out)
}

fn explore_game(name: &str, opts: &Options) -> Result<(), String> {
    let Some(game) = prft_lab::find_game(name) else {
        return Err(format!(
            "unknown game: {name} (try `prft-lab explore list`)"
        ));
    };
    let seeds = if opts.seeds_given { opts.seeds } else { 8 };
    // Analytic games are evaluated exactly once per profile; announce what
    // will actually happen rather than the requested seed count.
    let analytic = matches!(game.eval, prft_lab::GameEval::Analytic(_));
    if analytic && opts.seeds_given {
        eprintln!("note: {} is analytic — --seeds is ignored", game.name);
    }
    let space = game.space(!opts.full);
    eprintln!(
        "exploring {} ({} profiles, {} to evaluate, {} per profile, {} threads)",
        game.name,
        space.len(),
        space.canonical_profiles().len(),
        if analytic {
            "exact evaluation".to_string()
        } else {
            format!("{seeds} seeds")
        },
        BatchRunner::new(opts.threads).threads(),
    );
    let (explorations, reuse) =
        explorer_for(opts).explore_all_with_stats(std::slice::from_ref(&game), seeds);
    let exploration = &explorations[0];
    emit_exploration(&game, exploration, opts, opts.out.clone())?;
    if opts.explain_reuse {
        eprint!(
            "{}",
            report::explain_reuse_table(&[(game.name, exploration)], reuse)
        );
    }
    Ok(())
}

/// `explore run-all`: every registered game as one flattened batch.
fn explore_run_all(opts: &Options) -> Result<(), String> {
    let games = prft_lab::game_registry();
    let seeds = if opts.seeds_given { opts.seeds } else { 8 };
    eprintln!(
        "exploring {} games ({} seeds per simulated cell, {} threads, one flattened batch)",
        games.len(),
        seeds,
        BatchRunner::new(opts.threads).threads(),
    );
    let (explorations, reuse) = explorer_for(opts).explore_all_with_stats(&games, seeds);
    let mut written: Vec<(String, String)> = Vec::new();
    for (game, exploration) in games.iter().zip(&explorations) {
        let out = out_path_for(&opts.out, game.name, true);
        if let Some(path) = &out {
            written.push((game.name.to_string(), path.clone()));
        }
        emit_exploration(game, exploration, opts, out)?;
    }
    write_manifest("explore run-all", seeds, &written, &opts.out)?;
    if opts.explain_reuse {
        let rows: Vec<(&str, &Exploration)> = games
            .iter()
            .zip(&explorations)
            .map(|(g, e)| (g.name, e))
            .collect();
        eprint!("{}", report::explain_reuse_table(&rows, reuse));
    }
    Ok(())
}

/// Writes the multi-report manifest next to the per-report files — a
/// no-op without `--out` (nothing was written to disk to index).
fn write_manifest(
    command: &str,
    seeds: u64,
    written: &[(String, String)],
    out: &Option<String>,
) -> Result<(), String> {
    if written.is_empty() {
        return Ok(());
    }
    let manifest_path = manifest_path_for(out.as_ref().expect("out is set"));
    let manifest = manifest_doc(command, seeds, written);
    std::fs::write(&manifest_path, manifest)
        .map_err(|e| format!("writing {manifest_path}: {e}"))?;
    eprintln!("wrote {manifest_path}");
    Ok(())
}

/// `--queue` applies to `run`/`run-all` only; explore builds its specs
/// from game definitions. Reject rather than silently ignore it.
fn reject_queue_flag(opts: &Options) -> Result<(), String> {
    match opts.queue {
        Some(_) => Err("--queue applies to run/run-all only (explore reports are \
             byte-identical across backends anyway)"
            .to_string()),
        None => Ok(()),
    }
}

/// `--verify-mode` applies to `run`/`run-all` only, for the same reason
/// as `--queue`: explore builds its specs from game definitions, and its
/// reports are pinned byte-identical across modes anyway.
fn reject_verify_flag(opts: &Options) -> Result<(), String> {
    match opts.verify {
        Some(_) => Err(
            "--verify-mode applies to run/run-all only (explore reports \
             are byte-identical across modes anyway)"
                .to_string(),
        ),
        None => Ok(()),
    }
}

/// `--trace-out` applies to single `run` only: a trace is one seeded
/// run's timeline, so `run-all` (many scenarios, one path) and explore
/// (profile sweeps) have no single run to export.
fn reject_trace_flag(opts: &Options, context: &str) -> Result<(), String> {
    match opts.trace_out {
        Some(_) => Err(format!(
            "--trace-out applies to `run <scenario>` only ({context})"
        )),
        None => Ok(()),
    }
}

/// `--explain-reuse` applies to the explore subcommands only: scenario
/// grids have no cell-reuse plan (no cache, no symmetry, no cross-game
/// sharing) to explain.
fn reject_explain_flag(opts: &Options) -> Result<(), String> {
    if opts.explain_reuse {
        return Err("--explain-reuse applies to explore run/run-all only".to_string());
    }
    Ok(())
}

fn explore_command(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            let mut table =
                prft_metrics::AsciiTable::new(vec!["game", "space", "evaluated", "description"])
                    .with_title("registered games (prft-lab explore run <name>)");
            // Stable name order: the listing is diffable whatever the
            // registry's declaration order becomes.
            let mut games = prft_lab::game_registry();
            games.sort_by_key(|g| g.name);
            for g in games {
                let space = g.space(true);
                table.row(vec![
                    g.name.to_string(),
                    space.len().to_string(),
                    space.canonical_profiles().len().to_string(),
                    g.description.to_string(),
                ]);
            }
            println!("{}", table.render());
            Ok(())
        }
        Some("run") => match args.get(1) {
            Some(name) => parse_options(&args[2..]).and_then(|opts| {
                reject_queue_flag(&opts)?;
                reject_verify_flag(&opts)?;
                reject_trace_flag(&opts, "explore sweeps profiles, not one run")?;
                explore_game(name, &opts)
            }),
            None => Err("explore run needs a game name".to_string()),
        },
        Some("run-all") => parse_options(&args[1..]).and_then(|opts| {
            reject_queue_flag(&opts)?;
            reject_verify_flag(&opts)?;
            reject_trace_flag(&opts, "explore sweeps profiles, not one run")?;
            explore_run_all(&opts)
        }),
        _ => Err("usage: prft-lab explore <list | run <game> | run-all>".to_string()),
    }
}

/// Renders the `--timeline` column for one scenario: the number of
/// scheduled events across its grid, or a dash for static scenarios.
fn timeline_cell(scenario: &Scenario) -> String {
    let events: usize = scenario.specs.iter().map(|s| s.schedule.len()).sum();
    match events {
        0 => "—".to_string(),
        1 => "1 event".to_string(),
        n => format!("{n} events"),
    }
}

fn list_scenarios(args: &[String]) -> Result<(), String> {
    let mut timeline = false;
    for arg in args {
        if arg == "--timeline" {
            timeline = true;
        } else {
            return Err(format!(
                "unknown list option: {arg} (the only list option is --timeline)"
            ));
        }
    }
    let headers = if timeline {
        vec!["scenario", "grid", "timeline", "description"]
    } else {
        vec!["scenario", "grid", "description"]
    };
    let mut table = prft_metrics::AsciiTable::new(headers)
        .with_title("registered scenarios (prft-lab run <name>)");
    for s in registry() {
        let mut row = vec![s.name.to_string(), s.specs.len().to_string()];
        if timeline {
            row.push(timeline_cell(&s));
        }
        row.push(s.description.to_string());
        table.row(row);
    }
    println!("{}", table.render());
    Ok(())
}

fn run_scenario(scenario: &Scenario, opts: &Options, out: Option<String>) -> Result<(), String> {
    let runner = BatchRunner::new(opts.threads);
    eprintln!(
        "running {} ({} grid points × {} seeds, {} threads{})",
        scenario.name,
        scenario.specs.len(),
        opts.seeds,
        runner.threads(),
        match (opts.queue, opts.verify) {
            (Some(b), Some(m)) => format!(", {b} queue, {m} verify"),
            (Some(b), None) => format!(", {b} queue"),
            (None, Some(m)) => format!(", {m} verify"),
            (None, None) => String::new(),
        }
    );
    // `--queue` / `--verify-mode` override every grid point's backend and
    // verification strategy; reports come out byte-identical either way
    // (CI diffs them), so these are purely speed/debugging knobs.
    let specs: Vec<ScenarioSpec> = scenario
        .specs
        .iter()
        .map(|s| {
            let mut s = s.clone();
            if let Some(backend) = opts.queue {
                s = s.queue(backend);
            }
            if let Some(mode) = opts.verify {
                s = s.verify_mode(mode);
            }
            s
        })
        .collect();
    // Warm starts are a pure speed knob: grid points sharing a timeline
    // prefix fork from one captured state, and reports stay byte-identical
    // (the checkpoint_equiv suite pins this).
    let store = opts.warm.then(CheckpointStore::default);
    let reports = runner.run_grid_with(&specs, opts.seeds, store.as_ref());
    let content = match opts.format {
        Format::Table => report::scenario_table(scenario.name, opts.seeds, &reports),
        Format::Json => {
            report::scenario_json(scenario.name, opts.seeds, &reports, opts.include_runs)
        }
        Format::Csv => report::scenario_csv(scenario.name, &reports),
    };
    emit(content, &out)?;
    if let Some(path) = &opts.trace_out {
        // One traced run of the first grid point, at the same derived
        // seed the batch used for seed index 0, so the trace lines up
        // with the report next to it.
        let spec = &specs[0];
        let trace = prft_lab::chrome_trace_for(spec, prft_lab::derive_seed(spec.base_seed, 0));
        std::fs::write(path, trace.render()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote trace {path} ({} events)", trace.len());
    }
    Ok(())
}

/// The manifest path for a `run-all --out` base path: the stem plus
/// `-manifest.json`, whatever the report format was (the manifest itself
/// is always JSON).
fn manifest_path_for(out: &str) -> String {
    let (dir, file) = match out.rsplit_once('/') {
        Some((dir, file)) => (Some(dir), file),
        None => (None, out),
    };
    let stem = match file.rsplit_once('.') {
        Some((stem, _)) if !stem.is_empty() => stem,
        _ => file,
    };
    match dir {
        Some(dir) => format!("{dir}/{stem}-manifest.json"),
        None => format!("{stem}-manifest.json"),
    }
}

/// The manifest document for a multi-report command (`run-all`,
/// `explore run-all`): name → report file, in run order.
fn manifest_doc(command: &str, seeds: u64, written: &[(String, String)]) -> String {
    use prft_lab::json::Json;
    Json::obj([
        ("command", Json::str(command)),
        ("seeds", Json::u64(seeds)),
        (
            "reports",
            Json::Arr(
                written
                    .iter()
                    .map(|(scenario, file)| {
                        Json::obj([("scenario", Json::str(scenario)), ("file", Json::str(file))])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

/// `prft-lab diff a.json b.json [--eps E]`: parse both reports and list
/// every path where they disagree beyond the tolerance. Exit code 0 means
/// "same report" (within eps), 1 means drift — scriptable, so CI can pin
/// the determinism contract (`--eps` defaults to 0) without shipping a
/// JSON toolchain.
fn diff_reports(args: &[String]) -> Result<(), String> {
    let (Some(path_a), Some(path_b)) = (args.first(), args.get(1)) else {
        return Err("diff needs two report files: prft-lab diff <a.json> <b.json>".to_string());
    };
    let mut eps = 0.0f64;
    let mut it = args[2..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--eps" => {
                eps = it
                    .next()
                    .ok_or("--eps needs a value")?
                    .parse()
                    .map_err(|_| "--eps must be a number".to_string())?;
                if eps.is_nan() || eps < 0.0 {
                    return Err("--eps must be non-negative".to_string());
                }
            }
            other => return Err(format!("unknown diff option: {other}")),
        }
    }
    let load = |path: &String| -> Result<prft_lab::json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        prft_lab::json::Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = load(path_a)?;
    let b = load(path_b)?;
    let entries = prft_lab::diff::diff(&a, &b, eps);
    if entries.is_empty() {
        eprintln!("reports match ({path_a} vs {path_b}, eps {eps})");
        return Ok(());
    }
    // Full drift lists can be huge (per-run sections); show enough to
    // localise the problem and summarise the rest.
    const SHOWN: usize = 50;
    for e in entries.iter().take(SHOWN) {
        println!("{}: {}", e.path, e.detail);
    }
    if entries.len() > SHOWN {
        println!("... and {} more", entries.len() - SHOWN);
    }
    Err(format!(
        "{} difference(s) beyond eps {eps} between {path_a} and {path_b}",
        entries.len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "list" => list_scenarios(&args[1..]),
        "run" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            match prft_lab::find(name) {
                Some(scenario) => parse_options(&args[2..]).and_then(|opts| {
                    reject_explain_flag(&opts)?;
                    let out = out_path_for(&opts.out, scenario.name, false);
                    run_scenario(&scenario, &opts, out)
                }),
                None => Err(format!("unknown scenario: {name} (try `prft-lab list`)")),
            }
        }
        "run-all" => parse_options(&args[1..]).and_then(|opts| {
            reject_trace_flag(&opts, "run-all would overwrite one trace per scenario")?;
            reject_explain_flag(&opts)?;
            let mut written: Vec<(String, String)> = Vec::new();
            for scenario in registry() {
                let out = out_path_for(&opts.out, scenario.name, true);
                if let Some(path) = &out {
                    written.push((scenario.name.to_string(), path.clone()));
                }
                run_scenario(&scenario, &opts, out)?;
            }
            // A machine-readable index of what was just produced, so
            // downstream tooling never has to re-derive the per-scenario
            // file-naming scheme (schema: docs/REPORT_SCHEMA.md).
            write_manifest("run-all", opts.seeds, &written, &opts.out)
        }),
        "explore" => explore_command(&args[1..]),
        "diff" => diff_reports(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        _ => {
            eprintln!("unknown command: {command}\n");
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{manifest_doc, manifest_path_for, out_path_for, timeline_cell};

    #[test]
    fn timeline_cells_count_scheduled_events() {
        use prft_lab::{Scenario, ScenarioSpec, TimelineEvent};
        let static_scenario = Scenario {
            name: "s",
            description: "d",
            specs: vec![ScenarioSpec::new("x", 4, 1)],
        };
        assert_eq!(timeline_cell(&static_scenario), "—");
        let scheduled = Scenario {
            name: "t",
            description: "d",
            specs: vec![
                ScenarioSpec::new("x", 4, 1).at(5, TimelineEvent::Crash(0)),
                ScenarioSpec::new("y", 4, 1)
                    .at(5, TimelineEvent::Crash(0))
                    .at(9, TimelineEvent::Recover(0)),
            ],
        };
        assert_eq!(timeline_cell(&scheduled), "3 events");
    }

    #[test]
    fn manifest_paths_are_always_json() {
        assert_eq!(manifest_path_for("report.json"), "report-manifest.json");
        assert_eq!(manifest_path_for("nightly.csv"), "nightly-manifest.json");
        assert_eq!(manifest_path_for("out/report"), "out/report-manifest.json");
        assert_eq!(
            manifest_path_for("runs.v2/report.csv"),
            "runs.v2/report-manifest.json"
        );
    }

    #[test]
    fn manifest_lists_reports_in_run_order() {
        let m = manifest_doc(
            "run-all",
            4,
            &[
                ("honest-sync".into(), "report-honest-sync.json".into()),
                ("gst-sweep".into(), "report-gst-sweep.json".into()),
            ],
        );
        assert!(m.contains("\"command\": \"run-all\""));
        assert!(m.contains("\"seeds\": 4"));
        let honest = m.find("honest-sync").unwrap();
        let gst = m.find("gst-sweep").unwrap();
        assert!(honest < gst, "run order preserved");
        assert!(m.contains("\"file\": \"report-gst-sweep.json\""));
    }

    #[test]
    fn out_paths_splice_only_the_filename() {
        let out = Some("report.json".to_string());
        assert_eq!(
            out_path_for(&out, "fork-attack", true).unwrap(),
            "report-fork-attack.json"
        );
        assert_eq!(
            out_path_for(&out, "fork-attack", false).unwrap(),
            "report.json"
        );
        let dotted_dir = Some("runs.v2/report".to_string());
        assert_eq!(
            out_path_for(&dotted_dir, "x", true).unwrap(),
            "runs.v2/report-x"
        );
        let dotted_both = Some("runs.v2/report.csv".to_string());
        assert_eq!(
            out_path_for(&dotted_both, "x", true).unwrap(),
            "runs.v2/report-x.csv"
        );
        let hidden = Some(".hidden".to_string());
        assert_eq!(out_path_for(&hidden, "x", true).unwrap(), ".hidden-x");
        assert_eq!(out_path_for(&None, "x", true), None);
    }
}
