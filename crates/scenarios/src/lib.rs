//! # prft-lab — scenario orchestration for the pRFT reproduction
//!
//! The paper's experiments (Tables 1–3, Theorems 1–3, Claims 1–3, Lemma 4)
//! and the workloads beyond them are all instances of one shape: *build a
//! committee from a declarative description, run it over many seeds, and
//! aggregate the observables*. This crate owns that shape:
//!
//! * [`ScenarioSpec`] — a plain-data description of one committee
//!   configuration: size, synchrony flavour, partition schedule,
//!   per-player roles (the strategy space), preloaded transactions,
//!   protocol overrides, payoff economics, and — spec v2 — a declarative
//!   **timeline** of [`TimelineEvent`]s (mid-run crash/recovery, role
//!   switches, targeted-delay rules, tx injection, partition sugar)
//!   executed deterministically between run segments;
//! * [`registry`] — ≥10 named scenarios covering the paper's experiments
//!   plus new workloads (mixed-rational committees, GST sweeps, partition
//!   storms, collateral sweeps, committee scaling);
//! * [`BatchRunner`] — a scoped-thread pool fanning seeded runs across
//!   cores with order-independent per-run seeding ([`derive_seed`]), so a
//!   parallel sweep and a serial sweep produce **byte-identical** reports;
//! * [`RunRecord`] / [`BatchReport`] / [`Aggregate`] — per-run observables
//!   and their mean/min/max/CI aggregates plus σ-state histograms;
//! * [`report`] — JSON, CSV, and terminal emission;
//! * [`GameExplorer`] / [`GameDef`] / [`game_registry`] — the empirical
//!   game-exploration engine: profile space → spec → utilities, with
//!   symmetry reduction, an on-disk [`UtilityCache`], CI-aware
//!   equilibrium reports, optional mixed-strategy and best-reply-dynamics
//!   analyses, and a multi-game batch mode
//!   ([`GameExplorer::explore_all`]) that shares cells across games with
//!   a common cache scope (see `docs/REPORT_SCHEMA.md` and
//!   `docs/GAME_ANALYSIS.md`);
//! * the `prft-lab` binary — `prft-lab list`, `prft-lab run <scenario>
//!   --seeds N --threads T [--format json|csv|table] [--out FILE]`,
//!   `prft-lab explore run <game> [--mixed] [--dynamics]` for
//!   equilibrium sweeps, and `prft-lab explore run-all` for one
//!   flattened batch over every registered game.
//!
//! The `prft-bench` experiment binaries are thin formatters over this
//! crate: each defines (or references) scenario specs and drives them
//! through [`BatchRunner`], so one engine owns run orchestration.
//!
//! ## Example
//!
//! ```
//! use prft_lab::{BatchRunner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::new("demo", 5, 2).horizon(200_000);
//! let report = BatchRunner::new(2).run(&spec, 4);
//! assert_eq!(report.seeds, 4);
//! assert_eq!(report.agreement_rate, 1.0);
//! assert!(report.min_final_height.mean >= 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod cache;
mod checkpoint;
pub mod diff;
mod explore;
mod games;
pub mod json;
mod record;
mod registry;
pub mod report;
mod runner;
mod spec;
mod trace_export;

pub use build::{
    build_sim, classify_sim, classify_watched, discounted_utility, measure_utility_for, run_one,
    run_one_with, run_sim, run_workload_sim, summarize,
};
pub use cache::{CacheKey, UtilityCache};
pub use checkpoint::{prefix_fingerprint, CheckpointEntry, CheckpointStore, ReuseStats};
pub use explore::{Exploration, GameDef, GameEval, GameExplorer};
pub use games::{find_game, game_registry};
pub use prft_core::VerifyMode;
pub use prft_sim::QueueBackend;
pub use prft_workload::{ArrivalModel, RejectAction, RetryPolicy, WorkloadRunStats, WorkloadSpec};
pub use record::{Aggregate, BatchReport, RunRecord, WorkloadAggregates};
pub use registry::{find, registry, Scenario};
pub use runner::{derive_seed, effective_threads, par_map, BatchRunner};
pub use spec::{PartitionSpec, Role, ScenarioSpec, Synchrony, TimelineEvent, TxSpec, UtilitySpec};
pub use trace_export::chrome_trace_for;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_is_send() {
        // The batch runner builds simulations on worker threads; this
        // compile-time assertion is the contract the sim/core layers keep.
        fn assert_send<T: Send>() {}
        assert_send::<prft_sim::Simulation<prft_core::Replica>>();
    }

    #[test]
    fn honest_run_end_to_end() {
        let spec = ScenarioSpec::new("smoke", 5, 2).horizon(200_000);
        let record = run_one(&spec, 42);
        assert!(record.agreement);
        assert_eq!(record.min_final_height, 2);
        assert_eq!(record.sigma, prft_game::SystemState::HonestExecution);
    }
}
