//! A minimal JSON document model with a deterministic writer.
//!
//! The build environment has no serde, so reports are emitted through this
//! hand-rolled value type. Objects preserve insertion order and floats are
//! rendered with Rust's shortest-roundtrip formatting, so the same report
//! always serializes to the same bytes — the determinism tests compare
//! serialized output directly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, kept exact — 64-bit seeds exceed 2^53 and must
    /// round-trip so runs can be replayed from emitted records.
    UInt(u64),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String value from anything stringy.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Unsigned integer rendered exactly, without a decimal point.
    pub fn u64(v: u64) -> Json {
        Json::UInt(v)
    }

    /// Object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            for _ in 0..d * 2 {
                out.push(' ');
            }
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        for _ in 0..d * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_escaped() {
        let v = Json::obj([
            ("a", Json::u64(3)),
            ("b", Json::Num(0.5)),
            ("s", Json::str("x\"y\n")),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::obj::<String>([])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"a":3,"b":0.5,"s":"x\"y\n","arr":[true,null],"empty":{}}"#
        );
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::u64(1_000_000).render(), "1000000");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn u64_beyond_2_pow_53_is_exact() {
        // Seeds are uniform u64s; they must round-trip for replay.
        let seed = 0xdead_beef_dead_beef_u64;
        assert_eq!(Json::u64(seed).render(), seed.to_string());
        assert_eq!(Json::u64(u64::MAX).render(), u64::MAX.to_string());
    }

    #[test]
    fn pretty_is_stable() {
        let v = Json::obj([("k", Json::Arr(vec![Json::u64(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
    }
}
