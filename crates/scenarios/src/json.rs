//! A minimal JSON document model with a deterministic writer.
//!
//! The build environment has no serde, so reports are emitted through this
//! hand-rolled value type. Objects preserve insertion order and floats are
//! rendered with Rust's shortest-roundtrip formatting, so the same report
//! always serializes to the same bytes — the determinism tests compare
//! serialized output directly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, kept exact — 64-bit seeds exceed 2^53 and must
    /// round-trip so runs can be replayed from emitted records.
    UInt(u64),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// String value from anything stringy.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Unsigned integer rendered exactly, without a decimal point.
    pub fn u64(v: u64) -> Json {
        Json::UInt(v)
    }

    /// Object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parses a JSON document (the inverse of [`Json::render`] /
    /// [`Json::render_pretty`]). Numbers that look like unsigned integers
    /// (no sign, fraction, or exponent) come back as [`Json::UInt`] so
    /// 64-bit seeds survive a round-trip exactly; everything else numeric
    /// is a [`Json::Num`]. Object key order is preserved as read.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

/// Deepest container nesting [`Json::parse`] accepts. Real reports nest a
/// handful of levels; the cap exists so a corrupt or adversarial document
/// (`[[[[…`) returns a parse error instead of overflowing the
/// recursive-descent stack.
const MAX_DEPTH: usize = 128;

/// Recursive-descent parser over the document bytes. JSON structure is
/// ASCII, so byte-wise scanning is safe; string contents pass through as
/// UTF-8 (escapes decoded). Container recursion is bounded by
/// [`MAX_DEPTH`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&c) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Reports never emit surrogate pairs (the writer
                            // only \u-escapes control characters), so a lone
                            // surrogate is a parse error, not a pair start.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar, however many bytes it spans.
                    let tail = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = tail.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            for _ in 0..d * 2 {
                out.push(' ');
            }
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        for _ in 0..d * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_escaped() {
        let v = Json::obj([
            ("a", Json::u64(3)),
            ("b", Json::Num(0.5)),
            ("s", Json::str("x\"y\n")),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::obj::<String>([])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"a":3,"b":0.5,"s":"x\"y\n","arr":[true,null],"empty":{}}"#
        );
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::u64(1_000_000).render(), "1000000");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn u64_beyond_2_pow_53_is_exact() {
        // Seeds are uniform u64s; they must round-trip for replay.
        let seed = 0xdead_beef_dead_beef_u64;
        assert_eq!(Json::u64(seed).render(), seed.to_string());
        assert_eq!(Json::u64(u64::MAX).render(), u64::MAX.to_string());
    }

    #[test]
    fn pretty_is_stable() {
        let v = Json::obj([("k", Json::Arr(vec![Json::u64(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn parse_round_trips_render() {
        let v = Json::obj([
            ("a", Json::u64(0xdead_beef_dead_beef)),
            ("b", Json::Num(0.5)),
            ("neg", Json::Num(-3.0)),
            ("s", Json::str("x\"y\n\t\\ é")),
            (
                "arr",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::obj::<String>([])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_keeps_u64_exact_and_key_order() {
        let doc = r#"{"z": 18446744073709551615, "a": 1e2, "m": {"k": [1, 2.5]}}"#;
        let v = Json::parse(doc).unwrap();
        let Json::Obj(pairs) = &v else { panic!() };
        assert_eq!(pairs[0].0, "z");
        assert_eq!(pairs[0].1, Json::UInt(u64::MAX));
        assert_eq!(pairs[1].1, Json::Num(100.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":01x}",
            "\"\\u12\"",
            "nullx",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_caps_nesting_depth() {
        // A corrupt/adversarial document must come back as a clean error,
        // not a stack overflow.
        let deep_arr = "[".repeat(100_000);
        let err = Json::parse(&deep_arr).unwrap_err();
        assert!(err.contains("nesting deeper than"), "got: {err}");
        let deep_obj = "{\"k\":".repeat(100_000);
        let err = Json::parse(&deep_obj).unwrap_err();
        assert!(err.contains("nesting deeper than"), "got: {err}");

        // At the cap itself (interleaved containers), parsing still works.
        let ok = format!(
            "{}null{}",
            "[{\"k\":".repeat(MAX_DEPTH / 2),
            "}]".repeat(MAX_DEPTH / 2)
        );
        assert!(Json::parse(&ok).is_ok());
        // One past the cap fails.
        let over = format!(
            "{}null{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn parse_decodes_escapes() {
        assert_eq!(
            Json::parse(r#""a\u0041\n\t\"\\\/ b""#).unwrap(),
            Json::str("aA\n\t\"\\/ b")
        );
    }
}
