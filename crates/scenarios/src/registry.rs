//! The named scenario registry: every paper experiment that runs a pRFT
//! committee, plus workloads beyond the paper (mixed-rational committees,
//! GST sweeps, partition storms, collateral sweeps, committee scaling,
//! and the timeline-scheduled dynamic adversaries of spec v2).
//!
//! A scenario is a grid of [`ScenarioSpec`]s; `prft-lab run <name>` runs
//! every grid point over the requested seed count and reports aggregates
//! per point.

use crate::spec::{
    PartitionSpec, Role, ScenarioSpec, Synchrony, TimelineEvent, TxSpec, UtilitySpec,
};
use prft_game::Theta;
use prft_workload::{RejectAction, RetryPolicy, WorkloadSpec};

/// A named, described grid of scenario specs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry name (`prft-lab run <name>`).
    pub name: &'static str,
    /// One-line description for `prft-lab list`.
    pub description: &'static str,
    /// The grid points.
    pub specs: Vec<ScenarioSpec>,
}

fn fork_attack_spec(label: &str, n: usize, colluders: usize, penalty_l: f64) -> ScenarioSpec {
    ScenarioSpec::new(label, n, 3)
        .base_seed(0xf0_17c)
        .role(
            0,
            Role::EquivocatingLeader {
                only_round: Some(0),
            },
        )
        .roles(1..=colluders, Role::ForkColluder)
        .fork_b_group([n - 2, n - 1])
        .utility(UtilitySpec {
            penalty_l,
            ..UtilitySpec::standard(Theta::ForkSeeking, 3)
        })
        .horizon(600_000)
}

/// Builds the full registry.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "honest-sync",
            description: "all-honest committee under a synchronous network (the σ_0 baseline)",
            specs: vec![ScenarioSpec::new("n=8", 8, 4).base_seed(0xba5e)],
        },
        Scenario {
            name: "gst-sweep",
            description: "all-honest committee under partial synchrony, sweeping the GST",
            specs: [500u64, 2_000, 8_000]
                .into_iter()
                .map(|gst| {
                    ScenarioSpec::new(format!("gst={gst}"), 8, 5)
                        .base_seed(0x657)
                        .synchrony(Synchrony::PartiallySynchronous { gst, delta: 10 })
                })
                .collect(),
        },
        Scenario {
            name: "liveness-attack",
            description: "Theorem 1: θ=3 abstention coalitions of growing size starve the quorum",
            // k+t = 4 and 5 are the two in-regime points of Theorem 1's
            // impossibility window ⌈n/3⌉ ≤ k+t ≤ ⌈n/2⌉−1 at n = 12.
            specs: [0usize, 2, 3, 4, 5, 6]
                .into_iter()
                .map(|k| {
                    let n = 12;
                    ScenarioSpec::new(format!("k+t={k}"), n, 6)
                        .base_seed(0x7411)
                        .synchrony(Synchrony::PartiallySynchronous {
                            gst: 1_000,
                            delta: 10,
                        })
                        .roles((n - k)..n, Role::Abstain)
                        .utility(UtilitySpec::standard(Theta::LivenessAttacking, 6))
                        .horizon(400_000)
                })
                .collect(),
        },
        Scenario {
            name: "censorship-attack",
            description:
                "Theorem 2: π_pc coalitions censor a watched tx while keeping blocks flowing",
            specs: [0usize, 1, 2]
                .into_iter()
                .map(|k| {
                    ScenarioSpec::new(format!("k+t={k}"), 4, 12)
                        .base_seed(0xce45)
                        .roles(0..k, Role::PartialCensor)
                        .tx(999, None, b"the censored tx")
                        .tx(1, None, b"background-1")
                        .tx(2, None, b"background-2")
                        .watch([999])
                        .censor([999])
                        .utility(UtilitySpec::standard(Theta::CensorSeeking, 12))
                })
                .collect(),
        },
        Scenario {
            name: "fork-attack",
            description: "Lemma 4: equivocating leader + π_fork colluders against full pRFT",
            specs: vec![fork_attack_spec("colluders=3", 9, 3, 10.0)],
        },
        Scenario {
            name: "ablation-accountability",
            description:
                "the fork attack with and without the Reveal/PoF phase (what accountability buys)",
            specs: vec![
                fork_attack_spec("full", 9, 3, 10.0),
                fork_attack_spec("ablated", 9, 3, 10.0).accountable(false),
            ],
        },
        Scenario {
            name: "collateral-sweep",
            description:
                "the fork attack across collateral deposits L (how much stake deters deviation)",
            specs: [0.0, 5.0, 20.0]
                .into_iter()
                .map(|l| fork_attack_spec(&format!("L={l}"), 9, 3, l))
                .collect(),
        },
        Scenario {
            name: "mixed-rational",
            description:
                "committees mixing abstainers, fork colluders, and censors inside k+t < n/2",
            specs: vec![
                ScenarioSpec::new("abs=2,fork=2", 16, 4)
                    .base_seed(0x312ed)
                    .role(
                        0,
                        Role::EquivocatingLeader {
                            only_round: Some(1),
                        },
                    )
                    .roles([1, 2], Role::ForkColluder)
                    .fork_b_group([14, 15])
                    .roles([12, 13], Role::Abstain)
                    .utility(UtilitySpec::standard(Theta::ForkSeeking, 4))
                    .horizon(800_000),
                ScenarioSpec::new("abs=3,censor=2", 16, 4)
                    .base_seed(0x312ed)
                    .roles([11, 12, 13], Role::Abstain)
                    .roles([0, 1], Role::PartialCensor)
                    .tx(999, None, b"watched")
                    .tx(1, None, b"bg")
                    .watch([999])
                    .censor([999])
                    .utility(UtilitySpec::standard(Theta::CensorSeeking, 4))
                    .horizon(800_000),
            ],
        },
        Scenario {
            name: "partition-storm",
            description: "repeated partition windows battering a partially synchronous committee",
            specs: vec![ScenarioSpec::new("3-storms", 9, 6)
                .base_seed(0x5707)
                .synchrony(Synchrony::PartiallySynchronous {
                    gst: 500,
                    delta: 10,
                })
                .partition(PartitionSpec {
                    start: 0,
                    end: 15_000,
                    groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]],
                    bridges: vec![],
                })
                .partition(PartitionSpec {
                    start: 30_000,
                    end: 45_000,
                    groups: vec![vec![0, 2, 4, 6, 8], vec![1, 3, 5, 7]],
                    bridges: vec![],
                })
                .partition(PartitionSpec {
                    start: 60_000,
                    end: 75_000,
                    groups: vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]],
                    bridges: vec![],
                })
                .horizon(1_000_000)],
        },
        Scenario {
            name: "tau-window",
            description: "Claim 1: liveness under t0 abstainers across agreement thresholds τ",
            specs: [6usize, 7, 8, 9, 10]
                .into_iter()
                .map(|tau| {
                    let n = 10;
                    let t0 = 2;
                    ScenarioSpec::new(format!("tau={tau}"), n, 4)
                        .base_seed(0x7a0)
                        .tau(tau)
                        .roles((n - t0)..n, Role::Abstain)
                        .horizon(400_000)
                })
                .collect(),
        },
        Scenario {
            name: "view-change-churn",
            description:
                "Claim 2 robustness: silent VC-hungry byzantine players under honest leaders",
            specs: [1usize, 2, 3]
                .into_iter()
                .map(|byz| {
                    let n = 9;
                    ScenarioSpec::new(format!("byz={byz}"), n, 3)
                        .base_seed(0xc4c4)
                        .roles((n - byz)..n, Role::VcSpammer)
                })
                .collect(),
        },
        Scenario {
            name: "crash-cft",
            description: "crash faults only (the CFT column): committee survives c < n/2 crashes",
            specs: [2usize, 4]
                .into_iter()
                .map(|c| {
                    let n = 9;
                    ScenarioSpec::new(format!("crashes={c}"), n, 4)
                        .base_seed(0xcf7)
                        .synchrony(Synchrony::PartiallySynchronous {
                            gst: 2_000,
                            delta: 10,
                        })
                        .roles((n - c)..n, Role::Crash)
                        .horizon(3_000_000)
                })
                .collect(),
        },
        Scenario {
            name: "committee-scaling",
            description: "message/byte cost per decision across committee sizes (Table 3 shape)",
            specs: [4usize, 8, 16, 32]
                .into_iter()
                .map(|n| {
                    ScenarioSpec::new(format!("n={n}"), n, 3)
                        .base_seed(0x5ca1e)
                        .horizon(5_000_000)
                })
                .collect(),
        },
        Scenario {
            name: "crash-churn",
            description:
                "timeline: rolling crash/recover churn (≤2 down at once) — liveness must survive",
            specs: vec![ScenarioSpec::new("churn", 9, 5)
                .base_seed(0xc42c)
                .synchrony(Synchrony::PartiallySynchronous {
                    gst: 2_000,
                    delta: 10,
                })
                .at(5_000, TimelineEvent::Crash(7))
                .at(5_000, TimelineEvent::Crash(8))
                .at(60_000, TimelineEvent::Recover(7))
                .at(60_000, TimelineEvent::Recover(8))
                .at(120_000, TimelineEvent::Crash(5))
                .at(120_000, TimelineEvent::Crash(6))
                .at(180_000, TimelineEvent::Recover(5))
                .at(180_000, TimelineEvent::Recover(6))
                .horizon(3_000_000)],
        },
        Scenario {
            name: "delay-until-gst",
            description:
                "timeline: targeted delay rules slow the first leaders' outbound traffic until GST",
            specs: vec![ScenarioSpec::new("slow-leaders-0-1", 8, 4)
                .base_seed(0xde1a)
                .synchrony(Synchrony::PartiallySynchronous {
                    gst: 2_000,
                    delta: 10,
                })
                .at(
                    0,
                    TimelineEvent::AddDelayRule {
                        from: Some(0),
                        to: None,
                        extra: 1_500,
                        window: 2_000,
                    },
                )
                .at(
                    0,
                    TimelineEvent::AddDelayRule {
                        from: Some(1),
                        to: None,
                        extra: 1_500,
                        window: 2_000,
                    },
                )
                .horizon(400_000)],
        },
        Scenario {
            name: "delay-lift",
            description:
                "timeline: an open-ended delay on the first leader is lifted at GST (RemoveDelayRule) vs never lifted",
            specs: {
                // An AddDelayRule with an effectively unbounded window —
                // only the scheduled RemoveDelayRule can end it ("T stops
                // delaying at GST", the honest reading of partial
                // synchrony the window-based rule cannot express).
                let slowed = |label: &str| {
                    ScenarioSpec::new(label, 8, 4)
                        .base_seed(0xd11f7)
                        .synchrony(Synchrony::PartiallySynchronous {
                            gst: 2_000,
                            delta: 10,
                        })
                        .at(
                            0,
                            TimelineEvent::AddDelayRule {
                                from: Some(0),
                                to: None,
                                extra: 1_500,
                                window: u64::MAX,
                            },
                        )
                        .horizon(400_000)
                };
                vec![
                    slowed("lift@gst").at(
                        2_000,
                        TimelineEvent::RemoveDelayRule {
                            from: Some(0),
                            to: None,
                        },
                    ),
                    slowed("never-lifted"),
                ]
            },
        },
        Scenario {
            name: "colluder-defection",
            description:
                "timeline: two of three fork colluders defect to π_0 mid-attack (Lemma 4, dynamic)",
            specs: vec![fork_attack_spec("defect@500", 9, 3, 10.0)
                .at(500, TimelineEvent::SetRole(2, Role::Honest))
                .at(500, TimelineEvent::SetRole(3, Role::Honest))],
        },
        Scenario {
            name: "late-tx-flood",
            description:
                "timeline: a watched tx plus a flood injected mid-run into a censoring committee",
            specs: vec![{
                let mut spec = ScenarioSpec::new("flood@1000", 4, 12)
                    .base_seed(0xf100d)
                    .roles(0..2, Role::PartialCensor)
                    .tx(1, None, b"background-1")
                    .tx(2, None, b"background-2")
                    .watch([999])
                    .censor([999])
                    .utility(UtilitySpec::standard(Theta::CensorSeeking, 12))
                    .at(
                        1_000,
                        TimelineEvent::InjectTx(TxSpec {
                            id: 999,
                            to: None,
                            payload: b"the late censored tx".to_vec(),
                        }),
                    );
                for id in 1_000..1_004u64 {
                    spec = spec.at(
                        1_000,
                        TimelineEvent::InjectTx(TxSpec {
                            id,
                            to: None,
                            payload: b"flood".to_vec(),
                        }),
                    );
                }
                spec
            }],
        },
        Scenario {
            name: "scheduled-split",
            description:
                "timeline: partition sugar opens and heals two mid-run splits over partial synchrony",
            specs: vec![ScenarioSpec::new("2-splits", 9, 6)
                .base_seed(0x59117)
                .synchrony(Synchrony::PartiallySynchronous {
                    gst: 500,
                    delta: 10,
                })
                .at(
                    10_000,
                    TimelineEvent::PartitionStart {
                        groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8]],
                        bridges: vec![],
                    },
                )
                .at(25_000, TimelineEvent::PartitionEnd)
                .at(
                    40_000,
                    TimelineEvent::PartitionStart {
                        groups: vec![vec![0, 2, 4, 6, 8], vec![1, 3, 5, 7]],
                        bridges: vec![],
                    },
                )
                .at(55_000, TimelineEvent::PartitionEnd)
                .horizon(1_000_000)],
        },
        Scenario {
            name: "byzantine-noise",
            description:
                "garbage voters and double-signers inside t0: absorbed (no fork; ≤ t0 convictions, so no Expose)",
            specs: vec![ScenarioSpec::new("garbage+double", 9, 3)
                .base_seed(0xb42)
                .role(7, Role::GarbageVoter)
                .role(8, Role::DoubleVoter)
                .utility(UtilitySpec::standard(Theta::ForkSeeking, 3))],
        },
        Scenario {
            name: "steady-load",
            description:
                "open-loop steady client workload baseline: commit-latency percentiles vs client count",
            specs: [100usize, 1_000]
                .into_iter()
                .map(|clients| {
                    ScenarioSpec::new(format!("clients={clients}"), 8, 400)
                        .base_seed(0x10ad)
                        .horizon(600_000)
                        .workload(
                            WorkloadSpec::steady(clients, 100)
                                .txs_per_client(4)
                                .max_batch(512),
                        )
                })
                .collect(),
        },
        Scenario {
            name: "tx-flood-burst",
            description:
                "on/off burst arrivals flood the committee: latency tail and mempool high-water under bursts",
            specs: vec![ScenarioSpec::new("burst", 8, 400)
                .base_seed(0xf100d)
                .horizon(600_000)
                .workload(
                    WorkloadSpec::bursty(500, 2_000, 8_000, 20)
                        .txs_per_client(8)
                        .max_batch(256),
                )],
        },
        Scenario {
            name: "retry-storm-gst",
            description:
                "clients submitting through a pre-GST delay window: timeout-driven retries across round-robin targets",
            specs: vec![ScenarioSpec::new("gst=20000", 8, 400)
                .base_seed(0x6577)
                .synchrony(Synchrony::PartiallySynchronous {
                    gst: 20_000,
                    delta: 10,
                })
                .horizon(600_000)
                .workload(
                    WorkloadSpec::steady(200, 150)
                        .txs_per_client(4)
                        .max_batch(256),
                )],
        },
        Scenario {
            name: "load-crash",
            description:
                "open-loop clients ride through a mid-stream replica crash: latency and drop accounting across the outage",
            specs: [80_000u64, 120_000]
                .into_iter()
                .map(|tick| {
                    ScenarioSpec::new(format!("crash@{tick}"), 8, 400)
                        .base_seed(0x10adc4)
                        .horizon(200_000)
                        .workload(
                            WorkloadSpec::steady(40, 150)
                                .txs_per_client(4)
                                .max_batch(256),
                        )
                        .at(tick, TimelineEvent::Crash(7))
                })
                .collect(),
        },
        Scenario {
            name: "backpressure-saturation",
            description:
                "bounded mempools under Poisson overload: capacity rejects, client backoff, and drop accounting",
            specs: vec![ScenarioSpec::new("cap=32", 8, 300)
                .base_seed(0xcab)
                .horizon(600_000)
                .workload(
                    WorkloadSpec::poisson(400, 50)
                        .txs_per_client(6)
                        .mempool_capacity(32)
                        .retry(RetryPolicy {
                            on_reject: RejectAction::Requeue,
                            ..RetryPolicy::default()
                        }),
                )],
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated_and_unique() {
        let reg = registry();
        assert!(reg.len() >= 10, "ISSUE requires ≥10 scenarios");
        let mut names: Vec<_> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "names must be unique");
        for s in &reg {
            assert!(!s.specs.is_empty(), "{} has no grid points", s.name);
        }
    }

    #[test]
    fn find_known_and_unknown() {
        assert!(find("fork-attack").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn timeline_scenarios_carry_schedules() {
        for name in [
            "crash-churn",
            "delay-until-gst",
            "delay-lift",
            "colluder-defection",
            "late-tx-flood",
            "scheduled-split",
            "load-crash",
        ] {
            let scenario = find(name).expect("registered");
            assert!(
                scenario.specs.iter().all(|s| s.has_schedule()),
                "{name} must be timeline-driven"
            );
        }
        // … and the static scenarios stay schedule-free.
        assert!(find("honest-sync")
            .unwrap()
            .specs
            .iter()
            .all(|s| !s.has_schedule()));
    }

    #[test]
    fn workload_scenarios_carry_workload_sections() {
        for name in [
            "steady-load",
            "tx-flood-burst",
            "retry-storm-gst",
            "backpressure-saturation",
            "load-crash",
        ] {
            let scenario = find(name).expect("registered");
            assert!(
                scenario.specs.iter().all(|s| s.workload.is_some()),
                "{name} must carry a workload section"
            );
        }
        // The acceptance bar: at least one registry point runs ≥1000
        // clients (the determinism suite reuses it).
        assert!(find("steady-load")
            .unwrap()
            .specs
            .iter()
            .any(|s| s.workload.as_ref().is_some_and(|w| w.clients >= 1_000)));
        // … and the non-workload scenarios stay client-free.
        assert!(find("honest-sync")
            .unwrap()
            .specs
            .iter()
            .all(|s| s.workload.is_none()));
    }
}
