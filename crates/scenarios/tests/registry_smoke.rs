//! Every registered scenario runs to completion: each grid point executes
//! at least one seeded run, produces a coherent record, and the fast
//! scenarios hold their headline property.

use prft_game::SystemState;
use prft_lab::{registry, BatchRunner};
use prft_sim::RunOutcome;

/// Every scenario's *first* grid point completes one run (the full grids
/// are exercised nightly via `prft-lab run-all`; n = 32 committee-scaling
/// points are too slow for a unit-test budget).
#[test]
fn every_registered_scenario_runs() {
    let runner = BatchRunner::all_cores();
    for scenario in registry() {
        let spec = &scenario.specs[0];
        let report = runner.run(spec, 1);
        assert_eq!(report.seeds, 1, "{}: no runs", scenario.name);
        let record = &report.records[0];
        assert_ne!(
            record.outcome,
            RunOutcome::EventLimit,
            "{}: runaway protocol",
            scenario.name
        );
        assert!(
            record.total_messages > 0,
            "{}: nothing was ever sent",
            scenario.name
        );
    }
}

#[test]
fn honest_scenarios_reach_sigma_0() {
    let runner = BatchRunner::all_cores();
    for name in ["honest-sync", "gst-sweep"] {
        let scenario = prft_lab::find(name).expect("registered");
        for report in runner.run_grid(&scenario.specs, 2) {
            assert_eq!(report.agreement_rate, 1.0, "{name}/{}", report.label);
            assert_eq!(
                report.modal_sigma(),
                SystemState::HonestExecution,
                "{name}/{}",
                report.label
            );
            assert!(
                report.min_final_height.mean >= 1.0,
                "{name}/{}",
                report.label
            );
        }
    }
}

#[test]
fn fork_attack_is_contained_and_punished() {
    let scenario = prft_lab::find("fork-attack").expect("registered");
    let report = BatchRunner::all_cores().run(&scenario.specs[0], 4);
    // Theorem 5 / Lemma 4: agreement always holds, and across the batch
    // the deviators get burned whenever the attack progresses.
    assert_eq!(report.agreement_rate, 1.0);
    assert!(
        report.sigma_hist[2] == 0,
        "σ_Fork must never be realized under full pRFT"
    );
    assert!(
        report.burned_players.max > 0.0,
        "double-signers should burn in at least one run"
    );
}

#[test]
fn liveness_attack_stalls_at_large_coalitions() {
    let scenario = prft_lab::find("liveness-attack").expect("registered");
    let big = scenario
        .specs
        .iter()
        .find(|s| s.label == "k+t=6")
        .expect("grid point");
    let report = BatchRunner::all_cores().run(big, 2);
    assert_eq!(report.min_final_height.max, 0.0, "quorum must be starved");
    assert_eq!(report.modal_sigma(), SystemState::NoProgress);
}
