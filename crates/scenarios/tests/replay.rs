//! Exact-replay regression tests: two builds of the same spec + seed must
//! produce identical message traces within one process and across spec
//! clones.
//!
//! The fork path regressed here once: queued split-commit recipients were
//! held in a `HashSet`, whose per-instance hashing state randomized the
//! send order (and with it the link-RNG draw order), so two identical fork
//! runs in the same process could diverge. Recipients are now kept in a
//! `BTreeSet`; this test pins the invariant for the most
//! adversarially-busy scenario shape.

use prft_game::Theta;
use prft_lab::{QueueBackend, Role, ScenarioSpec, TimelineEvent, UtilitySpec};
use prft_sim::SimTime;

fn fork_spec() -> ScenarioSpec {
    ScenarioSpec::new("replay-probe", 9, 3)
        .base_seed(0xf0_17c)
        .role(
            0,
            Role::EquivocatingLeader {
                only_round: Some(0),
            },
        )
        .roles(1..=3, Role::ForkColluder)
        .fork_b_group([7, 8])
        .utility(UtilitySpec::standard(Theta::ForkSeeking, 3))
        .horizon(600_000)
}

fn trace_of(spec: &ScenarioSpec, seed: u64) -> Vec<(u64, usize, usize, &'static str)> {
    let mut sim = prft_lab::build_sim(spec, seed);
    sim.set_tracing(true);
    sim.run_until(SimTime(spec.horizon));
    sim.trace()
        .entries()
        .iter()
        .map(|e| (e.at.0, e.from.0, e.to.0, e.kind))
        .collect()
}

/// Like [`trace_of`], but executes the spec's timeline schedule (the
/// `run_sim` path), so crash/recover events actually fire.
fn scheduled_trace_of(spec: &ScenarioSpec, seed: u64) -> Vec<(u64, usize, usize, &'static str)> {
    let (sim, _) = prft_lab::run_sim(spec, seed, |sim| sim.set_tracing(true));
    sim.trace()
        .entries()
        .iter()
        .map(|e| (e.at.0, e.from.0, e.to.0, e.kind))
        .collect()
}

#[test]
fn fork_run_replays_identically() {
    let spec = fork_spec();
    let a = trace_of(&spec, 42);
    let b = trace_of(&spec, 42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same spec + seed must replay the same trace");
}

#[test]
fn equal_specs_share_dynamics_whatever_their_economics() {
    // Economics (L) feed utility measurement only; the simulated dynamics
    // must be bit-equal across L values.
    let cheap = fork_spec();
    let expensive = ScenarioSpec {
        utility: Some(UtilitySpec {
            penalty_l: 1_000.0,
            ..UtilitySpec::standard(Theta::ForkSeeking, 3)
        }),
        ..fork_spec()
    };
    assert_eq!(trace_of(&cheap, 7), trace_of(&expensive, 7));
}

/// A spec that hammers the engine's crash/cancel bookkeeping: rolling
/// crash/recover churn makes the `crashed` set churn mid-run and drives
/// phase-timeout timers (and their cancellations) hard.
fn churn_spec() -> ScenarioSpec {
    ScenarioSpec::new("churn-probe", 9, 4)
        .base_seed(0xc4a5)
        .role(8, Role::Abstain)
        .phase_timeout(400)
        .at(3_000, TimelineEvent::Crash(6))
        .at(3_000, TimelineEvent::Crash(7))
        .at(40_000, TimelineEvent::Recover(6))
        .at(90_000, TimelineEvent::Recover(7))
        .horizon(400_000)
}

#[test]
fn crash_and_cancel_bookkeeping_replays_identically() {
    // PR-5 determinism audit companion: the engine's `crashed` and
    // `cancelled` sets moved from `HashSet` to `BTreeSet`. They are only
    // ever probed, never iterated — but this pins the invariant the same
    // way the PR-1 `replica.rs` fix is pinned, so a future iteration over
    // either set cannot quietly reintroduce per-instance hash-order
    // nondeterminism. The scenario crashes and recovers players mid-run
    // (churning `crashed`) under a tight phase timeout (churning timer
    // cancellations).
    let spec = churn_spec();
    let a = scheduled_trace_of(&spec, 13);
    let b = scheduled_trace_of(&spec, 13);
    assert!(!a.is_empty());
    assert_eq!(a, b, "crash/cancel-heavy run must replay the same trace");
}

#[test]
fn queue_backends_drain_identical_traces() {
    // The tentpole invariant at the trace level (stronger than report
    // identity): heap and calendar backends deliver every message at the
    // same tick, in the same order, for an adversarially busy fork run
    // *and* for the crash/cancel churn run.
    for spec in [fork_spec(), churn_spec()] {
        let heap = spec.clone().queue(QueueBackend::Heap);
        let calendar = spec.clone().queue(QueueBackend::Calendar);
        let h = scheduled_trace_of(&heap, 21);
        let c = scheduled_trace_of(&calendar, 21);
        assert!(!h.is_empty());
        assert_eq!(h, c, "{}: backends diverged", spec.label);
    }
}
