//! Exact-replay regression tests: two builds of the same spec + seed must
//! produce identical message traces within one process and across spec
//! clones.
//!
//! The fork path regressed here once: queued split-commit recipients were
//! held in a `HashSet`, whose per-instance hashing state randomized the
//! send order (and with it the link-RNG draw order), so two identical fork
//! runs in the same process could diverge. Recipients are now kept in a
//! `BTreeSet`; this test pins the invariant for the most
//! adversarially-busy scenario shape.

use prft_game::Theta;
use prft_lab::{Role, ScenarioSpec, UtilitySpec};
use prft_sim::SimTime;

fn fork_spec() -> ScenarioSpec {
    ScenarioSpec::new("replay-probe", 9, 3)
        .base_seed(0xf0_17c)
        .role(
            0,
            Role::EquivocatingLeader {
                only_round: Some(0),
            },
        )
        .roles(1..=3, Role::ForkColluder)
        .fork_b_group([7, 8])
        .utility(UtilitySpec::standard(Theta::ForkSeeking, 3))
        .horizon(600_000)
}

fn trace_of(spec: &ScenarioSpec, seed: u64) -> Vec<(u64, usize, usize, &'static str)> {
    let mut sim = prft_lab::build_sim(spec, seed);
    sim.set_tracing(true);
    sim.run_until(SimTime(spec.horizon));
    sim.trace()
        .entries()
        .iter()
        .map(|e| (e.at.0, e.from.0, e.to.0, e.kind))
        .collect()
}

#[test]
fn fork_run_replays_identically() {
    let spec = fork_spec();
    let a = trace_of(&spec, 42);
    let b = trace_of(&spec, 42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same spec + seed must replay the same trace");
}

#[test]
fn equal_specs_share_dynamics_whatever_their_economics() {
    // Economics (L) feed utility measurement only; the simulated dynamics
    // must be bit-equal across L values.
    let cheap = fork_spec();
    let expensive = ScenarioSpec {
        utility: Some(UtilitySpec {
            penalty_l: 1_000.0,
            ..UtilitySpec::standard(Theta::ForkSeeking, 3)
        }),
        ..fork_spec()
    };
    assert_eq!(trace_of(&cheap, 7), trace_of(&expensive, 7));
}
