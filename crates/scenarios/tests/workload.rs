//! The workload subsystem's reproducibility and accounting contracts:
//! client populations ride the same deterministic engine as the committee,
//! so a workload sweep is byte-identical at any thread count and across
//! queue backends — including at the 1000-client scale the acceptance
//! criteria pin — and every run conserves transactions
//! (`submitted == committed + dropped + pending`).

use prft_lab::{
    report, BatchRunner, QueueBackend, RejectAction, RetryPolicy, ScenarioSpec, WorkloadSpec,
};
use proptest::prelude::*;

/// A 1000-client steady-load spec sized for test (debug-build) speed:
/// one tx per client, a short round budget, everything else the
/// registry's `steady-load` shape.
fn kiloclient_spec() -> ScenarioSpec {
    ScenarioSpec::new("wl-1k", 8, 60)
        .base_seed(0x77a0)
        .horizon(40_000)
        .workload(
            WorkloadSpec::steady(1_000, 20)
                .txs_per_client(1)
                .max_batch(512),
        )
}

/// A bursty spec exercising the on/off arrival gate and retries.
fn burst_spec() -> ScenarioSpec {
    ScenarioSpec::new("wl-burst", 8, 60)
        .base_seed(0xb57)
        .horizon(40_000)
        .workload(
            WorkloadSpec::bursty(200, 1_000, 3_000, 25)
                .txs_per_client(4)
                .max_batch(256),
        )
}

#[test]
fn thousand_clients_thread_invariant() {
    let spec = kiloclient_spec();
    const SEEDS: u64 = 2;
    let serial = BatchRunner::new(1).run(&spec, SEEDS);
    let parallel = BatchRunner::new(8).run(&spec, SEEDS);
    let s = report::scenario_json("wl", SEEDS, std::slice::from_ref(&serial), true);
    let p = report::scenario_json("wl", SEEDS, std::slice::from_ref(&parallel), true);
    assert_eq!(s, p, "1000-client workload must be --threads invariant");
    assert_eq!(
        report::scenario_csv("wl", &[serial]),
        report::scenario_csv("wl", &[parallel])
    );
}

#[test]
fn thousand_clients_backend_invariant() {
    let spec = kiloclient_spec();
    const SEEDS: u64 = 2;
    let heap = BatchRunner::new(4).run(&spec.clone().queue(QueueBackend::Heap), SEEDS);
    let calendar = BatchRunner::new(4).run(&spec.queue(QueueBackend::Calendar), SEEDS);
    let h = report::scenario_json("wl", SEEDS, &[heap], true);
    let c = report::scenario_json("wl", SEEDS, &[calendar], true);
    assert_eq!(h, c, "queue backend must never change a workload report");
}

#[test]
fn burst_load_thread_and_backend_invariant() {
    let spec = burst_spec();
    const SEEDS: u64 = 3;
    let serial = BatchRunner::new(1).run(&spec, SEEDS);
    let parallel = BatchRunner::new(8).run(&spec.clone().queue(QueueBackend::Calendar), SEEDS);
    // One cross-product probe: serial+heap vs parallel+calendar.
    let s = report::scenario_json("wl", SEEDS, &[serial], true);
    let p = report::scenario_json("wl", SEEDS, &[parallel], true);
    assert_eq!(s, p);
}

#[test]
fn workload_runs_conserve_and_commit_transactions() {
    let rec = prft_lab::run_one(&kiloclient_spec(), 7);
    let w = rec.workload.expect("workload spec yields workload stats");
    assert_eq!(w.clients, 1_000);
    assert_eq!(w.submitted, 1_000, "open-loop offer is fixed by the spec");
    assert_eq!(
        w.submitted,
        w.committed + w.dropped + w.pending,
        "transaction conservation"
    );
    assert!(w.committed > 0, "steady load must make commit progress");
    assert!(w.latency.p50 <= w.latency.p90 && w.latency.p90 <= w.latency.p99);
    assert!(w.latency.p99 <= w.latency.max);
    // The protocol observables stay alongside the workload ones.
    assert!(rec.agreement);
    assert!(rec.min_final_height > 0);
}

#[test]
fn workload_metrics_flow_through_reports() {
    let spec = kiloclient_spec();
    let batch = BatchRunner::new(2).run(&spec, 2);
    let agg = batch.workload.as_ref().expect("workload aggregates");
    assert_eq!(agg.clients, 1_000);
    assert!(agg.committed.mean > 0.0);
    // JSON carries both the batch section and the per-run objects …
    let json = report::scenario_json("wl", 2, std::slice::from_ref(&batch), true);
    assert!(json.contains("\"workload\""));
    assert!(json.contains("\"latency_p99\""));
    assert!(json.contains("\"mempool_peak_occupancy\""));
    // … the observability registry mirrors the counters …
    assert!(batch.observability.counter("workload.txs_submitted") > 0);
    assert!(batch.observability.gauge("workload.latency_p99") > 0);
    // … and the CSV row has the workload columns populated.
    let csv = report::scenario_csv("wl", &[batch]);
    let header_cols = csv.lines().next().unwrap().split(',').count();
    let row = csv.lines().nth(1).unwrap();
    assert_eq!(row.split(',').count(), header_cols);
    assert!(row.contains(",1000,"), "wl_clients column");
}

#[test]
fn non_workload_reports_have_no_workload_section() {
    let spec = ScenarioSpec::new("plain", 5, 2).horizon(200_000);
    let batch = BatchRunner::new(1).run(&spec, 2);
    assert!(batch.workload.is_none());
    let json = report::scenario_json("plain", 2, std::slice::from_ref(&batch), true);
    assert!(!json.contains("\"workload\""));
    // CSV still has the columns, zero-filled.
    let csv = report::scenario_csv("plain", &[batch]);
    assert!(csv
        .lines()
        .nth(1)
        .unwrap()
        .ends_with(",0,0,0,0,0,0,0,0,0,0,0"));
}

#[test]
fn backpressure_saturation_rejects_and_accounts() {
    let spec = ScenarioSpec::new("wl-bp", 8, 40)
        .base_seed(0xcab)
        .horizon(40_000)
        .workload(
            WorkloadSpec::poisson(150, 30)
                .txs_per_client(4)
                .mempool_capacity(16),
        );
    let rec = prft_lab::run_one(&spec, 3);
    let w = rec.workload.expect("workload stats");
    assert_eq!(w.submitted, 600);
    assert_eq!(w.submitted, w.committed + w.dropped + w.pending);
    assert!(
        w.mempool_rejected_full > 0,
        "a 16-slot mempool under 150-client Poisson load must reject"
    );
    assert!(w.backpressure_rejects > 0, "rejects must reach clients");
    assert!(w.mempool_peak_occupancy <= 16, "capacity bound respected");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Transaction conservation holds for arbitrary workload shapes: every
    /// submitted transaction is committed, dropped, or still pending at
    /// run end — across arrival models, mempool capacities, and both
    /// reject reactions — and the latency histogram only counts commits.
    #[test]
    fn any_workload_conserves_transactions(
        clients in 5usize..40,
        txs in 1u64..4,
        arrival in 0u8..3,
        interval in 10u64..120,
        cap in 0usize..48,
        drop_on_reject in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut w = match arrival {
            0 => WorkloadSpec::steady(clients, interval),
            1 => WorkloadSpec::poisson(clients, interval),
            _ => WorkloadSpec::bursty(clients, 800, 2_400, interval),
        };
        w = w.txs_per_client(txs).retry(RetryPolicy {
            on_reject: if drop_on_reject { RejectAction::Drop } else { RejectAction::Requeue },
            ..RetryPolicy::default()
        });
        if cap >= 8 {
            w = w.mempool_capacity(cap);
        }
        let spec = ScenarioSpec::new("wl-prop", 5, 20)
            .base_seed(0x9009)
            .horizon(30_000)
            .workload(w);
        let rec = prft_lab::run_one(&spec, seed);
        let s = rec.workload.expect("workload stats");
        prop_assert_eq!(s.clients, clients as u64);
        prop_assert_eq!(s.submitted, clients as u64 * txs);
        prop_assert_eq!(s.submitted, s.committed + s.dropped + s.pending);
        prop_assert_eq!(s.latency.count, s.committed);
        if cap >= 8 {
            prop_assert!(s.mempool_peak_occupancy <= cap as u64);
        }
    }
}
