//! Scenario-level fast-vs-slow identity: the full JSON report pipeline —
//! batch runner, aggregates, per-run records, merged observability — is
//! **byte-identical** whichever [`VerifyMode`] the specs select. This is
//! the invariant that keeps `verify_mode` out of the spec fingerprint
//! (see `ScenarioSpec::fingerprint`), exactly as the queue-backend
//! equivalence tests do for `queue`.

use prft_lab::{
    report, BatchRunner, Role, ScenarioSpec, Synchrony, TimelineEvent, UtilitySpec, VerifyMode,
};

/// An accountable committee exercising the verification hot paths: an
/// equivocating leader (fraud detection + view change), partial
/// synchrony, and a crash/recover churn schedule (laggard catch-up).
fn churn_spec() -> ScenarioSpec {
    ScenarioSpec::new("fastpath-churn", 8, 3)
        .base_seed(0xfa57_90a7)
        .synchrony(Synchrony::PartiallySynchronous {
            gst: 400,
            delta: 10,
        })
        .role(
            0,
            Role::EquivocatingLeader {
                only_round: Some(0),
            },
        )
        .at(200, TimelineEvent::Crash(5))
        .at(1_500, TimelineEvent::Recover(5))
        .utility(UtilitySpec::standard(prft_game::Theta::ForkSeeking, 3))
        .horizon(300_000)
}

#[test]
fn verify_mode_never_changes_a_report() {
    let fast = churn_spec().verify_mode(VerifyMode::Fast);
    let slow = churn_spec().verify_mode(VerifyMode::Reference);
    const SEEDS: u64 = 6;
    let f = BatchRunner::new(4).run(&fast, SEEDS);
    let s = BatchRunner::new(4).run(&slow, SEEDS);
    assert_eq!(f, s, "fast path changed a batch report");
    let f_json = report::scenario_json("v", SEEDS, &[f], true);
    let s_json = report::scenario_json("v", SEEDS, &[s], true);
    assert_eq!(f_json, s_json, "fast path changed report bytes");
}

#[test]
fn byzantine_grid_is_mode_identical() {
    // A grid of adversarial points: double voters (equivocation evidence
    // through the cache), garbage voters (cached *negative* verdicts on
    // the invalid-proposal path), and an abstainer (timeouts).
    let points = [
        churn_spec(),
        ScenarioSpec::new("double-voter", 9, 2)
            .role(4, Role::DoubleVoter)
            .horizon(300_000),
        ScenarioSpec::new("garbage-voter", 8, 2)
            .role(3, Role::GarbageVoter)
            .horizon(300_000),
        ScenarioSpec::new("abstain", 8, 2)
            .role(6, Role::Abstain)
            .horizon(300_000),
    ];
    const SEEDS: u64 = 3;
    let fast: Vec<ScenarioSpec> = points
        .iter()
        .map(|s| s.clone().verify_mode(VerifyMode::Fast))
        .collect();
    let slow: Vec<ScenarioSpec> = points
        .iter()
        .map(|s| s.clone().verify_mode(VerifyMode::Reference))
        .collect();
    let f = BatchRunner::new(4).run_grid(&fast, SEEDS);
    let s = BatchRunner::new(4).run_grid(&slow, SEEDS);
    assert_eq!(f, s);
    let f_json = report::scenario_json("grid", SEEDS, &f, true);
    let s_json = report::scenario_json("grid", SEEDS, &s, true);
    assert_eq!(f_json, s_json, "fast path changed grid report bytes");
}
