//! The batch runner's reproducibility contract: a parallel sweep and a
//! serial sweep of the same scenario produce **byte-identical** reports,
//! and per-run seeding is order-independent.

use prft_lab::{report, BatchRunner, Role, ScenarioSpec, Synchrony, UtilitySpec};

/// A scenario exercising the interesting machinery (partial synchrony,
/// an abstainer, utilities) while staying fast at small n.
fn busy_spec() -> ScenarioSpec {
    ScenarioSpec::new("determinism-probe", 8, 3)
        .base_seed(0xdead_beef)
        .synchrony(Synchrony::PartiallySynchronous {
            gst: 500,
            delta: 10,
        })
        .role(7, Role::Abstain)
        .utility(UtilitySpec::standard(
            prft_game::Theta::LivenessAttacking,
            3,
        ))
        .horizon(300_000)
}

#[test]
fn parallel_equals_serial_byte_identical() {
    let spec = busy_spec();
    const SEEDS: u64 = 12;
    let serial = BatchRunner::new(1).run(&spec, SEEDS);
    let parallel = BatchRunner::new(8).run(&spec, SEEDS);

    // Structural equality of every record and aggregate …
    assert_eq!(serial, parallel);
    // … and byte-identical serialized reports (the acceptance criterion).
    let s_json = report::scenario_json("p", SEEDS, &[serial], true);
    let p_json = report::scenario_json("p", SEEDS, &[parallel], true);
    assert_eq!(s_json, p_json);
}

#[test]
fn flattened_grid_is_thread_invariant_and_matches_per_point_runs() {
    // run_grid flattens specs × seeds into one par_map; whatever the
    // thread count, the reports must stay byte-identical to each other
    // *and* to running each grid point on its own.
    let specs = vec![
        busy_spec(),
        busy_spec().base_seed(0x0ddba11),
        ScenarioSpec::new("honest-point", 5, 2).horizon(200_000),
    ];
    const SEEDS: u64 = 5;
    let serial = BatchRunner::new(1).run_grid(&specs, SEEDS);
    let parallel = BatchRunner::new(8).run_grid(&specs, SEEDS);
    assert_eq!(serial, parallel);
    let s_json = report::scenario_json("grid", SEEDS, &serial, true);
    let p_json = report::scenario_json("grid", SEEDS, &parallel, true);
    assert_eq!(s_json, p_json);
    let per_point: Vec<_> = specs
        .iter()
        .map(|s| BatchRunner::new(3).run(s, SEEDS))
        .collect();
    assert_eq!(serial, per_point);
}

#[test]
fn rerun_is_reproducible() {
    let spec = busy_spec();
    let a = BatchRunner::new(4).run(&spec, 6);
    let b = BatchRunner::new(4).run(&spec, 6);
    assert_eq!(a, b);
}

#[test]
fn seed_derivation_is_index_addressed() {
    // Running a prefix of the batch yields a prefix of the records: seeds
    // depend only on (base, index), never on batch size or worker order.
    let spec = busy_spec();
    let full = BatchRunner::new(4).run(&spec, 8);
    let prefix = BatchRunner::new(2).run(&spec, 3);
    assert_eq!(&full.records[..3], &prefix.records[..]);
}

#[test]
fn different_base_seeds_differ() {
    let spec = busy_spec();
    let moved = busy_spec().base_seed(0x0ddba11);
    let a = BatchRunner::new(2).run(&spec, 4);
    let b = BatchRunner::new(2).run(&moved, 4);
    let seeds_a: Vec<u64> = a.records.iter().map(|r| r.seed).collect();
    let seeds_b: Vec<u64> = b.records.iter().map(|r| r.seed).collect();
    assert_ne!(seeds_a, seeds_b);
}
