//! The batch runner's reproducibility contract: a parallel sweep and a
//! serial sweep of the same scenario produce **byte-identical** reports,
//! and per-run seeding is order-independent.

use prft_lab::{report, BatchRunner, QueueBackend, Role, ScenarioSpec, Synchrony, UtilitySpec};

/// A scenario exercising the interesting machinery (partial synchrony,
/// an abstainer, utilities) while staying fast at small n.
fn busy_spec() -> ScenarioSpec {
    ScenarioSpec::new("determinism-probe", 8, 3)
        .base_seed(0xdead_beef)
        .synchrony(Synchrony::PartiallySynchronous {
            gst: 500,
            delta: 10,
        })
        .role(7, Role::Abstain)
        .utility(UtilitySpec::standard(
            prft_game::Theta::LivenessAttacking,
            3,
        ))
        .horizon(300_000)
}

#[test]
fn parallel_equals_serial_byte_identical() {
    let spec = busy_spec();
    const SEEDS: u64 = 12;
    let serial = BatchRunner::new(1).run(&spec, SEEDS);
    let parallel = BatchRunner::new(8).run(&spec, SEEDS);

    // Structural equality of every record and aggregate …
    assert_eq!(serial, parallel);
    // … and byte-identical serialized reports (the acceptance criterion).
    let s_json = report::scenario_json("p", SEEDS, &[serial], true);
    let p_json = report::scenario_json("p", SEEDS, &[parallel], true);
    assert_eq!(s_json, p_json);
}

#[test]
fn flattened_grid_is_thread_invariant_and_matches_per_point_runs() {
    // run_grid flattens specs × seeds into one par_map; whatever the
    // thread count, the reports must stay byte-identical to each other
    // *and* to running each grid point on its own.
    let specs = vec![
        busy_spec(),
        busy_spec().base_seed(0x0ddba11),
        ScenarioSpec::new("honest-point", 5, 2).horizon(200_000),
    ];
    const SEEDS: u64 = 5;
    let serial = BatchRunner::new(1).run_grid(&specs, SEEDS);
    let parallel = BatchRunner::new(8).run_grid(&specs, SEEDS);
    assert_eq!(serial, parallel);
    let s_json = report::scenario_json("grid", SEEDS, &serial, true);
    let p_json = report::scenario_json("grid", SEEDS, &parallel, true);
    assert_eq!(s_json, p_json);
    let per_point: Vec<_> = specs
        .iter()
        .map(|s| BatchRunner::new(3).run(s, SEEDS))
        .collect();
    assert_eq!(serial, per_point);
}

#[test]
fn backend_choice_never_changes_a_report() {
    // The queue backend is excluded from the spec fingerprint on the
    // strength of this invariant: heap and calendar drain the same pop
    // order, so batch reports serialize byte-identically.
    let calendar = busy_spec().queue(QueueBackend::Calendar);
    let heap = busy_spec().queue(QueueBackend::Heap);
    const SEEDS: u64 = 8;
    let c = BatchRunner::new(4).run(&calendar, SEEDS);
    let h = BatchRunner::new(4).run(&heap, SEEDS);
    assert_eq!(c, h);
    let c_json = report::scenario_json("b", SEEDS, &[c], true);
    let h_json = report::scenario_json("b", SEEDS, &[h], true);
    assert_eq!(c_json, h_json);
}

#[test]
fn large_committee_is_thread_and_backend_invariant() {
    // A committee-scaling-style point at n = 128 — the scale the calendar
    // queue targets (queue depth ~n²: this run pushes ~49k messages) and
    // well past any committee the rest of the suite builds. Pinned
    // byte-identical for T=1 vs T=8 *and* heap vs calendar in one shot:
    // the run loop, the per-worker seeding, and the queue backend all
    // collapse to one report.
    //
    // τ is overridden down and the Reveal/PoF machinery ablated to keep
    // this inside a debug-build test budget: with defaults, certificates
    // carry ~3n/4 votes each and Reveal ships O(n³κ) bits (Table 3), so
    // an accountable n = 128 round costs minutes of signature re-checks —
    // a release-mode workload (see docs/PERFORMANCE.md). The *message
    // pattern* the queue sees (n² broadcast traffic) is unchanged.
    let calendar = ScenarioSpec::new("n=128", 128, 1)
        .base_seed(0x5ca1e)
        .accountable(false)
        .tau(16)
        .horizon(400_000);
    let heap = calendar.clone().queue(QueueBackend::Heap);
    const SEEDS: u64 = 2;
    let t1 = BatchRunner::new(1).run(&calendar, SEEDS);
    let t8 = BatchRunner::new(8).run(&calendar, SEEDS);
    let t8_heap = BatchRunner::new(8).run(&heap, SEEDS);
    assert_eq!(t1, t8, "thread count changed an n = 128 report");
    let cal_json = report::scenario_json("n128", SEEDS, &[t8], true);
    let heap_json = report::scenario_json("n128", SEEDS, &[t8_heap], true);
    assert_eq!(cal_json, heap_json, "backend changed an n = 128 report");
    // Sanity: the committee actually ran (agreement over a full round).
    assert_eq!(t1.agreement_rate, 1.0);
}

#[test]
fn rerun_is_reproducible() {
    let spec = busy_spec();
    let a = BatchRunner::new(4).run(&spec, 6);
    let b = BatchRunner::new(4).run(&spec, 6);
    assert_eq!(a, b);
}

#[test]
fn seed_derivation_is_index_addressed() {
    // Running a prefix of the batch yields a prefix of the records: seeds
    // depend only on (base, index), never on batch size or worker order.
    let spec = busy_spec();
    let full = BatchRunner::new(4).run(&spec, 8);
    let prefix = BatchRunner::new(2).run(&spec, 3);
    assert_eq!(&full.records[..3], &prefix.records[..]);
}

#[test]
fn different_base_seeds_differ() {
    let spec = busy_spec();
    let moved = busy_spec().base_seed(0x0ddba11);
    let a = BatchRunner::new(2).run(&spec, 4);
    let b = BatchRunner::new(2).run(&moved, 4);
    let seeds_a: Vec<u64> = a.records.iter().map(|r| r.seed).collect();
    let seeds_b: Vec<u64> = b.records.iter().map(|r| r.seed).collect();
    assert_ne!(seeds_a, seeds_b);
}
