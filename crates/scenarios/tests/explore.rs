//! The game explorer's contracts: symmetry reduction reproduces the full
//! sweep, the on-disk cache turns re-sweeps into pure reads (and wider
//! sweeps into partial reads), and thread count never changes a report
//! byte.

use prft_lab::{
    find_game, report, BatchRunner, GameDef, GameEval, GameExplorer, Role, ScenarioSpec,
    UtilityCache, UtilitySpec,
};
use std::path::PathBuf;

/// A scratch cache directory unique to this test process.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prft-explore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cheap simulated game sharing the `abstain-quorum` committee shape:
/// two never-leading seats of n = 6 choose {π_0, π_abs}.
fn pair_game(wide: bool) -> GameDef {
    fn spec_of(profile: &prft_game::Profile) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(format!("{profile:?}"), 6, 2)
            .base_seed(0xca5e)
            .utility(UtilitySpec::standard(
                prft_game::Theta::LivenessAttacking,
                2,
            ))
            .horizon(150_000);
        for (i, &s) in profile.iter().enumerate() {
            match s {
                0 => {}
                1 => spec = spec.role(4 + i, Role::Abstain),
                2 => spec = spec.role(4 + i, Role::Crash),
                _ => unreachable!(),
            }
        }
        spec
    }
    let strategies = if wide {
        vec![vec!["π_0", "π_abs", "crash"]; 2]
    } else {
        vec![vec!["π_0", "π_abs"]; 2]
    };
    GameDef {
        name: if wide { "pair-wide" } else { "pair" },
        description: "test game",
        strategies,
        symmetry: vec![],
        honest: vec![0, 0],
        cache_scope: "pair",
        eval: GameEval::Simulated {
            players: vec![4, 5],
            spec_of,
        },
    }
}

#[test]
fn symmetry_reduction_reproduces_the_full_sweep() {
    // `abstain-quorum` declares its three seats interchangeable; the
    // reduced sweep (4 cells) must reproduce the full sweep (8 cells)
    // cell-for-cell — utilities, CIs, and σ states alike.
    let game = find_game("abstain-quorum").expect("registered game");
    let reduced = GameExplorer::new(BatchRunner::new(2)).explore(&game, 3);
    let full = GameExplorer::new(BatchRunner::new(2))
        .without_symmetry()
        .explore(&game, 3);
    assert_eq!(reduced.evaluated, 4, "C(4, 3) canonical profiles");
    assert_eq!(reduced.expanded, 4);
    assert_eq!(full.evaluated, 8);
    assert_eq!(full.expanded, 0);
    for (profile, full_stats) in full.table.cells() {
        assert_eq!(
            reduced.table.get(profile),
            Some(full_stats),
            "cell {profile:?} diverges between reduced and full sweeps"
        );
    }
    // And the rendered equilibrium reports are byte-identical.
    assert_eq!(
        report::explore_json(&game, &reduced, 1e-9),
        report::explore_json(&game, &full, 1e-9)
    );
}

#[test]
fn cache_turns_resweeps_into_hits() {
    let dir = scratch_dir("hits");
    let cache = UtilityCache::new(&dir);
    let game = pair_game(false);
    let runner = BatchRunner::new(2);

    let cold = GameExplorer::new(runner)
        .with_cache(cache.clone())
        .explore(&game, 2);
    assert_eq!(
        (cold.evaluated, cold.cached),
        (4, 0),
        "cold sweep simulates"
    );

    let warm = GameExplorer::new(runner)
        .with_cache(cache.clone())
        .explore(&game, 2);
    assert_eq!(
        (warm.evaluated, warm.cached),
        (0, 4),
        "re-sweep is pure reads"
    );
    assert_eq!(
        report::explore_json(&game, &cold, 1e-9),
        report::explore_json(&game, &warm, 1e-9),
        "a cache hit reproduces the computed report byte-exactly"
    );

    // A different seed count is a different cell: misses again.
    let reseeded = GameExplorer::new(runner)
        .with_cache(cache.clone())
        .explore(&game, 3);
    assert_eq!((reseeded.evaluated, reseeded.cached), (4, 0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wider_sweep_reuses_narrow_cells_through_the_shared_scope() {
    let dir = scratch_dir("widen");
    let cache = UtilityCache::new(&dir);
    let runner = BatchRunner::new(2);

    let narrow = GameExplorer::new(runner)
        .with_cache(cache.clone())
        .explore(&pair_game(false), 2);
    assert_eq!((narrow.evaluated, narrow.cached), (4, 0));

    // The 3×3 widening shares `spec_of`, seats, and cache scope: its 2×2
    // sub-square is already on disk, only the 5 new cells simulate.
    let wide = GameExplorer::new(runner)
        .with_cache(cache.clone())
        .explore(&pair_game(true), 2);
    assert_eq!((wide.evaluated, wide.cached), (5, 4));

    // The shared cells agree with the narrow sweep.
    for profile in [vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]] {
        assert_eq!(narrow.table.get(&profile), wide.table.get(&profile));
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_lines_degrade_to_misses() {
    let dir = scratch_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("pair.cells"), "not a cache line\nv1\tbroken\n").unwrap();
    let out = GameExplorer::new(BatchRunner::new(1))
        .with_cache(UtilityCache::new(&dir))
        .explore(&pair_game(false), 2);
    assert_eq!((out.evaluated, out.cached), (4, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_reports_are_thread_count_invariant() {
    // The acceptance criterion: `--threads 1` and `--threads 8` produce
    // byte-identical equilibrium reports, in every format.
    let game = find_game("abstain-quorum").expect("registered game");
    let serial = GameExplorer::new(BatchRunner::new(1)).explore(&game, 4);
    let parallel = GameExplorer::new(BatchRunner::new(8)).explore(&game, 4);
    assert_eq!(
        report::explore_json(&game, &serial, 1e-9),
        report::explore_json(&game, &parallel, 1e-9)
    );
    assert_eq!(
        report::explore_csv(&game, &serial),
        report::explore_csv(&game, &parallel)
    );
    assert_eq!(
        report::explore_table(&game, &serial, 1e-9),
        report::explore_table(&game, &parallel, 1e-9)
    );
}

#[test]
fn registered_trap_game_reproduces_theorem_3() {
    let game = find_game("trap-k3").expect("registered game");
    let out = GameExplorer::new(BatchRunner::new(2)).explore(&game, 1);
    let ne = out.table.nash_equilibria(1e-9);
    assert!(ne.contains(&vec![0, 0, 0]), "all-fork is a NE");
    assert!(ne.contains(&vec![1, 1, 1]), "all-bait is a NE");
    // G/k for the forkers; the focal analysis lives in to_game().
    let fork_u = out.table.utilities(&vec![0, 0, 0]);
    assert!((fork_u[0] - 8.0 / 3.0).abs() < 1e-12);
    let eg = out.table.to_game();
    assert_eq!(
        eg.focal_among(&ne, &[0, 1, 2]).unwrap(),
        &vec![0, 0, 0],
        "the insecure equilibrium is focal"
    );
}

#[test]
fn batch_sweeps_share_cells_across_scope_mates() {
    // One explore_all batch over the narrow and wide pair games (shared
    // cache scope, no disk cache): the 2×2 sub-square is simulated once
    // and *shared* into the wide game, and each per-game report is
    // byte-identical to sweeping that game alone.
    let runner = BatchRunner::new(2);
    let games = [pair_game(false), pair_game(true)];
    let both = GameExplorer::new(runner).explore_all(&games, 2);
    assert_eq!(
        (both[0].evaluated, both[0].cached, both[0].shared),
        (4, 0, 0)
    );
    assert_eq!(
        (both[1].evaluated, both[1].cached, both[1].shared),
        (5, 0, 4),
        "the wide game reuses the narrow game's 4 cells in-batch"
    );
    for (game, batched) in games.iter().zip(&both) {
        let alone = GameExplorer::new(runner).explore(game, 2);
        assert_eq!(
            report::explore_json(game, batched, 1e-9),
            report::explore_json(game, &alone, 1e-9),
            "{}: batching must not change the report",
            game.name
        );
    }
    // And the batch itself is thread-count invariant.
    let serial = GameExplorer::new(BatchRunner::new(1)).explore_all(&games, 2);
    for (game, (s, p)) in games.iter().zip(serial.iter().zip(&both)) {
        assert_eq!(
            report::explore_json(game, s, 1e-9),
            report::explore_json(game, p, 1e-9),
            "{}: T=1 vs T=2 batch",
            game.name
        );
    }
}

#[test]
fn batch_sweeps_mix_analytic_and_simulated_games() {
    let games = [pair_game(false), find_game("trap-k3").expect("registered")];
    let out = GameExplorer::new(BatchRunner::new(2)).explore_all(&games, 1);
    assert!(out[0].table.is_complete());
    assert!(out[1].table.is_complete());
    assert_eq!(out[1].seeds, 1, "analytic cells are exact");
    assert!(out[1].table.nash_equilibria(1e-9).contains(&vec![0, 0, 0]));
}

#[test]
fn mixed_and_dynamics_reports_are_thread_count_invariant() {
    // The --mixed/--dynamics analyses are pure functions of the finished
    // table, so T=1 and T=8 sweeps emit byte-identical documents in every
    // format, sections included.
    let game = find_game("abstain-quorum").expect("registered game");
    let opts = report::ExploreOpts {
        mixed: true,
        dynamics: true,
    };
    let serial = GameExplorer::new(BatchRunner::new(1)).explore(&game, 4);
    let parallel = GameExplorer::new(BatchRunner::new(8)).explore(&game, 4);
    assert_eq!(
        report::explore_json_with(&game, &serial, 1e-9, opts),
        report::explore_json_with(&game, &parallel, 1e-9, opts)
    );
    assert_eq!(
        report::explore_csv_with(&game, &serial, 1e-9, opts),
        report::explore_csv_with(&game, &parallel, 1e-9, opts)
    );
    assert_eq!(
        report::explore_table_with(&game, &serial, 1e-9, opts),
        report::explore_table_with(&game, &parallel, 1e-9, opts)
    );
    let json = report::explore_json_with(&game, &serial, 1e-9, opts);
    assert!(json.contains("\"mixed\""));
    assert!(json.contains("\"dynamics\""));
}

#[test]
fn matching_pennies_mixed_equilibrium_is_exact() {
    // The acceptance criterion: the 2×2 reference game's analytic mixed
    // equilibrium (1/2, 1/2) is found to within 1e-6.
    let game = find_game("matching-pennies").expect("registered game");
    let out = GameExplorer::new(BatchRunner::new(1)).explore(&game, 1);
    assert!(out.table.nash_equilibria(0.0).is_empty(), "no pure NE");
    let analysis = prft_game::mixed_analysis(&out.table, 1e-9);
    assert_eq!(analysis.method, "support-enumeration");
    assert_eq!(analysis.equilibria.len(), 1);
    for dist in &analysis.equilibria[0].distributions {
        assert!((dist[0] - 0.5).abs() < 1e-6);
        assert!((dist[1] - 0.5).abs() < 1e-6);
    }
    let json = report::explore_json_with(
        &game,
        &out,
        1e-9,
        report::ExploreOpts {
            mixed: true,
            dynamics: true,
        },
    );
    assert!(json.contains("0.5"), "the mixture reaches the report");
    assert!(json.contains("\"cycling_starts\": 4"), "pennies cycles");
}

#[test]
fn trap_k3_interior_equilibrium_matches_the_closed_form() {
    // Cross-check against the hand-solved indifference system:
    // 21p² − 41p + 16 = 0 ⇒ p* = (41 − √337)/42 ≈ 0.539106.
    let game = find_game("trap-k3").expect("registered game");
    let out = GameExplorer::new(BatchRunner::new(1)).explore(&game, 1);
    let found = prft_game::symmetric_mixed_equilibria(&out.table, 1e-9);
    assert_eq!(found.len(), 1);
    let expected = (41.0 - 337.0_f64.sqrt()) / 42.0;
    for dist in &found[0].distributions {
        assert!((dist[0] - expected).abs() < 1e-9);
    }
    // Dynamics quantify "the insecure equilibrium is focal": the all-fork
    // basin captures most starts.
    let summary = prft_game::best_reply_summary(&out.table, 1e-9);
    assert_eq!(
        summary.attractors,
        vec![(vec![0, 0, 0], 6), (vec![1, 1, 1], 2)],
        "6 of 8 starts best-reply into the fork equilibrium"
    );
}
