//! The observability layer's contracts: the counter registry aggregates
//! order-independently (byte-identical reports at any thread count and
//! across queue backends), counters are monotone under merge and under
//! longer runs, and the Chrome-trace export is pinned by a golden file.

use prft_lab::{report, BatchRunner, QueueBackend, ScenarioSpec};
use proptest::prelude::*;

/// The fig2 single-round committee: small, crash-free, quiescent — the
/// same spec `fig2_trace` renders, so the golden trace doubles as the
/// paper-figure regression.
fn fig2_spec() -> ScenarioSpec {
    ScenarioSpec::new("fig2", 4, 1)
        .base_seed(7)
        .horizon(100_000)
}

/// A busier committee (8 replicas, 3 rounds) for the determinism checks.
fn probe_spec() -> ScenarioSpec {
    ScenarioSpec::new("obs-probe", 8, 3)
        .base_seed(0x0b5e_7a11)
        .horizon(300_000)
}

#[test]
fn observability_section_is_thread_invariant() {
    let spec = probe_spec();
    const SEEDS: u64 = 8;
    let serial = BatchRunner::new(1).run(&spec, SEEDS);
    let parallel = BatchRunner::new(8).run(&spec, SEEDS);
    // The registry itself merges order-independently …
    assert_eq!(serial.observability, parallel.observability);
    assert!(!serial.observability.is_empty());
    // … and the full serialized report (which embeds the observability
    // section) is byte-identical — the CI acceptance criterion.
    let s = report::scenario_json("p", SEEDS, &[serial], false);
    let p = report::scenario_json("p", SEEDS, &[parallel], false);
    assert_eq!(s, p);
    assert!(s.contains("\"observability\""));
    assert!(s.contains("\"crypto.sig_verifies\""));
}

#[test]
fn observability_section_is_queue_backend_invariant() {
    let spec = probe_spec();
    const SEEDS: u64 = 6;
    let heap = BatchRunner::new(4).run(&spec.clone().queue(QueueBackend::Heap), SEEDS);
    let calendar = BatchRunner::new(4).run(&spec.queue(QueueBackend::Calendar), SEEDS);
    assert_eq!(heap.observability, calendar.observability);
    let h = report::scenario_json("q", SEEDS, &[heap], false);
    let c = report::scenario_json("q", SEEDS, &[calendar], false);
    assert_eq!(h, c);
}

#[test]
fn per_run_engine_counters_surface_in_reports() {
    let spec = fig2_spec();
    let record = prft_lab::run_one(&spec, spec.base_seed);
    // The scalar engine counters ride on every run record …
    assert!(record.events_dispatched > 0);
    assert!(record.peak_queue_depth > 0);
    assert_eq!(record.in_flight_messages, 0, "quiescent run drains fully");
    // … and the registry holds the full catalog for the same run.
    assert_eq!(
        record.obs.counter("engine.events_dispatched"),
        record.events_dispatched
    );
    assert!(record.obs.counter("crypto.sig_verifies") > 0);
    assert!(record.obs.counter("engine.clone_bytes") > 0);
    assert!(record.obs.gauge("engine.peak_arena_occupancy") > 0);
    // Per-kind receive accounting: in a quiescent run every replica saw
    // every phase's quorum of messages.
    for i in 0..4 {
        assert_eq!(record.obs.counter(&format!("recv.P{i}.Propose.msgs")), 1);
        assert_eq!(record.obs.counter(&format!("recv.P{i}.Vote.msgs")), 4);
    }
    // CSV surfaces the aggregates (last columns of the schema).
    let batch = BatchRunner::new(1).run(&fig2_spec(), 2);
    let csv = report::scenario_csv("fig2", &[batch]);
    let header = csv.lines().next().unwrap();
    assert!(header
        .contains("events_dispatched_mean,peak_queue_depth_max,in_flight_max,sig_verifies_total"));
    assert!(header.ends_with("wl_latency_p99_mean,wl_mempool_peak_max"));
}

/// Pinned Chrome-trace export for the fig2 run. Regenerate after an
/// intentional protocol or trace-format change with:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test -p prft-lab --test observability
/// ```
#[test]
fn chrome_trace_matches_golden_file() {
    let spec = fig2_spec();
    let rendered = prft_lab::chrome_trace_for(&spec, spec.base_seed).render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig2_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "Chrome trace drifted from tests/golden/fig2_trace.json \
         (UPDATE_GOLDEN=1 regenerates after intentional changes)"
    );
}

#[test]
fn chrome_trace_is_well_formed() {
    let spec = fig2_spec();
    let trace = prft_lab::chrome_trace_for(&spec, spec.base_seed);
    assert!(!trace.is_empty());
    let rendered = trace.render();
    assert!(rendered.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(rendered.ends_with("]}\n"));
    // Thread metadata for each replica, phase spans, message instants.
    assert!(rendered.contains("\"thread_name\""));
    assert!(rendered.contains("\"ph\":\"X\""));
    assert!(rendered.contains("\"ph\":\"i\""));
    assert!(rendered.contains("\"cat\":\"phase\""));
    assert!(rendered.contains("\"cat\":\"msg\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Counters are monotone in run length: an honest committee run for
    /// more rounds never decrements any counter or gauge of the shorter
    /// run's registry.
    #[test]
    fn counters_monotone_in_rounds(n in 4usize..9, rounds in 1u64..3, seed in 0u64..1000) {
        let short = prft_lab::run_one(
            &ScenarioSpec::new("m", n, rounds).base_seed(seed).horizon(400_000),
            seed,
        );
        let long = prft_lab::run_one(
            &ScenarioSpec::new("m", n, rounds + 1).base_seed(seed).horizon(400_000),
            seed,
        );
        for (key, value) in short.obs.counters() {
            prop_assert!(
                long.obs.counter(key) >= value,
                "counter {key} shrank: {} < {value}",
                long.obs.counter(key)
            );
        }
        for (key, value) in short.obs.gauges() {
            prop_assert!(long.obs.gauge(key) >= value, "gauge {key} shrank");
        }
    }

    /// Merging more runs into a batch registry is monotone: a superset of
    /// seeds dominates every counter of the subset's merged registry.
    #[test]
    fn merged_registry_monotone_in_seeds(seeds in 1u64..5) {
        let spec = fig2_spec();
        let small = BatchRunner::new(2).run(&spec, seeds);
        let large = BatchRunner::new(2).run(&fig2_spec(), seeds + 2);
        for (key, value) in small.observability.counters() {
            prop_assert!(large.observability.counter(key) >= value);
        }
    }
}
