//! The spec-v2 timeline contract: scheduled fault & network events are
//! exactly as deterministic as static specs — byte-identical reports at
//! any thread count, bit-identical traces on replay — and same-tick
//! events apply in insertion order.

use prft_lab::{
    report, BatchRunner, Role, ScenarioSpec, Synchrony, TimelineEvent, TxSpec, UtilitySpec,
};
use prft_types::NodeId;

/// A schedule exercising every runtime event kind at once: mid-run crash
/// and recovery, a targeted-delay rule, a role switch, and a late tx.
fn busy_timeline_spec() -> ScenarioSpec {
    ScenarioSpec::new("timeline-probe", 8, 4)
        .base_seed(0x7155)
        .synchrony(Synchrony::PartiallySynchronous {
            gst: 500,
            delta: 10,
        })
        .utility(UtilitySpec::standard(
            prft_game::Theta::LivenessAttacking,
            4,
        ))
        .at(
            300,
            TimelineEvent::AddDelayRule {
                from: Some(1),
                to: None,
                extra: 250,
                window: 5_000,
            },
        )
        .at(2_000, TimelineEvent::Crash(7))
        .at(
            2_500,
            TimelineEvent::InjectTx(TxSpec {
                id: 77,
                to: None,
                payload: b"late".to_vec(),
            }),
        )
        .at(4_000, TimelineEvent::SetRole(6, Role::Abstain))
        .at(10_000, TimelineEvent::Recover(7))
        .horizon(300_000)
}

fn trace_of(spec: &ScenarioSpec, seed: u64) -> Vec<(u64, usize, usize, &'static str)> {
    let (sim, _) = prft_lab::run_sim(spec, seed, |sim| sim.set_tracing(true));
    sim.trace()
        .entries()
        .iter()
        .map(|e| (e.at.0, e.from.0, e.to.0, e.kind))
        .collect()
}

#[test]
fn timeline_run_replays_identically() {
    let spec = busy_timeline_spec();
    let a = trace_of(&spec, 42);
    let b = trace_of(&spec, 42);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same spec + seed must replay the same trace");
}

#[test]
fn timeline_parallel_equals_serial_byte_identical() {
    let spec = busy_timeline_spec();
    const SEEDS: u64 = 10;
    let serial = BatchRunner::new(1).run(&spec, SEEDS);
    let parallel = BatchRunner::new(8).run(&spec, SEEDS);
    assert_eq!(serial, parallel);
    let s_json = report::scenario_json("t", SEEDS, &[serial], true);
    let p_json = report::scenario_json("t", SEEDS, &[parallel], true);
    assert_eq!(s_json, p_json);
}

#[test]
fn timeline_events_change_the_run() {
    // The schedule must actually reach the simulation: the same spec
    // minus its schedule produces a different trace.
    let scheduled = busy_timeline_spec();
    let static_spec = ScenarioSpec {
        schedule: Vec::new(),
        ..busy_timeline_spec()
    };
    assert_ne!(trace_of(&scheduled, 42), trace_of(&static_spec, 42));
}

#[test]
fn same_tick_events_apply_in_insertion_order() {
    let base = || {
        ScenarioSpec::new("order-probe", 5, 3)
            .base_seed(0x0bde)
            .horizon(200_000)
    };
    // Crash(4) then Recover(4) at the same tick → the node ends up alive;
    // the reverse insertion order ends with it crashed. Tick 30 lands
    // mid-protocol (round ~1 of 3), so the surviving order shapes the
    // rest of the run, not just the final crash flag.
    let crash_last_wins = base()
        .at(30, TimelineEvent::Recover(4))
        .at(30, TimelineEvent::Crash(4));
    let recover_last_wins = base()
        .at(30, TimelineEvent::Crash(4))
        .at(30, TimelineEvent::Recover(4));
    let (dead, _) = prft_lab::run_sim(&crash_last_wins, 7, |_| {});
    let (alive, _) = prft_lab::run_sim(&recover_last_wins, 7, |_| {});
    assert!(dead.is_crashed(NodeId(4)));
    assert!(!alive.is_crashed(NodeId(4)));
    // Pin the semantics with traces: each ordering replays identically to
    // itself, and the two orderings genuinely diverge.
    assert_eq!(trace_of(&crash_last_wins, 7), trace_of(&crash_last_wins, 7));
    assert_ne!(
        trace_of(&crash_last_wins, 7),
        trace_of(&recover_last_wins, 7)
    );
}

#[test]
fn partition_sugar_matches_explicit_window() {
    let explicit = ScenarioSpec::new("explicit", 6, 4)
        .base_seed(0x9a9)
        .partition(prft_lab::PartitionSpec {
            start: 1_000,
            end: 8_000,
            groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
            bridges: vec![],
        })
        .horizon(400_000);
    let sugared = ScenarioSpec::new("explicit", 6, 4)
        .base_seed(0x9a9)
        .at(
            1_000,
            TimelineEvent::PartitionStart {
                groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
                bridges: vec![],
            },
        )
        .at(8_000, TimelineEvent::PartitionEnd)
        .horizon(400_000);
    assert_eq!(trace_of(&explicit, 3), trace_of(&sugared, 3));
    // Sugar and explicit windows are different spec encodings, though:
    // the fingerprint (cache key) must keep them apart.
    assert_ne!(explicit.fingerprint(), sugared.fingerprint());
}

#[test]
fn set_role_swaps_the_live_behavior() {
    let spec = ScenarioSpec::new("defect", 9, 3)
        .base_seed(0xf0_17c)
        .role(
            0,
            Role::EquivocatingLeader {
                only_round: Some(0),
            },
        )
        .roles(1..=3, Role::ForkColluder)
        .fork_b_group([7, 8])
        .at(500, TimelineEvent::SetRole(2, Role::Honest))
        .at(500, TimelineEvent::SetRole(3, Role::Honest))
        .horizon(600_000);
    let (sim, _) = prft_lab::run_sim(&spec, 11, |_| {});
    assert_eq!(sim.node(NodeId(1)).behavior_label(), "fork");
    assert_eq!(sim.node(NodeId(2)).behavior_label(), "honest");
    assert_eq!(sim.node(NodeId(3)).behavior_label(), "honest");
}

#[test]
fn remove_delay_rule_lifts_the_slowdown() {
    // An AddDelayRule with an unbounded window that only a scheduled
    // RemoveDelayRule can end.
    let slowed = |label: &str| {
        ScenarioSpec::new(label, 8, 4)
            .base_seed(0xd11f7)
            .synchrony(Synchrony::PartiallySynchronous {
                gst: 2_000,
                delta: 10,
            })
            .at(
                0,
                TimelineEvent::AddDelayRule {
                    from: Some(0),
                    to: None,
                    extra: 1_500,
                    window: u64::MAX,
                },
            )
            .horizon(400_000)
    };
    let lifted = slowed("lift").at(
        2_000,
        TimelineEvent::RemoveDelayRule {
            from: Some(0),
            to: None,
        },
    );
    let never = slowed("never");
    assert_ne!(
        trace_of(&lifted, 42),
        trace_of(&never, 42),
        "the removal must reach the live rule set"
    );
    // A removal replays identically to itself …
    assert_eq!(trace_of(&lifted, 42), trace_of(&lifted, 42));
    // … removing a pattern nothing matches is a runtime no-op …
    let no_match = slowed("no-match").at(
        2_000,
        TimelineEvent::RemoveDelayRule {
            from: Some(5),
            to: Some(2),
        },
    );
    assert_eq!(trace_of(&no_match, 42), trace_of(&never, 42));
    // … but still a different spec: the cache must keep them apart.
    assert_ne!(no_match.fingerprint(), never.fingerprint());
    assert_ne!(lifted.fingerprint(), never.fingerprint());
}

#[test]
fn registry_timeline_scenarios_hold_their_headlines() {
    let runner = BatchRunner::all_cores();
    // crash-churn: rolling ≤2-of-9 crashes never cost liveness/agreement.
    let churn = prft_lab::find("crash-churn").expect("registered");
    let report = runner.run(&churn.specs[0], 2);
    assert_eq!(report.agreement_rate, 1.0);
    assert!(report.min_final_height.mean >= 1.0, "churn must not stall");
    // colluder-defection: agreement holds and the attack never lands.
    let defect = prft_lab::find("colluder-defection").expect("registered");
    let report = runner.run(&defect.specs[0], 2);
    assert_eq!(report.agreement_rate, 1.0);
    assert_eq!(report.sigma_hist[2], 0, "σ_Fork must never be realized");
    // late-tx-flood: the injected watched tx stays censored.
    let flood = prft_lab::find("late-tx-flood").expect("registered");
    let report = runner.run(&flood.specs[0], 2);
    for record in &report.records {
        assert_eq!(
            record.watched_finalized,
            vec![false],
            "censors must keep the late tx out"
        );
    }
    // delay-lift: both grid points keep agreement and full height, and
    // lifting the rule at GST visibly changes the runs vs never lifting.
    let lift = prft_lab::find("delay-lift").expect("registered");
    let reports = runner.run_grid(&lift.specs, 8);
    for report in &reports {
        assert_eq!(report.agreement_rate, 1.0, "{}", report.label);
        assert!(report.min_final_height.mean >= 3.0, "{}", report.label);
    }
    assert_ne!(
        reports[0].total_messages, reports[1].total_messages,
        "the lifted rule must change message flow"
    );
}
