//! The checkpoint/fork warm-start differential suite: a forked run is
//! **byte-identical** to a fresh one.
//!
//! Warm starts let sweep cells sharing a timeline prefix resume from one
//! captured state instead of re-simulating it (`docs/CHECKPOINTING.md`).
//! That is only sound if forking is invisible in every observable — so
//! this suite pins, over every registry scenario with a timeline:
//!
//! * fork-at-each-boundary vs fresh, full single-run report compared as
//!   bytes (the store is truncated per boundary so the fork is forced to
//!   start exactly there, not just at the deepest capture);
//! * warm vs cold grid runs across `--threads {1, 8}` and
//!   `--queue {heap, calendar}`;
//! * `explore run-all` warm vs cold, with the reuse accounting asserted
//!   (cross-game `shared` cells on lemma4-wide, checkpoint forks from
//!   fork-defection's shared pre-defection prefix);
//! * the delay-lift pair: a fork taken across a delay-rule boundary must
//!   replay the prefix's `AddDelayRule`/`RemoveDelayRule` events onto its
//!   fresh network stack — a checkpoint that carried (or dropped) live
//!   rule state would resurrect a lifted delay or lose an active one;
//! * workload (committee-plus-client) cells fork and capture like
//!   committee cells, with the client conservation invariant
//!   `submitted == committed + dropped + pending` intact under forks;
//! * suffix captures: with capture hints installed, a producer captures
//!   *past its own last event* at a sibling's fork tick, and the sibling
//!   resumes there instead of replaying the shared tail;
//! * an event scheduled exactly at the horizon is applied identically by
//!   fresh, capturing, and forked runs.

use prft_lab::{
    derive_seed, find, game_registry, registry, report, run_one, run_one_with, BatchReport,
    BatchRunner, CheckpointStore, Exploration, GameExplorer, QueueBackend, ReuseStats, RunRecord,
    Scenario, ScenarioSpec, TimelineEvent, WorkloadSpec,
};

/// Registry scenarios with at least one scheduled event.
fn timeline_scenarios() -> Vec<Scenario> {
    let out: Vec<Scenario> = registry()
        .into_iter()
        .filter(|s| s.specs.iter().any(|sp| sp.has_schedule()))
        .collect();
    assert!(out.len() >= 6, "registry lost its timeline scenarios");
    out
}

/// Full single-run report (runs included) — the byte-comparison target.
fn full_report(spec: &ScenarioSpec, record: RunRecord) -> String {
    let report_ = BatchReport::from_records(spec.label.clone(), spec.n, vec![record]);
    report::scenario_json(&spec.label, 1, &[report_], true)
}

/// The spec's distinct fork boundaries: non-sugar event ticks in
/// `(0, horizon]`.
fn event_boundaries(spec: &ScenarioSpec) -> Vec<u64> {
    let mut ticks: Vec<u64> = spec
        .schedule
        .iter()
        .filter(|(t, e)| !e.is_partition_sugar() && *t > 0 && *t <= spec.horizon)
        .map(|(t, _)| *t)
        .collect();
    ticks.sort_unstable();
    ticks.dedup();
    ticks
}

/// For every timeline spec: a capturing run is byte-identical to a fresh
/// one, and a run forked from *each* event boundary (the store truncated
/// so deeper captures cannot mask shallower ones) is byte-identical too.
#[test]
fn fork_at_each_boundary_matches_fresh() {
    for scenario in timeline_scenarios() {
        for spec in &scenario.specs {
            let seed = derive_seed(spec.base_seed, 0);
            let reference = full_report(spec, run_one(spec, seed));
            let store = CheckpointStore::default();
            let captured = full_report(spec, run_one_with(spec, seed, Some(&store)));
            assert_eq!(
                captured, reference,
                "{}/{}: capturing checkpoints perturbed the run",
                scenario.name, spec.label
            );
            for tb in event_boundaries(spec) {
                let store = CheckpointStore::default();
                run_one_with(spec, seed, Some(&store)); // populate captures
                store.retain_ticks_at_most(tb);
                let forked = full_report(spec, run_one_with(spec, seed, Some(&store)));
                assert!(
                    store.stats().forked > 0,
                    "{}/{}: no fork happened at boundary {tb}",
                    scenario.name,
                    spec.label
                );
                assert_eq!(
                    forked, reference,
                    "{}/{}: fork at boundary {tb} diverged from fresh",
                    scenario.name, spec.label
                );
            }
        }
    }
}

/// Warm and cold grid runs agree byte-for-byte across thread counts and
/// queue backends.
#[test]
fn warm_grids_match_cold_across_threads_and_backends() {
    let seeds = 2;
    for scenario in timeline_scenarios() {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let specs: Vec<ScenarioSpec> = scenario
                .specs
                .iter()
                .cloned()
                .map(|mut s| {
                    s.queue = backend;
                    s
                })
                .collect();
            let cold = BatchRunner::new(1).run_grid_with(&specs, seeds, None);
            let cold_json = report::scenario_json(scenario.name, seeds, &cold, true);
            for threads in [1, 8] {
                let store = CheckpointStore::default();
                let warm = BatchRunner::new(threads).run_grid_with(&specs, seeds, Some(&store));
                let warm_json = report::scenario_json(scenario.name, seeds, &warm, true);
                assert_eq!(
                    warm_json, cold_json,
                    "{} diverged warm vs cold (queue={backend:?}, threads={threads})",
                    scenario.name
                );
            }
        }
    }
}

/// `explore run-all` warm vs cold: every game's report is byte-identical,
/// and the reuse accounting proves sharing actually happened — cross-game
/// `shared` cells on lemma4-wide, checkpoint forks across fork-defection's
/// profiles (which differ only in their defection schedule).
#[test]
fn explore_run_all_warm_matches_cold_with_reuse() {
    let games = game_registry();
    let seeds = 1;
    let (cold, cold_stats) = GameExplorer::new(BatchRunner::new(1))
        .warm_starts(false)
        .explore_all_with_stats(&games, seeds);
    assert_eq!(
        cold_stats,
        ReuseStats::default(),
        "cold runs must not touch a store"
    );
    let (warm, warm_stats) = GameExplorer::new(BatchRunner::new(8))
        .warm_starts(true)
        .explore_all_with_stats(&games, seeds);
    for ((game, c), w) in games.iter().zip(&cold).zip(&warm) {
        assert_eq!(
            report::explore_json(game, w, 0.05),
            report::explore_json(game, c, 0.05),
            "game {} diverged warm vs cold",
            game.name
        );
    }
    let wide = games
        .iter()
        .position(|g| g.name == "lemma4-wide")
        .expect("lemma4-wide registered");
    assert!(
        warm[wide].shared > 0,
        "lemma4-wide must reuse cells shared with lemma4-dsic"
    );
    assert!(
        warm_stats.created > 0,
        "no checkpoints captured: {warm_stats:?}"
    );
    assert!(
        warm_stats.forked > 0,
        "no checkpoint reuse across the run-all batch: {warm_stats:?}"
    );
}

/// The satellite pin for interior-mutability holes: `never-lifted` forks
/// from `lift@gst`'s checkpoint at the lift tick (their prefixes agree
/// below 2000), so the fork crosses a live, effectively-unbounded delay
/// rule. The fork path must replay the prefix's delay events onto its
/// fresh network — carrying the producer's live rule list (or dropping
/// it) would lift a never-lifted delay or resurrect a lifted one.
#[test]
fn delay_lift_fork_replays_delay_rules() {
    let scenario = find("delay-lift").expect("delay-lift registered");
    let lift = scenario
        .specs
        .iter()
        .find(|s| s.label == "lift@gst")
        .expect("lift@gst spec");
    let never = scenario
        .specs
        .iter()
        .find(|s| s.label == "never-lifted")
        .expect("never-lifted spec");
    assert_eq!(
        lift.base_seed, never.base_seed,
        "the pair must share derived seeds to share checkpoints"
    );
    let seed = derive_seed(never.base_seed, 0);
    let reference = full_report(never, run_one(never, seed));
    let store = CheckpointStore::default();
    run_one_with(lift, seed, Some(&store));
    assert_eq!(
        store.stats().created,
        1,
        "lift@gst captures exactly one checkpoint, at its lift boundary"
    );
    let forked = full_report(never, run_one_with(never, seed, Some(&store)));
    assert_eq!(
        store.stats().forked,
        1,
        "never-lifted must fork from lift@gst's pre-lift checkpoint"
    );
    assert_eq!(
        forked, reference,
        "fork across the delay-rule boundary resurrected or lost rules"
    );
}

/// Pinned `--explain-reuse` output for the full `explore run-all` batch
/// at `--threads 1` with one seed per cell: the per-game reuse columns
/// and the batch's checkpoint accounting are deterministic there (the
/// serial claim loop visits cells in plan order). Regenerate after an
/// intentional registry or accounting change with:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test -p prft-lab --test checkpoint_equiv
/// ```
#[test]
fn explain_reuse_table_matches_golden_file() {
    let games = game_registry();
    let (explorations, stats) = GameExplorer::new(BatchRunner::new(1))
        .warm_starts(true)
        .explore_all_with_stats(&games, 1);
    let rows: Vec<(&str, &Exploration)> = games
        .iter()
        .zip(&explorations)
        .map(|(g, e)| (g.name, e))
        .collect();
    let rendered = report::explain_reuse_table(&rows, stats);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/explain_reuse.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "--explain-reuse output drifted from tests/golden/explain_reuse.txt \
         (UPDATE_GOLDEN=1 regenerates after intentional changes)"
    );
}

/// A small workload grid whose cells share statics and a schedule-free
/// prefix, diverging only in a late crash: the shape that lets warm
/// starts chain one cell's capture into the next cell's fork.
fn workload_grid() -> Vec<ScenarioSpec> {
    let cell = |label: &str| {
        ScenarioSpec::new(label, 8, 400)
            .base_seed(0x10ad)
            .horizon(200_000)
            .workload(
                WorkloadSpec::steady(40, 150)
                    .txs_per_client(4)
                    .max_batch(256),
            )
    };
    vec![
        cell("no-crash"),
        cell("crash@120k").at(120_000, TimelineEvent::Crash(7)),
        cell("crash@150k").at(150_000, TimelineEvent::Crash(7)),
    ]
}

/// The tentpole pin: workload (committee-plus-client) grids fork and
/// capture like committee grids, byte-identically to cold runs across
/// thread counts and queue backends.
#[test]
fn workload_warm_grids_match_cold_across_threads_and_backends() {
    let seeds = 2;
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        let specs: Vec<ScenarioSpec> = workload_grid()
            .into_iter()
            .map(|mut s| {
                s.queue = backend;
                s
            })
            .collect();
        let cold = BatchRunner::new(1).run_grid_with(&specs, seeds, None);
        let cold_json = report::scenario_json("workload-warm", seeds, &cold, true);
        for threads in [1, 8] {
            let store = CheckpointStore::default();
            let warm = BatchRunner::new(threads).run_grid_with(&specs, seeds, Some(&store));
            let warm_json = report::scenario_json("workload-warm", seeds, &warm, true);
            assert_eq!(
                warm_json, cold_json,
                "workload grid diverged warm vs cold (queue={backend:?}, threads={threads})"
            );
            // Whether a parallel run forks depends on worker scheduling
            // (cells may all start before any capture lands); only the
            // serial order is pinned.
            if threads == 1 {
                let stats = store.stats();
                assert!(
                    stats.forked > 0,
                    "serial workload grid must actually fork: {stats:?}"
                );
            }
        }
    }
}

/// A forked workload run keeps the client population's books balanced:
/// every submitted transaction is committed, dropped, or still pending.
#[test]
fn workload_fork_preserves_client_conservation() {
    let grid = workload_grid();
    let producer = &grid[1]; // crash@120k
    let consumer = &grid[2]; // crash@150k — shares the empty prefix below 120k
    let seed = derive_seed(consumer.base_seed, 0);
    let reference = run_one(consumer, seed);
    let store = CheckpointStore::default();
    run_one_with(producer, seed, Some(&store));
    assert!(
        !store.is_empty(),
        "the producer must capture at its crash boundary"
    );
    let forked = run_one_with(consumer, seed, Some(&store));
    assert!(
        store.stats().forked > 0,
        "the consumer must fork from the producer's capture"
    );
    for rec in [&reference, &forked] {
        let w = rec.workload.as_ref().expect("workload stats attached");
        assert_eq!(
            w.submitted,
            w.committed + w.dropped + w.pending,
            "client conservation violated: {w:?}"
        );
    }
    assert_eq!(
        forked.workload, reference.workload,
        "forked workload stats diverged from fresh"
    );
}

/// Post-divergence deep captures: with capture hints installed (as the
/// grid runners do for every batch), a producer captures at a sibling's
/// fork tick *past its own last event* — under the suffix fingerprint —
/// and the sibling resumes there instead of replaying the shared tail.
#[test]
fn suffix_capture_resumes_past_producers_last_event() {
    let scenario = find("delay-lift").expect("delay-lift registered");
    let lift = scenario
        .specs
        .iter()
        .find(|s| s.label == "lift@gst")
        .expect("lift@gst spec");
    // A sibling sharing lift@gst's whole schedule, diverging far past it.
    let sib = {
        let mut s = lift.clone();
        s.label = "lift-then-crash".into();
        s.at(200_000, TimelineEvent::Crash(7))
    };
    let seed = derive_seed(sib.base_seed, 0);
    let reference = full_report(&sib, run_one(&sib, seed));
    let store = CheckpointStore::default();
    store.set_capture_hints_for([lift, &sib]);
    run_one_with(lift, seed, Some(&store));
    assert_eq!(
        store.stats().created,
        2,
        "lift@gst must capture at its own lift boundary AND at the \
         sibling's hinted fork tick past it"
    );
    let forked = full_report(&sib, run_one_with(&sib, seed, Some(&store)));
    let stats = store.stats();
    assert_eq!(stats.forked, 1, "the sibling must fork: {stats:?}");
    assert_eq!(
        stats.prefix_ticks_saved, 200_000,
        "the fork must resume at the suffix capture, not the lift boundary"
    );
    assert_eq!(forked, reference, "suffix-capture fork diverged from fresh");
}

/// The horizon-boundary audit pin: an event scheduled exactly at the
/// horizon is applied identically by fresh, capturing, and forked runs
/// (`boundaries()` collapses its tick into the horizon pseudo-boundary;
/// the executor applies it after `run_before(horizon)`).
#[test]
fn at_horizon_event_fork_matches_fresh() {
    let spec = ScenarioSpec::new("at-horizon", 8, 400)
        .base_seed(0x0a7e)
        .horizon(5_000)
        .at(2_000, TimelineEvent::Crash(6))
        .at(5_000, TimelineEvent::Crash(7));
    let seed = derive_seed(spec.base_seed, 0);
    let reference = full_report(&spec, run_one(&spec, seed));
    let store = CheckpointStore::default();
    let captured = full_report(&spec, run_one_with(&spec, seed, Some(&store)));
    assert_eq!(captured, reference, "capturing perturbed an at-horizon run");
    for tb in [2_000, 5_000] {
        let store = CheckpointStore::default();
        run_one_with(&spec, seed, Some(&store));
        store.retain_ticks_at_most(tb);
        let forked = full_report(&spec, run_one_with(&spec, seed, Some(&store)));
        assert!(
            store.stats().forked > 0,
            "no fork happened at boundary {tb}"
        );
        assert_eq!(
            forked, reference,
            "fork at boundary {tb} mishandled the at-horizon event"
        );
    }
}
