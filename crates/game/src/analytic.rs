//! Closed-form algebra from the paper's proofs: bounds, thresholds, and the
//! TRAP equilibrium arithmetic. Each function cites the statement it
//! implements so experiments can check measured behaviour against theory.

/// Claim 1: the agreement threshold τ must satisfy
/// `⌊(n + t0)/2⌋ + 1 ≤ τ ≤ n − t0`. Returns the inclusive window.
pub fn tau_window(n: usize, t0: usize) -> (usize, usize) {
    ((n + t0) / 2 + 1, n - t0)
}

/// Claim 1 (necessity): whether a threshold is safe against both the
/// abstention attack (`τ > n − t0` ⇒ liveness needs byzantine votes) and
/// the partition double-agreement (`τ ≤ ⌊(n+t0)/2⌋`).
pub fn tau_is_safe(n: usize, t0: usize, tau: usize) -> bool {
    let (lo, hi) = tau_window(n, t0);
    (lo..=hi).contains(&tau)
}

/// Theorems 1–2: the impossibility regime `⌈n/3⌉ ≤ k + t ≤ ⌈n/2⌉ − 1`.
pub fn in_impossibility_regime(n: usize, k: usize, t: usize) -> bool {
    let kt = k + t;
    kt >= n.div_ceil(3) && kt < n.div_ceil(2)
}

/// pRFT's threat model `M = ⟨(P,T,K), θ=1, ⌈n/4⌉−1⟩`: `t < n/4` (i.e.
/// `t ≤ t0 = ⌈n/4⌉ − 1`) and `k + t < n/2`.
pub fn prft_tolerates(n: usize, k: usize, t: usize) -> bool {
    let t0 = n.div_ceil(4) - 1;
    t <= t0 && 2 * (k + t) < n
}

/// Lemma 4's partition algebra: a double quorum (both partitions reaching
/// `n − t0` with collusion help) requires `k + t + 2·t0 ≥ n`. Under pRFT's
/// parameters this is impossible; returns whether the *attack* is feasible.
pub fn double_quorum_feasible(n: usize, t0: usize, k: usize, t: usize) -> bool {
    k + t + 2 * t0 >= n
}

/// Theorem 3 / TRAP: utility of joining the fork collusion — the gain `G`
/// split among the `k` rational colluders.
///
/// # Panics
/// Panics if `k == 0`.
pub fn trap_fork_utility(gain_g: f64, k: usize) -> f64 {
    assert!(k > 0, "no rational colluders");
    gain_g / k as f64
}

/// Theorem 3 / TRAP: expected utility of unilaterally baiting — the reward
/// `R` only pays if the fork is actually averted (`σ_0`), which happens
/// with probability `p_avert`.
pub fn trap_bait_utility(reward_r: f64, p_avert: f64) -> f64 {
    reward_r * p_avert.clamp(0.0, 1.0)
}

/// Theorem 3: the minimum number `m` of simultaneous baiters needed to stop
/// the fork: `m > t0 + k + t − n/2` (Appendix D derivation). Returns the
/// real-valued bound; the fork survives any `m` at or below it.
pub fn trap_min_baiters(n: usize, t0: usize, k: usize, t: usize) -> f64 {
    t0 as f64 + (k + t) as f64 - n as f64 / 2.0
}

/// Theorem 3's headline condition: with `k > 2 + t0 − t` colluding rational
/// players, a unilateral deviation to baiting cannot avert the fork, so
/// `π_fork` is a Nash equilibrium of the baiting game.
pub fn trap_fork_is_nash(k: usize, t: usize, t0: usize) -> bool {
    k as isize > 2 + t0 as isize - t as isize
}

/// TRAP's own advertised bounds (Ranchal-Pedrosa & Gramoli 2022):
/// `3t < n` and `2(k + t) < n`.
pub fn trap_tolerates(n: usize, k: usize, t: usize) -> bool {
    3 * t < n && 2 * (k + t) < n
}

/// Theorem 1: the discounted utility of `π_abs` for a θ=3 player — per
/// round `f(σ_NP, 3) = α` with no penalty, forever.
pub fn theorem1_abstain_utility(alpha: f64, delta: f64) -> f64 {
    crate::payoff::geometric_total(alpha, delta)
}

/// Theorem 2: the discounted utility of `π_pc` for a θ=2 player from round
/// `r0` — per round `f(σ_CP, 2) = α` with no penalty.
pub fn theorem2_censor_utility(alpha: f64, delta: f64, r0: u64) -> f64 {
    crate::payoff::geometric_total(alpha, delta) * delta.powi(r0 as i32)
}

/// Message-complexity model (paper Table 3): expected asymptotic exponents
/// for message count and wire bits per protocol. `(msgs_exp, bits_exp,
/// accountable)` — used by the Table 3 experiment to label expectations.
pub fn table3_row(protocol: &str) -> Option<(f64, f64, bool)> {
    match protocol {
        // The paper's table reports pBFT O(n³)/O(κn⁴); our measured counts
        // are normal-case per-round (one power of n lower across the
        // board); the *ranking* is what the experiment checks.
        "pbft" => Some((3.0, 4.0, false)),
        "hotstuff" => Some((2.0, 3.0, false)),
        "polygraph" => Some((3.0, 4.0, true)),
        "prft" => Some((3.0, 4.0, true)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_window_matches_claim_1() {
        // n = 9, t0 = 2: window is [⌊11/2⌋+1, 7] = [6, 7].
        assert_eq!(tau_window(9, 2), (6, 7));
        assert!(tau_is_safe(9, 2, 6));
        assert!(tau_is_safe(9, 2, 7));
        assert!(!tau_is_safe(9, 2, 5), "≤ ⌊(n+t0)/2⌋ admits partitions");
        assert!(!tau_is_safe(9, 2, 8), "> n−t0 lets byzantine stall");
    }

    #[test]
    fn impossibility_regime_boundaries() {
        // n = 9: regime is 3 ≤ k+t ≤ 4.
        assert!(!in_impossibility_regime(9, 2, 0));
        assert!(in_impossibility_regime(9, 3, 0));
        assert!(in_impossibility_regime(9, 2, 2));
        assert!(!in_impossibility_regime(9, 5, 0));
    }

    #[test]
    fn prft_bounds() {
        // n = 9, t0 = 2: t ≤ 2 and k+t ≤ 4.
        assert!(prft_tolerates(9, 2, 2));
        assert!(!prft_tolerates(9, 2, 3), "t = 3 > t0");
        assert!(!prft_tolerates(9, 3, 2), "k+t = 5 ≥ n/2");
        // Table 1 row: t < n/4 ∧ t+k < n/2.
        assert!(prft_tolerates(16, 4, 3));
    }

    #[test]
    fn double_quorum_never_feasible_under_prft() {
        for n in 5usize..200 {
            let t0 = n.div_ceil(4) - 1;
            let kt_max = n.div_ceil(2) - 1;
            assert!(
                !double_quorum_feasible(n, t0, kt_max, 0),
                "n={n}: Lemma 4's partition argument must close"
            );
        }
    }

    #[test]
    fn double_quorum_feasible_at_bft_t0() {
        // With TRAP's t0 = ⌈n/3⌉−1 the same collusion CAN double-quorum —
        // that asymmetry is why pRFT tightens t0 to n/4.
        let n: usize = 10;
        let t0_trap = n.div_ceil(3) - 1; // 3
        let kt = n.div_ceil(2) - 1; // 4: 4 + 2·3 = 10 ≥ n
        assert!(double_quorum_feasible(n, t0_trap, kt, 0));
    }

    #[test]
    fn trap_theorem3_arithmetic() {
        // Paper example regime: k > 2 + t0 − t.
        assert!(trap_fork_is_nash(4, 1, 2));
        assert!(!trap_fork_is_nash(2, 1, 3));
        // Fork utility beats unilateral baiting when the fork cannot be
        // averted (p_avert = 0).
        let fork = trap_fork_utility(8.0, 4);
        let bait = trap_bait_utility(2.0, 0.0);
        assert!(fork > bait);
        assert_eq!(bait, 0.0);
        // m > t0 + k + t − n/2: with n=10, t0=3, k=4, t=1 ⇒ m > 3.
        assert_eq!(trap_min_baiters(10, 3, 4, 1), 3.0);
    }

    #[test]
    fn trap_bounds() {
        assert!(trap_tolerates(10, 3, 1));
        assert!(!trap_tolerates(10, 4, 1), "2(k+t) ≥ n");
        assert!(!trap_tolerates(9, 1, 3), "3t ≥ n");
    }

    #[test]
    fn impossibility_utilities_are_positive() {
        assert!(theorem1_abstain_utility(1.0, 0.9) > 0.0);
        assert!((theorem1_abstain_utility(1.0, 0.9) - 10.0).abs() < 1e-9);
        let u0 = theorem2_censor_utility(1.0, 0.9, 0);
        let u5 = theorem2_censor_utility(1.0, 0.9, 5);
        assert!(u0 > u5, "later start discounts the stream");
    }

    #[test]
    fn table3_rows_exist() {
        for p in ["pbft", "hotstuff", "polygraph", "prft"] {
            assert!(table3_row(p).is_some());
        }
        assert!(table3_row("raft").is_none());
        assert!(table3_row("prft").unwrap().2, "pRFT is accountable");
        assert!(!table3_row("hotstuff").unwrap().2);
    }
}
