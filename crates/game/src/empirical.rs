//! Empirical (measured) normal-form games and equilibrium checkers.
//!
//! The paper argues about equilibria of the consensus game; we *measure*
//! them: every strategy profile is evaluated (analytically or by running
//! the simulator) and the resulting finite game is solved exhaustively.
//! This is what turns Lemma 4 ("π_0 is DSIC") and Theorem 3 ("π_fork is a
//! second, Pareto-preferred NE") into checkable artifacts.

use std::collections::HashMap;

/// A pure-strategy profile: one strategy index per player.
pub type Profile = Vec<usize>;

/// A finite normal-form game with measured payoffs.
///
/// Strategy sets may differ per player (byzantine players are usually fixed
/// to a single "scripted" strategy, honest players to `π_0`, and only the
/// rational players get real choices).
#[derive(Debug, Clone)]
pub struct EmpiricalGame {
    strategy_counts: Vec<usize>,
    payoffs: HashMap<Profile, Vec<f64>>,
}

impl EmpiricalGame {
    /// Builds the game by evaluating `eval` on every profile of the given
    /// strategy space. `eval` must return one utility per player.
    ///
    /// # Panics
    /// Panics if any player has zero strategies or `eval` returns the wrong
    /// arity.
    pub fn explore<F>(strategy_counts: Vec<usize>, mut eval: F) -> Self
    where
        F: FnMut(&Profile) -> Vec<f64>,
    {
        assert!(
            strategy_counts.iter().all(|&c| c > 0),
            "every player needs at least one strategy"
        );
        let players = strategy_counts.len();
        let mut payoffs = HashMap::new();
        let mut profile: Profile = vec![0; players];
        loop {
            let us = eval(&profile);
            assert_eq!(us.len(), players, "eval must return one utility per player");
            payoffs.insert(profile.clone(), us);
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == players {
                    return EmpiricalGame {
                        strategy_counts,
                        payoffs,
                    };
                }
                profile[i] += 1;
                if profile[i] < strategy_counts[i] {
                    break;
                }
                profile[i] = 0;
                i += 1;
            }
        }
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.strategy_counts.len()
    }

    /// Utility vector for a profile.
    ///
    /// # Panics
    /// Panics if the profile was never evaluated (out of range).
    pub fn utilities(&self, profile: &Profile) -> &[f64] {
        self.payoffs
            .get(profile)
            .unwrap_or_else(|| panic!("profile {profile:?} out of range"))
    }

    /// Whether `profile` is a (pure) Nash equilibrium: no player gains more
    /// than `eps` by a unilateral deviation.
    pub fn is_nash(&self, profile: &Profile, eps: f64) -> bool {
        let base = self.utilities(profile);
        for player in 0..self.players() {
            for alt in 0..self.strategy_counts[player] {
                if alt == profile[player] {
                    continue;
                }
                let mut dev = profile.clone();
                dev[player] = alt;
                if self.utilities(&dev)[player] > base[player] + eps {
                    return false;
                }
            }
        }
        true
    }

    /// All pure Nash equilibria.
    pub fn nash_equilibria(&self, eps: f64) -> Vec<Profile> {
        let mut out: Vec<Profile> = self
            .payoffs
            .keys()
            .filter(|p| self.is_nash(p, eps))
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// Whether strategy `strategy` is (weakly) dominant for `player`: best
    /// response (within `eps`) against *every* opponent profile — the DSIC
    /// condition of Definition 5 when it holds with the honest strategy for
    /// every rational player.
    pub fn is_dominant(&self, player: usize, strategy: usize, eps: f64) -> bool {
        for (profile, us) in &self.payoffs {
            if profile[player] == strategy {
                continue;
            }
            let mut with_s = profile.clone();
            with_s[player] = strategy;
            if us[player] > self.utilities(&with_s)[player] + eps {
                return false;
            }
        }
        true
    }

    /// Whether the given per-player strategy vector is a dominant-strategy
    /// equilibrium.
    pub fn is_dse(&self, profile: &Profile, eps: f64) -> bool {
        (0..self.players()).all(|p| self.is_dominant(p, profile[p], eps))
    }

    /// Whether profile `a` Pareto-dominates `b` for the given subset of
    /// players (everyone in the subset at least as well off, someone
    /// strictly better).
    pub fn pareto_dominates_for(&self, a: &Profile, b: &Profile, players: &[usize]) -> bool {
        let ua = self.utilities(a);
        let ub = self.utilities(b);
        let no_worse = players.iter().all(|&p| ua[p] >= ub[p]);
        let strictly = players.iter().any(|&p| ua[p] > ub[p]);
        no_worse && strictly
    }

    /// The focal equilibrium among `candidates` for the given players: the
    /// one maximizing their total utility (Schelling's "attractive"
    /// equilibrium — see paper Section 4.3). Ties break toward the first.
    pub fn focal_among<'a>(
        &self,
        candidates: &'a [Profile],
        players: &[usize],
    ) -> Option<&'a Profile> {
        candidates.iter().max_by(|a, b| {
            let ua: f64 = players.iter().map(|&p| self.utilities(a)[p]).sum();
            let ub: f64 = players.iter().map(|&p| self.utilities(b)[p]).sum();
            ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 3 example game (Section 4.3): three players with
    /// two strategies each and two Nash equilibria, one focal.
    fn schelling_game() -> EmpiricalGame {
        // Strategies: P1 ∈ {A=0, B=1}, P2 ∈ {a=0, b=1}, P3 ∈ {α=0, β=1}.
        EmpiricalGame::explore(vec![2, 2, 2], |p| {
            match (p[0], p[1], p[2]) {
                (0, 0, 0) => vec![1.0, 1.0, 1.0],  // (A,a,α)
                (0, 0, 1) => vec![1.0, 1.0, 0.0],  // (A,a,β)
                (0, 1, 0) => vec![1.0, 0.0, 1.0],  // (A,b,α)
                (0, 1, 1) => vec![-2.0, 2.0, 2.0], // (A,b,β)
                (1, 0, 0) => vec![0.0, 1.0, 1.0],  // (B,a,α)
                (1, 0, 1) => vec![1.0, -2.0, 1.0], // (B,a,β)
                (1, 1, 0) => vec![2.0, 2.0, -2.0], // (B,b,α)
                (1, 1, 1) => vec![0.0, 0.0, 0.0],  // (B,b,β)
                _ => unreachable!(),
            }
        })
    }

    #[test]
    fn schelling_example_has_the_papers_two_equilibria() {
        let g = schelling_game();
        let ne = g.nash_equilibria(1e-9);
        assert!(ne.contains(&vec![0, 0, 0]), "(A,a,α) is NE");
        assert!(ne.contains(&vec![1, 1, 1]), "(B,b,β) is NE");
        let focal = g.focal_among(&ne, &[0, 1, 2]).unwrap();
        assert_eq!(focal, &vec![0, 0, 0], "(A,a,α) is the focal point");
        assert!(g.pareto_dominates_for(&vec![0, 0, 0], &vec![1, 1, 1], &[0, 1, 2]));
    }

    #[test]
    fn prisoners_dilemma_defection_is_dse() {
        // Classic PD: strategy 0 = cooperate, 1 = defect.
        let g = EmpiricalGame::explore(vec![2, 2], |p| match (p[0], p[1]) {
            (0, 0) => vec![3.0, 3.0],
            (0, 1) => vec![0.0, 5.0],
            (1, 0) => vec![5.0, 0.0],
            (1, 1) => vec![1.0, 1.0],
            _ => unreachable!(),
        });
        assert!(g.is_dominant(0, 1, 0.0));
        assert!(g.is_dominant(1, 1, 0.0));
        assert!(g.is_dse(&vec![1, 1], 0.0));
        assert!(!g.is_dominant(0, 0, 0.0));
        assert_eq!(g.nash_equilibria(0.0), vec![vec![1, 1]]);
        // Cooperation Pareto-dominates the DSE — the PD tension.
        assert!(g.pareto_dominates_for(&vec![0, 0], &vec![1, 1], &[0, 1]));
    }

    #[test]
    fn asymmetric_strategy_counts() {
        // Player 0 scripted (1 strategy), player 1 chooses among 3.
        let g = EmpiricalGame::explore(vec![1, 3], |p| vec![0.0, [1.0, 5.0, 3.0][p[1]]]);
        assert!(g.is_nash(&vec![0, 1], 0.0));
        assert!(!g.is_nash(&vec![0, 0], 0.0));
        assert!(g.is_dominant(1, 1, 0.0));
    }

    #[test]
    fn eps_tolerance_for_measured_noise() {
        let g = EmpiricalGame::explore(vec![2], |p| vec![[1.0, 1.04][p[0]]]);
        assert!(!g.is_nash(&vec![0], 0.0));
        assert!(g.is_nash(&vec![0], 0.1), "within noise tolerance");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_profile_panics() {
        let g = EmpiricalGame::explore(vec![2], |_| vec![0.0]);
        let _ = g.utilities(&vec![5]);
    }
}
