//! The payoff table `f(σ, θ)` (paper Table 2) and discounted utilities.

use crate::types::{SystemState, Theta};

/// Economic parameters of the utility model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityParams {
    /// The per-round payoff magnitude α (> 0).
    pub alpha: f64,
    /// The collateral deposit `L`, lost when a PoF names the player.
    pub penalty_l: f64,
    /// TRAP's baiting reward `R`.
    pub reward_r: f64,
    /// The collusion's gain `G` when the system forks.
    pub gain_g: f64,
    /// The per-round discount factor δ ∈ (0, 1).
    pub delta: f64,
}

impl Default for UtilityParams {
    fn default() -> Self {
        UtilityParams {
            alpha: 1.0,
            penalty_l: 10.0,
            reward_r: 2.0,
            gain_g: 8.0,
            delta: 0.9,
        }
    }
}

/// The payoff function of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct PayoffTable {
    alpha: f64,
}

impl PayoffTable {
    /// Creates the table for a given α.
    ///
    /// # Panics
    /// Panics if `alpha <= 0` (the paper requires a positive constant).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "α must be positive");
        PayoffTable { alpha }
    }

    /// `f(σ, θ)` exactly as printed in Table 2.
    ///
    /// | θ \ σ | σ_NP | σ_CP | σ_Fork | σ_0 |
    /// |-------|------|------|--------|-----|
    /// | θ=3   |  α   |  α   |   α    |  0  |
    /// | θ=2   | −α   |  α   |   α    |  0  |
    /// | θ=1   | −α   | −α   |   α    |  0  |
    /// | θ=0   | −α   | −α   |  −α    |  0  |
    pub fn f(&self, state: SystemState, theta: Theta) -> f64 {
        use SystemState::*;
        use Theta::*;
        let a = self.alpha;
        match (theta, state) {
            (_, HonestExecution) => 0.0,
            (LivenessAttacking, _) => a,
            (CensorSeeking, NoProgress) => -a,
            (CensorSeeking, _) => a,
            (ForkSeeking, Fork) => a,
            (ForkSeeking, _) => -a,
            (Honest, _) => -a,
        }
    }

    /// One round's utility: `u = f(σ, θ) − L·D` where `D ∈ {0, 1}` flags a
    /// penalty (the player's collateral was burned this round).
    pub fn round_utility(
        &self,
        state: SystemState,
        theta: Theta,
        penalized: bool,
        penalty_l: f64,
    ) -> f64 {
        self.f(state, theta) - if penalized { penalty_l } else { 0.0 }
    }
}

/// Discounted sum `Σ_r δ^r · u_r` over an explicit utility stream.
pub fn discounted_sum(utilities: &[f64], delta: f64) -> f64 {
    let mut acc = 0.0;
    let mut weight = 1.0;
    for &u in utilities {
        acc += weight * u;
        weight *= delta;
    }
    acc
}

/// Closed form for a constant per-round utility forever:
/// `u · Σ_{r≥0} δ^r = u / (1 − δ)`.
///
/// # Panics
/// Panics unless `0 ≤ δ < 1`.
pub fn geometric_total(per_round: f64, delta: f64) -> f64 {
    assert!((0.0..1.0).contains(&delta), "δ must be in [0, 1)");
    per_round / (1.0 - delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_exact_values() {
        let t = PayoffTable::new(2.0);
        use SystemState::*;
        use Theta::*;
        // θ=3 row.
        assert_eq!(t.f(NoProgress, LivenessAttacking), 2.0);
        assert_eq!(t.f(Censorship, LivenessAttacking), 2.0);
        assert_eq!(t.f(Fork, LivenessAttacking), 2.0);
        assert_eq!(t.f(HonestExecution, LivenessAttacking), 0.0);
        // θ=2 row.
        assert_eq!(t.f(NoProgress, CensorSeeking), -2.0);
        assert_eq!(t.f(Censorship, CensorSeeking), 2.0);
        assert_eq!(t.f(Fork, CensorSeeking), 2.0);
        assert_eq!(t.f(HonestExecution, CensorSeeking), 0.0);
        // θ=1 row.
        assert_eq!(t.f(NoProgress, ForkSeeking), -2.0);
        assert_eq!(t.f(Censorship, ForkSeeking), -2.0);
        assert_eq!(t.f(Fork, ForkSeeking), 2.0);
        assert_eq!(t.f(HonestExecution, ForkSeeking), 0.0);
        // θ=0 row.
        assert_eq!(t.f(NoProgress, Honest), -2.0);
        assert_eq!(t.f(Censorship, Honest), -2.0);
        assert_eq!(t.f(Fork, Honest), -2.0);
        assert_eq!(t.f(HonestExecution, Honest), 0.0);
    }

    #[test]
    fn penalty_subtracts_l() {
        let t = PayoffTable::new(1.0);
        let u = t.round_utility(SystemState::Fork, Theta::ForkSeeking, true, 10.0);
        assert_eq!(u, 1.0 - 10.0);
        let u = t.round_utility(SystemState::Fork, Theta::ForkSeeking, false, 10.0);
        assert_eq!(u, 1.0);
    }

    #[test]
    fn discounting() {
        assert_eq!(discounted_sum(&[1.0, 1.0, 1.0], 0.5), 1.75);
        assert!((geometric_total(1.0, 0.5) - 2.0).abs() < 1e-12);
        assert!(
            (discounted_sum(&vec![1.0; 200], 0.9) - geometric_total(1.0, 0.9)).abs() < 1e-6,
            "long finite sums approach the closed form"
        );
    }

    #[test]
    #[should_panic(expected = "α must be positive")]
    fn zero_alpha_rejected() {
        let _ = PayoffTable::new(0.0);
    }

    #[test]
    #[should_panic(expected = "δ must be in")]
    fn delta_one_rejected() {
        let _ = geometric_total(1.0, 1.0);
    }
}
