//! Iterated best-reply dynamics over a measured [`UtilityTable`]:
//! deterministic improvement paths, convergence/cycle detection, and
//! whole-space basin summaries.
//!
//! Exhaustive equilibrium checks walk every profile of the space; for
//! spaces too large to enumerate comfortably (or to ask *how play gets
//! to* an equilibrium, not just whether one exists) game theory uses
//! *dynamics*: start somewhere, let one player at a time switch to a
//! best response, and watch where the path goes. Over a finite table
//! every such path either **converges** (no player can improve — the
//! terminal profile is a pure Nash equilibrium at the step tolerance) or
//! **cycles** (a profile repeats; matching-pennies-like games have no
//! pure equilibrium to converge to).
//!
//! The update rule is deliberately deterministic — players are scanned
//! in index order and the first player with an improving deviation moves
//! to their [`UtilityTable::best_response`] (ties break toward the lower
//! strategy index) — so a path is a pure function of `(table, start,
//! eps)` and reports built from it are byte-stable across thread counts.

use crate::empirical::Profile;
use crate::utility_table::UtilityTable;
use std::collections::BTreeMap;

/// How a best-reply path ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicsOutcome {
    /// No player can gain more than the tolerance: the final profile of
    /// the path is a pure Nash equilibrium (at that tolerance).
    Converged,
    /// A profile repeated: play orbits a best-reply cycle forever.
    Cycled,
}

/// One deterministic best-reply path.
#[derive(Debug, Clone, PartialEq)]
pub struct BestReplyPath {
    /// Every profile visited, starting profile first. On convergence the
    /// last entry is the equilibrium; on a cycle the last entry is the
    /// first *repeated* profile (also present earlier in the path).
    pub path: Vec<Profile>,
    /// Whether the path converged or cycled.
    pub outcome: DynamicsOutcome,
    /// For a cycle: the index in `path` where the repeated profile first
    /// appeared — `path[cycle_start..]` is the cycle itself.
    pub cycle_start: Option<usize>,
}

impl BestReplyPath {
    /// Number of best-reply moves taken (path length minus the start).
    pub fn steps(&self) -> usize {
        self.path.len() - 1
    }

    /// The profile the path settled on, when it converged.
    pub fn attractor(&self) -> Option<&Profile> {
        match self.outcome {
            DynamicsOutcome::Converged => self.path.last(),
            DynamicsOutcome::Cycled => None,
        }
    }
}

/// Runs deterministic best-reply dynamics from `start`: repeatedly, the
/// lowest-indexed player with a deviation gaining more than `eps` moves
/// to their best response. Terminates in at most `|space|` moves — every
/// visited profile is recorded, and revisiting any of them is a cycle.
///
/// # Panics
/// Panics if the table is incomplete or `start` is out of range.
pub fn best_reply_path(table: &UtilityTable, start: Profile, eps: f64) -> BestReplyPath {
    assert!(table.is_complete(), "run dynamics over a complete table");
    assert!(
        table.space().contains(&start),
        "start profile {start:?} out of range"
    );
    let mut seen: BTreeMap<Profile, usize> = BTreeMap::new();
    let mut path = vec![start];
    loop {
        let current = path.last().expect("non-empty path").clone();
        seen.insert(current.clone(), path.len() - 1);
        let mover = (0..table.space().players()).find_map(|player| {
            let (alt, gain) = table.best_response(&current, player);
            (gain > eps).then_some((player, alt))
        });
        let Some((player, alt)) = mover else {
            return BestReplyPath {
                path,
                outcome: DynamicsOutcome::Converged,
                cycle_start: None,
            };
        };
        let mut next = current;
        next[player] = alt;
        if let Some(&first) = seen.get(&next) {
            path.push(next);
            return BestReplyPath {
                path,
                outcome: DynamicsOutcome::Cycled,
                cycle_start: Some(first),
            };
        }
        path.push(next);
    }
}

/// The whole-space dynamics picture: one best-reply path from *every*
/// profile of the space.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsSummary {
    /// Converged terminal profiles with their basin sizes — how many
    /// starting profiles flow into each attractor (lexicographic order).
    pub attractors: Vec<(Profile, usize)>,
    /// Number of starting profiles whose path ends in a cycle.
    pub cycling_starts: usize,
    /// The longest number of moves any start took.
    pub longest_path: usize,
}

/// Runs [`best_reply_path`] from every profile (lexicographic order) and
/// aggregates attractor basins. Attractors are exactly the pure Nash
/// equilibria reachable by best-reply play; an equilibrium with an empty
/// basin apart from itself still shows up (its own path converges in
/// zero steps).
pub fn best_reply_summary(table: &UtilityTable, eps: f64) -> DynamicsSummary {
    let mut basins: BTreeMap<Profile, usize> = BTreeMap::new();
    let mut cycling_starts = 0;
    let mut longest_path = 0;
    for start in table.space().profiles() {
        let run = best_reply_path(table, start, eps);
        longest_path = longest_path.max(run.steps());
        match run.attractor() {
            Some(attractor) => *basins.entry(attractor.clone()).or_insert(0) += 1,
            None => cycling_starts += 1,
        }
    }
    DynamicsSummary {
        attractors: basins.into_iter().collect(),
        cycling_starts,
        longest_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ProfileSpace;
    use crate::types::SystemState;

    fn pd() -> UtilityTable {
        UtilityTable::exact(ProfileSpace::uniform(2, 2), |p| {
            let u = match (p[0], p[1]) {
                (0, 0) => vec![3.0, 3.0],
                (0, 1) => vec![0.0, 5.0],
                (1, 0) => vec![5.0, 0.0],
                (1, 1) => vec![1.0, 1.0],
                _ => unreachable!(),
            };
            (u, SystemState::HonestExecution)
        })
    }

    fn pennies() -> UtilityTable {
        UtilityTable::exact(ProfileSpace::uniform(2, 2), |p| {
            let win = if p[0] == p[1] { 1.0 } else { -1.0 };
            (vec![win, -win], SystemState::HonestExecution)
        })
    }

    #[test]
    fn prisoners_dilemma_converges_to_all_defect() {
        let run = best_reply_path(&pd(), vec![0, 0], 0.0);
        assert_eq!(run.outcome, DynamicsOutcome::Converged);
        assert_eq!(run.path, vec![vec![0, 0], vec![1, 0], vec![1, 1]]);
        assert_eq!(run.steps(), 2);
        assert_eq!(run.attractor(), Some(&vec![1, 1]));
    }

    #[test]
    fn matching_pennies_cycles() {
        let run = best_reply_path(&pennies(), vec![0, 0], 0.0);
        assert_eq!(run.outcome, DynamicsOutcome::Cycled);
        // (0,0) →₁ (0,1) →₀ (1,1) →₁ (1,0) →₀ (0,0): the 4-cycle.
        assert_eq!(run.cycle_start, Some(0));
        assert_eq!(run.path.len(), 5);
        assert_eq!(run.path.first(), run.path.last());
        assert_eq!(run.attractor(), None);
    }

    #[test]
    fn summaries_count_basins() {
        let summary = best_reply_summary(&pd(), 0.0);
        // Every start flows into the unique equilibrium.
        assert_eq!(summary.attractors, vec![(vec![1, 1], 4)]);
        assert_eq!(summary.cycling_starts, 0);
        assert_eq!(summary.longest_path, 2);

        let pennies = best_reply_summary(&pennies(), 0.0);
        assert!(pennies.attractors.is_empty());
        assert_eq!(pennies.cycling_starts, 4);
    }

    #[test]
    fn equilibrium_starts_converge_in_zero_steps() {
        let run = best_reply_path(&pd(), vec![1, 1], 0.0);
        assert_eq!(run.steps(), 0);
        assert_eq!(run.attractor(), Some(&vec![1, 1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_start_rejected() {
        let _ = best_reply_path(&pd(), vec![2, 0], 0.0);
    }
}
