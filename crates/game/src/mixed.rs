//! Mixed strategies over a measured [`UtilityTable`]: expected utilities
//! under independent per-player distributions, and equilibrium solvers
//! for the game shapes the repo's registry actually produces.
//!
//! The paper's equilibrium claims are stated (and checked elsewhere in
//! this crate) in *pure* strategies, but rational-consensus analyses
//! routinely need randomized play — the GOSSIP-model fair-consensus line
//! and the (n−1)-strong-equilibrium impossibility both argue over mixed
//! strategies. This module adds the measurement-side counterpart:
//!
//! * **Expected utilities** — a [`MixedProfile`] assigns every player an
//!   independent distribution over their pure strategies; expected
//!   utilities are the profile-weighted sums over the finished table.
//! * **Support enumeration** (two-player games) — for every pair of
//!   equal-size supports, solve the linear indifference system exactly
//!   and keep the solutions that are genuine equilibria. This is the
//!   classical algorithm specialized to the 2–3-strategy games the
//!   registry sweeps; it finds e.g. matching pennies' (½, ½).
//! * **Symmetric indifference** (n-player, 2-strategy symmetric games) —
//!   the symmetric equilibrium probability solves a one-dimensional
//!   indifference equation, a degree-(n−1) polynomial in the mixing
//!   probability; roots are isolated by sign-scan + bisection. This is
//!   how the TRAP Theorem 3 game's interior equilibrium is found.
//!
//! Every solver *verifies* its candidates with [`UtilityTable::is_mixed_nash`]
//! before reporting them, so numerically degenerate candidates (and
//! symmetric candidates of games that are not actually symmetric) are
//! filtered out rather than reported wrongly.

use crate::utility_table::UtilityTable;

/// An independent per-player mixture: `mixed[p][s]` is the probability
/// that player `p` plays pure strategy `s`. Each row must be a
/// distribution over that player's strategy set.
pub type MixedProfile = Vec<Vec<f64>>;

/// One verified mixed equilibrium of a measured game.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedEquilibrium {
    /// The per-player distributions.
    pub distributions: MixedProfile,
    /// Expected utility per player under the equilibrium.
    pub expected: Vec<f64>,
    /// The largest expected gain any player gets from any pure deviation
    /// (≤ the solver's tolerance; ~0 up to floating-point noise).
    pub regret: f64,
}

/// The result of [`mixed_analysis`]: which solver applied and what it
/// found. Pure equilibria are *not* repeated here — they are reported by
/// [`UtilityTable::nash_equilibria`]; this list contains only profiles
/// where at least one player genuinely randomizes.
#[derive(Debug, Clone)]
pub struct MixedAnalysis {
    /// Which solver matched the game's shape: `"support-enumeration"`
    /// (two players), `"symmetric-indifference"` (n players × 2
    /// strategies), or `"unsupported"` (use best-reply dynamics instead).
    pub method: &'static str,
    /// The verified, strictly mixed equilibria, in deterministic order.
    pub equilibria: Vec<MixedEquilibrium>,
}

impl UtilityTable {
    /// Validates `mixed` against this table's space: one distribution per
    /// player, right arity, non-negative entries summing to 1 (±1e-6).
    ///
    /// # Panics
    /// Panics on any violation — mixed-strategy queries over a malformed
    /// profile would silently produce garbage.
    fn assert_mixed(&self, mixed: &[Vec<f64>]) {
        let counts = self.space().counts();
        assert_eq!(mixed.len(), counts.len(), "one distribution per player");
        for (p, dist) in mixed.iter().enumerate() {
            assert_eq!(dist.len(), counts[p], "player {p}: wrong arity");
            assert!(
                dist.iter().all(|&x| x >= -1e-12),
                "player {p}: negative probability"
            );
            let sum: f64 = dist.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "player {p}: probabilities sum to {sum}, not 1"
            );
        }
    }

    /// Expected utility per player when every player independently draws
    /// from their row of `mixed`.
    ///
    /// # Panics
    /// Panics if the table is incomplete or `mixed` is malformed.
    pub fn expected_utilities(&self, mixed: &[Vec<f64>]) -> Vec<f64> {
        self.assert_mixed(mixed);
        let players = self.space().players();
        let mut out = vec![0.0; players];
        // Lexicographic profile order: the fold is one fixed sequence of
        // float additions, so reports built from it are byte-stable.
        for profile in self.space().profiles() {
            let mut weight = 1.0;
            for (p, &s) in profile.iter().enumerate() {
                weight *= mixed[p][s];
            }
            if weight == 0.0 {
                continue;
            }
            let u = self.utilities(&profile);
            for p in 0..players {
                out[p] += weight * u[p];
            }
        }
        out
    }

    /// `player`'s expected utility from committing to pure strategy `s`
    /// while everyone else keeps playing their row of `mixed`.
    pub fn expected_pure_vs_mixed(&self, player: usize, s: usize, mixed: &[Vec<f64>]) -> f64 {
        let mut pinned = mixed.to_vec();
        let arity = self.space().counts()[player];
        assert!(s < arity, "strategy {s} out of range for player {player}");
        pinned[player] = vec![0.0; arity];
        pinned[player][s] = 1.0;
        self.expected_utilities(&pinned)[player]
    }

    /// `player`'s expected gain from abandoning their mixture for pure
    /// strategy `alt` (positive = the deviation pays).
    pub fn mixed_deviation_gain(&self, mixed: &[Vec<f64>], player: usize, alt: usize) -> f64 {
        self.expected_pure_vs_mixed(player, alt, mixed) - self.expected_utilities(mixed)[player]
    }

    /// The largest expected gain any player gets from any pure deviation
    /// against `mixed` (never negative; 0 at an exact equilibrium). Pure
    /// deviations suffice: a mixed deviation is a convex combination of
    /// pure ones, so it can never beat the best pure deviation.
    pub fn mixed_regret(&self, mixed: &[Vec<f64>]) -> f64 {
        let base = self.expected_utilities(mixed);
        let mut worst: f64 = 0.0;
        for (player, &u) in base.iter().enumerate() {
            for alt in 0..self.space().counts()[player] {
                let gain = self.expected_pure_vs_mixed(player, alt, mixed) - u;
                worst = worst.max(gain);
            }
        }
        worst
    }

    /// Whether `mixed` is a mixed-strategy Nash equilibrium at tolerance
    /// `eps`: no player gains more than `eps` in expectation from any
    /// pure deviation.
    pub fn is_mixed_nash(&self, mixed: &[Vec<f64>], eps: f64) -> bool {
        self.mixed_regret(mixed) <= eps
    }
}

/// Solves the square linear system `a · x = b` by Gaussian elimination
/// with partial pivoting. Returns `None` when the system is (numerically)
/// singular — a degenerate support whose indifference system has no
/// unique solution.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (k, cell) in rest[0].iter_mut().enumerate().take(n).skip(col) {
                *cell -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// The strategy indices selected by `mask` (ascending).
fn support(mask: u32, count: usize) -> Vec<usize> {
    (0..count).filter(|s| mask & (1 << s) != 0).collect()
}

/// Builds a full distribution from per-support probabilities, rejecting
/// meaningfully negative entries and renormalizing float drift.
fn expand_support(probs: &[f64], support: &[usize], count: usize) -> Option<Vec<f64>> {
    if probs.iter().any(|&p| p < -1e-9) {
        return None;
    }
    let mut dist = vec![0.0; count];
    for (&s, &p) in support.iter().zip(probs) {
        dist[s] = p.max(0.0);
    }
    let sum: f64 = dist.iter().sum();
    if (sum - 1.0).abs() > 1e-6 {
        return None;
    }
    for x in &mut dist {
        *x /= sum;
    }
    Some(dist)
}

/// Whether two mixed profiles agree within `tol` in every coordinate.
fn same_mixture(a: &MixedProfile, b: &MixedProfile, tol: f64) -> bool {
    a.iter()
        .zip(b)
        .all(|(da, db)| da.iter().zip(db).all(|(x, y)| (x - y).abs() <= tol))
}

fn push_verified(
    table: &UtilityTable,
    distributions: MixedProfile,
    eps: f64,
    out: &mut Vec<MixedEquilibrium>,
) {
    let regret = table.mixed_regret(&distributions);
    if regret > eps.max(1e-9) {
        return;
    }
    if out
        .iter()
        .any(|eq| same_mixture(&eq.distributions, &distributions, 1e-6))
    {
        return;
    }
    let expected = table.expected_utilities(&distributions);
    out.push(MixedEquilibrium {
        distributions,
        expected,
        regret,
    });
}

/// All strictly mixed Nash equilibria of a **two-player** game by support
/// enumeration: for every pair of equal-size supports (size ≥ 2), the
/// opponent's mixture must make every support strategy exactly
/// indifferent — a square linear system — and the solution must be a
/// distribution with no profitable deviation outside the support.
/// Supports are enumerated in a fixed (mask) order, so the result list is
/// deterministic. Size-1 supports are pure profiles and are deliberately
/// skipped ([`UtilityTable::nash_equilibria`] reports those).
///
/// Games whose indifference systems are singular (payoff ties producing a
/// continuum of equilibria) contribute nothing for the degenerate
/// supports rather than an arbitrary representative.
///
/// # Panics
/// Panics if the table is not a complete two-player game.
pub fn support_equilibria_2p(table: &UtilityTable, eps: f64) -> Vec<MixedEquilibrium> {
    let counts = table.space().counts();
    assert_eq!(counts.len(), 2, "support enumeration needs two players");
    assert!(table.is_complete(), "solve over a complete table");
    let (c0, c1) = (counts[0], counts[1]);
    let u = |s0: usize, s1: usize, player: usize| table.utilities(&vec![s0, s1])[player];

    let mut out = Vec::new();
    for mask0 in 1u32..(1 << c0) {
        let s0 = support(mask0, c0);
        if s0.len() < 2 {
            continue;
        }
        for mask1 in 1u32..(1 << c1) {
            let s1 = support(mask1, c1);
            if s1.len() != s0.len() {
                continue;
            }
            let k = s0.len();
            // Player 1's mixture y makes player 0 indifferent across s0.
            let mut a = vec![vec![0.0; k]; k];
            let mut b = vec![0.0; k];
            for i in 1..k {
                for (j, &t) in s1.iter().enumerate() {
                    a[i - 1][j] = u(s0[i], t, 0) - u(s0[0], t, 0);
                }
            }
            a[k - 1] = vec![1.0; k];
            b[k - 1] = 1.0;
            let Some(y) = solve_linear(a, b) else {
                continue;
            };
            // Player 0's mixture x makes player 1 indifferent across s1.
            let mut a = vec![vec![0.0; k]; k];
            let mut b = vec![0.0; k];
            for i in 1..k {
                for (j, &s) in s0.iter().enumerate() {
                    a[i - 1][j] = u(s, s1[i], 1) - u(s, s1[0], 1);
                }
            }
            a[k - 1] = vec![1.0; k];
            b[k - 1] = 1.0;
            let Some(x) = solve_linear(a, b) else {
                continue;
            };
            let (Some(d0), Some(d1)) = (expand_support(&x, &s0, c0), expand_support(&y, &s1, c1))
            else {
                continue;
            };
            push_verified(table, vec![d0, d1], eps, &mut out);
        }
    }
    out
}

/// Symmetric mixed equilibria of an n-player game where every player has
/// exactly **two** strategies: all players mix `(p, 1 − p)`, and `p` must
/// zero the indifference function
/// `g(p) = E[u₀ | play 0] − E[u₀ | play 1]` — a degree-(n−1) polynomial
/// in `p`. Roots inside (0, 1) are isolated by a uniform sign scan and
/// refined by bisection, then verified as genuine equilibria **for every
/// player** (which silently rejects candidates when the measured game is
/// not actually symmetric). Returns an empty list when any player has a
/// strategy count other than two.
///
/// Degenerate games get the same treatment as the 2-player solver's
/// singular systems: if the strategies are *identically* tied (g ≡ 0,
/// every mixture an equilibrium), the continuum is not enumerated — the
/// solver reports nothing rather than an arbitrary sample of it — and a
/// zero *plateau* contributes only its left edge.
pub fn symmetric_mixed_equilibria(table: &UtilityTable, eps: f64) -> Vec<MixedEquilibrium> {
    let counts = table.space().counts();
    if counts.is_empty() || counts.iter().any(|&c| c != 2) {
        return Vec::new();
    }
    assert!(table.is_complete(), "solve over a complete table");
    let players = table.space().players();
    let g = |p: f64| {
        let mixed: MixedProfile = vec![vec![p, 1.0 - p]; players];
        table.expected_pure_vs_mixed(0, 0, &mixed) - table.expected_pure_vs_mixed(0, 1, &mixed)
    };

    const GRID: usize = 512;
    let samples: Vec<f64> = (0..=GRID).map(|i| g(i as f64 / GRID as f64)).collect();
    if samples.iter().all(|&v| v == 0.0) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 1..=GRID {
        let prev = samples[i - 1];
        let in_plateau = i >= 2 && samples[i - 2] == 0.0;
        let root = if prev == 0.0 && !in_plateau {
            // The left grid point IS the root (exact cancellation) —
            // bisecting from glo = 0 would drift off it.
            Some((i - 1) as f64 / GRID as f64)
        } else if prev * samples[i] < 0.0 {
            // Bisect [x − 1/GRID, x] down to ~1e-15.
            let (mut lo, mut hi) = ((i - 1) as f64 / GRID as f64, i as f64 / GRID as f64);
            let mut glo = prev;
            for _ in 0..100 {
                let mid = 0.5 * (lo + hi);
                let gmid = g(mid);
                if gmid == 0.0 {
                    lo = mid;
                    hi = mid;
                    break;
                }
                if glo * gmid < 0.0 {
                    hi = mid;
                } else {
                    lo = mid;
                    glo = gmid;
                }
            }
            Some(0.5 * (lo + hi))
        } else {
            None
        };
        // Endpoints are pure symmetric profiles, not mixtures.
        if let Some(root) = root {
            if root > 1e-9 && root < 1.0 - 1e-9 {
                let dist = vec![vec![root, 1.0 - root]; players];
                push_verified(table, dist, eps, &mut out);
            }
        }
    }
    out
}

/// Dispatches the mixed-equilibrium solver matching the game's shape:
/// two players → [`support_equilibria_2p`]; n players × 2 strategies →
/// [`symmetric_mixed_equilibria`]; anything else → `"unsupported"` with
/// no equilibria (use [`crate::best_reply_path`] to search those spaces).
pub fn mixed_analysis(table: &UtilityTable, eps: f64) -> MixedAnalysis {
    let counts = table.space().counts();
    if counts.len() == 2 {
        MixedAnalysis {
            method: "support-enumeration",
            equilibria: support_equilibria_2p(table, eps),
        }
    } else if counts.iter().all(|&c| c == 2) {
        MixedAnalysis {
            method: "symmetric-indifference",
            equilibria: symmetric_mixed_equilibria(table, eps),
        }
    } else {
        MixedAnalysis {
            method: "unsupported",
            equilibria: Vec::new(),
        }
    }
}

/// A one-line rendering of a mixture: per player, the non-negligible
/// `probability·label` terms joined with `+`, players joined like a
/// profile — `(0.539·π_fork + 0.461·π_bait, …)`. `label(player, s)`
/// supplies the pure-strategy names.
pub fn mixture_label(mixed: &[Vec<f64>], mut label: impl FnMut(usize, usize) -> String) -> String {
    let parts: Vec<String> = mixed
        .iter()
        .enumerate()
        .map(|(p, dist)| {
            let terms: Vec<String> = dist
                .iter()
                .enumerate()
                .filter(|(_, &w)| w > 1e-9)
                .map(|(s, &w)| {
                    if (w - 1.0).abs() < 1e-9 {
                        label(p, s)
                    } else {
                        format!("{w:.3}·{}", label(p, s))
                    }
                })
                .collect();
            terms.join(" + ")
        })
        .collect();
    format!("({})", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ProfileSpace;
    use crate::types::SystemState;

    fn table_2p(u: impl Fn(usize, usize) -> Vec<f64>, c0: usize, c1: usize) -> UtilityTable {
        UtilityTable::exact(ProfileSpace::new(vec![c0, c1]), |p| {
            (u(p[0], p[1]), SystemState::HonestExecution)
        })
    }

    fn matching_pennies() -> UtilityTable {
        table_2p(
            |a, b| {
                let win = if a == b { 1.0 } else { -1.0 };
                vec![win, -win]
            },
            2,
            2,
        )
    }

    #[test]
    fn expected_utilities_interpolate_the_cells() {
        let t = matching_pennies();
        let uniform = vec![vec![0.5, 0.5]; 2];
        let e = t.expected_utilities(&uniform);
        assert!(e[0].abs() < 1e-12 && e[1].abs() < 1e-12);
        // A pure "mixture" reproduces the cell exactly.
        let pure = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(t.expected_utilities(&pure), vec![-1.0, 1.0]);
        assert_eq!(t.expected_pure_vs_mixed(0, 1, &pure), 1.0);
    }

    #[test]
    fn matching_pennies_has_the_half_half_equilibrium() {
        let t = matching_pennies();
        let found = support_equilibria_2p(&t, 1e-9);
        assert_eq!(found.len(), 1);
        for dist in &found[0].distributions {
            assert!((dist[0] - 0.5).abs() < 1e-12);
        }
        assert!(found[0].regret <= 1e-12);
        assert!(t.is_mixed_nash(&found[0].distributions, 1e-9));
        // …and no pure equilibrium exists to shadow it.
        assert!(t.nash_equilibria(0.0).is_empty());
    }

    #[test]
    fn battle_of_the_sexes_mixed_equilibrium() {
        // u0 prefers (0,0): 2; u1 prefers (1,1): 2; coordination pays 1.
        let t = table_2p(
            |a, b| match (a, b) {
                (0, 0) => vec![2.0, 1.0],
                (1, 1) => vec![1.0, 2.0],
                _ => vec![0.0, 0.0],
            },
            2,
            2,
        );
        let found = support_equilibria_2p(&t, 1e-9);
        assert_eq!(found.len(), 1, "one strictly mixed equilibrium");
        let eq = &found[0];
        // Player 0 plays their favorite with 2/3, player 1 theirs with 2/3.
        assert!((eq.distributions[0][0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((eq.distributions[1][1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((eq.expected[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rock_paper_scissors_full_support() {
        let t = table_2p(
            |a, b| {
                let win = match (3 + a - b) % 3 {
                    0 => 0.0,
                    1 => 1.0,
                    _ => -1.0,
                };
                vec![win, -win]
            },
            3,
            3,
        );
        let found = support_equilibria_2p(&t, 1e-9);
        assert_eq!(found.len(), 1);
        for dist in &found[0].distributions {
            for &p in dist {
                assert!((p - 1.0 / 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dominance_solvable_games_have_no_mixed_equilibrium() {
        // Prisoner's dilemma: the only equilibrium is pure.
        let t = table_2p(
            |a, b| match (a, b) {
                (0, 0) => vec![3.0, 3.0],
                (0, 1) => vec![0.0, 5.0],
                (1, 0) => vec![5.0, 0.0],
                (1, 1) => vec![1.0, 1.0],
                _ => unreachable!(),
            },
            2,
            2,
        );
        assert!(support_equilibria_2p(&t, 1e-9).is_empty());
    }

    /// The TRAP Theorem 3 game (n = 20, t0 = 6, t = 6, k = 3, G = 8,
    /// R = 2, L = 10) as a closed-form 3-player 2-strategy table.
    fn trap_table() -> UtilityTable {
        UtilityTable::exact(ProfileSpace::uniform(3, 2), |p| {
            // 0 = fork, 1 = bait; forks succeed iff ≥ 2 rational forkers.
            let forkers = p.iter().filter(|&&s| s == 0).count();
            let baiters = 3 - forkers;
            let forked = forkers >= 2;
            let u = p
                .iter()
                .map(|&s| match (s, forked) {
                    (0, true) => 8.0 / forkers as f64,
                    (0, false) => -10.0, // slashed: baiters > 0 here
                    (_, true) => 0.0,
                    (_, false) => 2.0 / baiters as f64,
                })
                .collect();
            (u, SystemState::HonestExecution)
        })
    }

    #[test]
    fn trap_symmetric_mixed_equilibrium_matches_the_closed_form() {
        // Indifference: p²·8/3 + 2p(1−p)·4 − (1−p)²·10
        //             = 2p(1−p)·1 + (1−p)²·2/3, i.e. 21p² − 41p + 16 = 0,
        // whose root in (0, 1) is p* = (41 − √337)/42.
        let expected = (41.0 - 337.0_f64.sqrt()) / 42.0;
        let t = trap_table();
        let found = symmetric_mixed_equilibria(&t, 1e-9);
        assert_eq!(found.len(), 1);
        let p = found[0].distributions[0][0];
        assert!(
            (p - expected).abs() < 1e-9,
            "root {p} vs analytic {expected}"
        );
        for dist in &found[0].distributions {
            assert!((dist[0] - p).abs() < 1e-15, "symmetric profile");
        }
        assert!(t.is_mixed_nash(&found[0].distributions, 1e-9));
        // The dispatcher picks the same solver for this shape.
        let analysis = mixed_analysis(&t, 1e-9);
        assert_eq!(analysis.method, "symmetric-indifference");
        assert_eq!(analysis.equilibria, found);
    }

    #[test]
    fn roots_landing_exactly_on_a_grid_point_are_found() {
        // 3-player cyclic matching: u_i = +1 if s_i == s_{(i+1)%3} else −1.
        // The symmetric indifference function cancels exactly at p = 1/2 —
        // which is a scan grid point (256/512), so the root must be taken
        // from the grid, not bisected past.
        let t = UtilityTable::exact(ProfileSpace::uniform(3, 2), |p| {
            let u = (0..3)
                .map(|i| if p[i] == p[(i + 1) % 3] { 1.0 } else { -1.0 })
                .collect();
            (u, SystemState::HonestExecution)
        });
        let found = symmetric_mixed_equilibria(&t, 1e-9);
        assert_eq!(found.len(), 1);
        for dist in &found[0].distributions {
            assert_eq!(dist[0], 0.5, "the exact grid root survives");
        }
        assert!(t.is_mixed_nash(&found[0].distributions, 1e-9));
    }

    #[test]
    fn identically_tied_strategies_report_no_continuum() {
        // Every profile pays everyone 0: *every* mixture is an
        // equilibrium. Like the 2-player solver's singular systems, the
        // continuum is not enumerated.
        let t = UtilityTable::exact(ProfileSpace::uniform(3, 2), |_| {
            (vec![0.0; 3], SystemState::HonestExecution)
        });
        assert!(symmetric_mixed_equilibria(&t, 1e-9).is_empty());
    }

    #[test]
    fn asymmetric_three_player_games_are_reported_unsupported() {
        let t = UtilityTable::exact(ProfileSpace::uniform(3, 3), |p| {
            (
                vec![p[0] as f64, p[1] as f64, p[2] as f64],
                SystemState::HonestExecution,
            )
        });
        let analysis = mixed_analysis(&t, 1e-9);
        assert_eq!(analysis.method, "unsupported");
        assert!(analysis.equilibria.is_empty());
    }

    #[test]
    fn mixture_labels_render() {
        let labels = ["π_fork", "π_bait"];
        let mixed = vec![vec![0.5391, 0.4609], vec![1.0, 0.0]];
        let s = mixture_label(&mixed, |_, s| labels[s].to_string());
        assert_eq!(s, "(0.539·π_fork + 0.461·π_bait, π_fork)");
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn malformed_mixtures_are_rejected() {
        let t = matching_pennies();
        let _ = t.expected_utilities(&[vec![0.9, 0.9], vec![0.5, 0.5]]);
    }
}
