//! Game-theoretic layer of the reproduction: rational player types θ,
//! system states σ, the payoff table `f(σ, θ)` (paper Table 2), discounted
//! repeated-round utilities, equilibrium checkers (Nash / dominant-strategy
//! / Pareto / focal), and the closed-form algebra behind Theorems 1–3,
//! Claim 1, and Lemma 4.
//!
//! The crate is pure math — no simulation dependencies. Experiments feed it
//! either analytic payoffs or utilities measured from `prft-core` runs
//! (empirical game theory): build an [`EmpiricalGame`] from any
//! profile-evaluation function and query its equilibria, or — for swept
//! games — describe the strategy space as a [`ProfileSpace`] (with optional
//! symmetry reduction) and analyse the measured [`UtilityTable`], whose
//! Nash/DSIC certificates account for per-cell confidence intervals. The
//! `prft-lab` explorer fills utility tables from simulation batches.
//!
//! Beyond pure strategies, the table supports *mixed* play — expected
//! utilities under independent per-player distributions, with exact
//! support-enumeration and symmetric-indifference solvers
//! ([`mixed_analysis`]) — and *best-reply dynamics*
//! ([`best_reply_path`], [`best_reply_summary`]): deterministic
//! improvement paths with convergence/cycle detection and attractor
//! basins, for spaces too large to reason about cell by cell. The
//! concepts are written up in `docs/GAME_ANALYSIS.md`.
//!
//! # Example: the TRAP fork equilibrium (Theorem 3)
//!
//! ```
//! use prft_game::analytic;
//!
//! // n = 20, t0 = 6 (TRAP's byzantine bound ⌈n/3⌉−1), t = 6, k = 3:
//! // inside TRAP's advertised tolerance …
//! assert!(analytic::trap_tolerates(20, 3, 6));
//! // … yet fork is a Nash equilibrium because k > 2 + t0 − t …
//! assert!(analytic::trap_fork_is_nash(3, 6, 6));
//! // … since stopping the fork needs more than one baiter:
//! assert!(analytic::trap_min_baiters(20, 6, 3, 6) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod dynamics;
mod empirical;
mod mixed;
mod payoff;
mod repeated;
mod space;
mod types;
mod utility_table;

pub use dynamics::{
    best_reply_path, best_reply_summary, BestReplyPath, DynamicsOutcome, DynamicsSummary,
};
pub use empirical::{EmpiricalGame, Profile};
pub use mixed::{
    mixed_analysis, mixture_label, support_equilibria_2p, symmetric_mixed_equilibria,
    MixedAnalysis, MixedEquilibrium, MixedProfile,
};
pub use payoff::{discounted_sum, geometric_total, PayoffTable, UtilityParams};
pub use repeated::GrimTrigger;
pub use space::ProfileSpace;
pub use types::{PlayerClass, Strategy, SystemState, Theta};
pub use utility_table::{Certificate, Confidence, ProfileStats, UtilityTable};
