//! The vocabulary of the rational-consensus game.

use std::fmt;

/// Rational player type θ (paper Section 4.1.1).
///
/// The type encodes which bad system states *pay* the player. Byzantine
/// players are effectively `θ = 3` with no incentive sensitivity; honest
/// players are `θ = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Theta {
    /// θ=0: any non-honest state is a loss (honest-aligned rational).
    Honest,
    /// θ=1: paid only by disagreement (`σ_Fork`).
    ForkSeeking,
    /// θ=2: paid by censorship or disagreement.
    CensorSeeking,
    /// θ=3: paid by no-progress, censorship, or disagreement.
    LivenessAttacking,
}

impl Theta {
    /// All four types, ascending.
    pub const ALL: [Theta; 4] = [
        Theta::Honest,
        Theta::ForkSeeking,
        Theta::CensorSeeking,
        Theta::LivenessAttacking,
    ];

    /// The paper's numeric label.
    pub fn index(self) -> u8 {
        match self {
            Theta::Honest => 0,
            Theta::ForkSeeking => 1,
            Theta::CensorSeeking => 2,
            Theta::LivenessAttacking => 3,
        }
    }

    /// A mixed set of rational players is analysed at the worst type
    /// present: `θ(K) = max{ i | K_i ≠ ∅ }` (paper Section 4.1.1).
    pub fn worst_of(types: impl IntoIterator<Item = Theta>) -> Theta {
        types.into_iter().max().unwrap_or(Theta::Honest)
    }
}

impl fmt::Display for Theta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ={}", self.index())
    }
}

/// System state σ (paper Section 4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemState {
    /// `σ_NP`: no new blocks are agreed.
    NoProgress,
    /// `σ_CP`: blocks confirm but a censored set never does.
    Censorship,
    /// `σ_Fork`: two honest players confirm different blocks at a height.
    Fork,
    /// `σ_0`: honest execution.
    HonestExecution,
}

impl SystemState {
    /// All four states.
    pub const ALL: [SystemState; 4] = [
        SystemState::NoProgress,
        SystemState::Censorship,
        SystemState::Fork,
        SystemState::HonestExecution,
    ];

    /// Paper notation.
    pub fn symbol(self) -> &'static str {
        match self {
            SystemState::NoProgress => "σ_NP",
            SystemState::Censorship => "σ_CP",
            SystemState::Fork => "σ_Fork",
            SystemState::HonestExecution => "σ_0",
        }
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The strategy space available to a rational player (paper Section 4.1.2,
/// extended with the composite strategies used in the proofs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// `π_0`: follow the protocol.
    Honest,
    /// `π_abs`: send nothing.
    Abstain,
    /// `π_ds`: sign two conflicting messages in one slot.
    DoubleSign,
    /// `π_pc`: censor as leader, abstain under honest leaders (Thm 2).
    PartialCensor,
    /// `π_fork`: coordinated double-signing toward disagreement (Thm 3).
    Fork,
    /// `π_bait`: follow TRAP's baiting side-protocol.
    Bait,
}

impl Strategy {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Honest => "π_0",
            Strategy::Abstain => "π_abs",
            Strategy::DoubleSign => "π_ds",
            Strategy::PartialCensor => "π_pc",
            Strategy::Fork => "π_fork",
            Strategy::Bait => "π_bait",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The three player classes of the threat model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlayerClass {
    /// Follows the protocol (individually rational participation).
    Honest,
    /// Utility-maximizing with a type θ.
    Rational(Theta),
    /// Arbitrary, incentive-immune.
    Byzantine,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_ordering_matches_severity() {
        assert!(Theta::LivenessAttacking > Theta::CensorSeeking);
        assert!(Theta::CensorSeeking > Theta::ForkSeeking);
        assert!(Theta::ForkSeeking > Theta::Honest);
    }

    #[test]
    fn worst_of_takes_max() {
        assert_eq!(
            Theta::worst_of([Theta::ForkSeeking, Theta::CensorSeeking]),
            Theta::CensorSeeking
        );
        assert_eq!(Theta::worst_of([]), Theta::Honest);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Theta::ForkSeeking.to_string(), "θ=1");
        assert_eq!(SystemState::Fork.to_string(), "σ_Fork");
        assert_eq!(Strategy::Fork.to_string(), "π_fork");
    }
}
