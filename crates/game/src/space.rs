//! Strategy-profile spaces: who plays, what they can play, and which
//! profiles are equivalent under player symmetry.
//!
//! A [`ProfileSpace`] is the domain of an empirical game: `players ×
//! strategy sets`, enumerated in lexicographic order so sweeps and reports
//! are deterministic. Declaring a *symmetry group* — a set of players with
//! identical strategy sets whose identities do not matter to the game —
//! collapses every permutation of strategies within the group onto one
//! canonical representative, so a sweep evaluates each orbit once and the
//! full table is reconstructed by permuting utilities back
//! ([`ProfileSpace::expand_values`]). For `p` interchangeable players
//! with `s` strategies each this cuts `s^p` evaluations to
//! `C(s + p − 1, p)` (multisets), e.g. 27 → 10 for the paper's 3×3×3
//! Lemma 4 game.

use crate::empirical::Profile;

/// The strategy space of an empirical game: one strategy count per player,
/// plus optional symmetry groups of interchangeable players.
///
/// Symmetry is *declared*, never inferred: only mark players symmetric when
/// the game's utility really is invariant under permuting them (same role
/// menu, no player-specific position such as a leader slot or a partition
/// side that distinguishes them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpace {
    counts: Vec<usize>,
    symmetry: Vec<Vec<usize>>,
}

impl ProfileSpace {
    /// A space with the given per-player strategy counts and no symmetry.
    ///
    /// # Panics
    /// Panics if there are no players or any player has zero strategies.
    pub fn new(counts: Vec<usize>) -> Self {
        assert!(!counts.is_empty(), "a game needs at least one player");
        assert!(
            counts.iter().all(|&c| c > 0),
            "every player needs at least one strategy"
        );
        ProfileSpace {
            counts,
            symmetry: Vec::new(),
        }
    }

    /// `players` players, each choosing among `strategies` strategies.
    pub fn uniform(players: usize, strategies: usize) -> Self {
        ProfileSpace::new(vec![strategies; players])
    }

    /// Declares `group` as interchangeable players.
    ///
    /// # Panics
    /// Panics if the group has fewer than two players, an index is out of
    /// range or already in a group, or the members' strategy counts differ.
    #[must_use]
    pub fn with_symmetry(mut self, group: impl IntoIterator<Item = usize>) -> Self {
        let mut group: Vec<usize> = group.into_iter().collect();
        group.sort_unstable();
        group.dedup();
        assert!(group.len() >= 2, "a symmetry group needs ≥ 2 players");
        for &p in &group {
            assert!(p < self.counts.len(), "player {p} out of range");
            assert!(
                !self.symmetry.iter().any(|g| g.contains(&p)),
                "player {p} is already in a symmetry group"
            );
            assert_eq!(
                self.counts[p], self.counts[group[0]],
                "symmetric players must share a strategy set"
            );
        }
        self.symmetry.push(group);
        self
    }

    /// Declares *all* players interchangeable (requires uniform counts).
    #[must_use]
    pub fn fully_symmetric(self) -> Self {
        let players = self.counts.len();
        if players < 2 {
            return self;
        }
        self.with_symmetry(0..players)
    }

    /// Number of players.
    pub fn players(&self) -> usize {
        self.counts.len()
    }

    /// Per-player strategy counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The declared symmetry groups (sorted, disjoint).
    pub fn symmetry_groups(&self) -> &[Vec<usize>] {
        &self.symmetry
    }

    /// Total number of profiles (the full product space).
    pub fn len(&self) -> usize {
        self.counts.iter().product()
    }

    /// Whether the space is empty (it never is; kept for clippy symmetry
    /// with [`ProfileSpace::len`]).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `profile` has the right arity and in-range strategies.
    pub fn contains(&self, profile: &Profile) -> bool {
        profile.len() == self.counts.len() && profile.iter().zip(&self.counts).all(|(&s, &c)| s < c)
    }

    /// Every profile, in lexicographic order (last player varies fastest).
    pub fn profiles(&self) -> Vec<Profile> {
        let mut out = Vec::with_capacity(self.len());
        let mut profile = vec![0usize; self.counts.len()];
        loop {
            out.push(profile.clone());
            // Odometer over the last index first = lexicographic ascending.
            let mut i = self.counts.len();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                profile[i] += 1;
                if profile[i] < self.counts[i] {
                    break;
                }
                profile[i] = 0;
            }
        }
    }

    /// The canonical representative of `profile`'s symmetry orbit:
    /// strategies within each symmetry group sorted ascending (positions
    /// outside any group are untouched).
    ///
    /// # Panics
    /// Panics if `profile` is not in the space.
    pub fn canonical(&self, profile: &Profile) -> Profile {
        assert!(self.contains(profile), "profile {profile:?} out of range");
        let mut out = profile.clone();
        for group in &self.symmetry {
            let mut strategies: Vec<usize> = group.iter().map(|&p| out[p]).collect();
            strategies.sort_unstable();
            for (&p, s) in group.iter().zip(strategies) {
                out[p] = s;
            }
        }
        out
    }

    /// Whether `profile` is its own orbit representative.
    pub fn is_canonical(&self, profile: &Profile) -> bool {
        self.canonical(profile) == *profile
    }

    /// The canonical representatives only, in lexicographic order — the
    /// profiles a symmetry-reduced sweep actually evaluates.
    pub fn canonical_profiles(&self) -> Vec<Profile> {
        self.profiles()
            .into_iter()
            .filter(|p| self.is_canonical(p))
            .collect()
    }

    /// Transfers a per-player value vector measured at the canonical
    /// representative onto `profile`: each player receives the value of a
    /// same-group canonical position playing the same strategy (multiset
    /// matching, first unused match — deterministic). Positions outside any
    /// symmetry group keep their own value.
    ///
    /// # Panics
    /// Panics if `profile` is out of range, `values` has the wrong arity,
    /// or `profile` is not in the orbit of its canonical form (cannot
    /// happen for values of [`ProfileSpace::canonical`]).
    pub fn expand_values(&self, profile: &Profile, values: &[f64]) -> Vec<f64> {
        assert_eq!(values.len(), self.counts.len(), "one value per player");
        let canonical = self.canonical(profile);
        let mut out = values.to_vec();
        for group in &self.symmetry {
            let mut used = vec![false; group.len()];
            for &i in group {
                let j = group
                    .iter()
                    .enumerate()
                    .position(|(gj, &p)| !used[gj] && canonical[p] == profile[i])
                    .expect("canonical form is a permutation of the profile");
                used[j] = true;
                out[i] = values[group[j]];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_lexicographic_and_complete() {
        let space = ProfileSpace::new(vec![2, 3]);
        assert_eq!(space.len(), 6);
        assert_eq!(
            space.profiles(),
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2],
            ]
        );
        assert!(space.contains(&vec![1, 2]));
        assert!(!space.contains(&vec![2, 0]));
        assert!(!space.contains(&vec![0]));
    }

    #[test]
    fn canonicalization_sorts_within_groups_only() {
        // Players 1 and 2 symmetric; player 0 independent.
        let space = ProfileSpace::new(vec![2, 3, 3]).with_symmetry([1, 2]);
        assert_eq!(space.canonical(&vec![1, 2, 0]), vec![1, 0, 2]);
        assert_eq!(space.canonical(&vec![1, 0, 2]), vec![1, 0, 2]);
        assert!(space.is_canonical(&vec![0, 1, 1]));
        assert!(!space.is_canonical(&vec![0, 2, 1]));
    }

    #[test]
    fn symmetric_reduction_counts_multisets() {
        // 3 players × 3 strategies, fully symmetric: C(5,3) = 10 multisets.
        let space = ProfileSpace::uniform(3, 3).fully_symmetric();
        assert_eq!(space.len(), 27);
        assert_eq!(space.canonical_profiles().len(), 10);
        // 4 strategies: C(6,3) = 20 of 64.
        let wide = ProfileSpace::uniform(3, 4).fully_symmetric();
        assert_eq!(wide.canonical_profiles().len(), 20);
        assert_eq!(wide.len(), 64);
    }

    #[test]
    fn expand_values_permutes_group_values_back() {
        let space = ProfileSpace::uniform(3, 3).fully_symmetric();
        // Canonical [0, 1, 2] measured u = [10, 20, 30]; profile [2, 0, 1]
        // puts strategy 2 on player 0, 0 on player 1, 1 on player 2.
        let u = space.expand_values(&vec![2, 0, 1], &[10.0, 20.0, 30.0]);
        assert_eq!(u, vec![30.0, 10.0, 20.0]);
        // Duplicate strategies assign deterministically, first-match-first.
        let u = space.expand_values(&vec![1, 0, 0], &[1.0, 2.0, 3.0]);
        assert_eq!(u, vec![3.0, 1.0, 2.0]);
        // A canonical profile maps to itself.
        let u = space.expand_values(&vec![0, 1, 2], &[1.0, 2.0, 3.0]);
        assert_eq!(u, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn no_symmetry_means_identity() {
        let space = ProfileSpace::new(vec![2, 2]);
        assert_eq!(space.canonical_profiles().len(), 4);
        assert_eq!(
            space.expand_values(&vec![1, 0], &[5.0, 6.0]),
            vec![5.0, 6.0]
        );
    }

    #[test]
    #[should_panic(expected = "share a strategy set")]
    fn asymmetric_counts_cannot_be_grouped() {
        let _ = ProfileSpace::new(vec![2, 3]).with_symmetry([0, 1]);
    }

    #[test]
    #[should_panic(expected = "already in a symmetry group")]
    fn overlapping_groups_rejected() {
        let _ = ProfileSpace::uniform(3, 2)
            .with_symmetry([0, 1])
            .with_symmetry([1, 2]);
    }
}
