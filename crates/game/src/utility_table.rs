//! Measured utility tables over a [`ProfileSpace`] and the equilibrium
//! analysis the paper's claims reduce to: unilateral-deviation
//! (best-response) checks, Nash / dominant-strategy certification that
//! accounts for measurement confidence intervals, and per-strategy regret.
//!
//! The table is the boundary between *measurement* and *analysis*: the
//! `prft-lab` explorer fills one from simulation batches (each cell a mean
//! utility vector with a 95% CI per player), analytic games fill one
//! exactly, and everything downstream — Lemma 4's DSIC verdict, Theorem 3's
//! double equilibrium — is a pure function of the finished table.

use crate::empirical::{EmpiricalGame, Profile};
use crate::space::ProfileSpace;
use crate::types::SystemState;
use std::collections::BTreeMap;

/// One evaluated profile: per-player mean utilities, their 95% confidence
/// half-widths, and the run evidence behind them.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStats {
    /// Mean utility per player (profile arity).
    pub utilities: Vec<f64>,
    /// 95% confidence half-width per player (zero for analytic cells).
    pub ci95: Vec<f64>,
    /// Seeded runs behind the cell (1 for analytic cells).
    pub seeds: u64,
    /// The modal system state σ the profile drove the system into.
    pub sigma: SystemState,
}

/// How robust a verdict is to the per-cell measurement noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// The verdict survives shifting every compared cell to the worst edge
    /// of its 95% confidence interval.
    Certified,
    /// The point estimates decide, but some comparison sits inside the
    /// combined confidence interval — more seeds would firm it up.
    Tentative,
}

/// A (best-response) verdict about one profile or strategy, with the worst
/// unilateral gain observed and the CI robustness of the conclusion.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The verdict from the point estimates (gain ≤ eps nowhere violated).
    pub holds: bool,
    /// Whether the verdict survives the confidence intervals.
    pub confidence: Confidence,
    /// The largest unilateral gain found (negative = deviations lose).
    pub worst_gain: f64,
    /// The deviation achieving `worst_gain`: `(player, profile, alt)`.
    pub worst_case: Option<(usize, Profile, usize)>,
}

/// A complete measured game: one [`ProfileStats`] per profile of a
/// [`ProfileSpace`], stored in lexicographic order.
#[derive(Debug, Clone)]
pub struct UtilityTable {
    space: ProfileSpace,
    cells: BTreeMap<Profile, ProfileStats>,
}

impl UtilityTable {
    /// An empty table over `space`; fill with [`UtilityTable::insert`].
    pub fn new(space: ProfileSpace) -> Self {
        UtilityTable {
            space,
            cells: BTreeMap::new(),
        }
    }

    /// Builds a complete table by evaluating `eval` exactly on every
    /// profile (analytic games: zero CI, one "seed" per cell). The system
    /// state is taken from the evaluator alongside the utilities.
    pub fn exact<F>(space: ProfileSpace, mut eval: F) -> Self
    where
        F: FnMut(&Profile) -> (Vec<f64>, SystemState),
    {
        let mut table = UtilityTable::new(space);
        for profile in table.space.profiles() {
            let (utilities, sigma) = eval(&profile);
            let players = table.space.players();
            table.insert(
                profile,
                ProfileStats {
                    ci95: vec![0.0; players],
                    seeds: 1,
                    utilities,
                    sigma,
                },
            );
        }
        table
    }

    /// Completes a table from canonical-representative measurements only,
    /// expanding each orbit by permuting per-player values back onto the
    /// non-canonical profiles (see [`ProfileSpace::expand_values`]).
    ///
    /// # Panics
    /// Panics if any canonical profile is missing from `canonical_cells`.
    pub fn from_canonical(
        space: ProfileSpace,
        canonical_cells: &BTreeMap<Profile, ProfileStats>,
    ) -> Self {
        let mut table = UtilityTable::new(space);
        for profile in table.space.profiles() {
            let canonical = table.space.canonical(&profile);
            let stats = canonical_cells
                .get(&canonical)
                .unwrap_or_else(|| panic!("canonical profile {canonical:?} not measured"));
            let expanded = ProfileStats {
                utilities: table.space.expand_values(&profile, &stats.utilities),
                ci95: table.space.expand_values(&profile, &stats.ci95),
                seeds: stats.seeds,
                sigma: stats.sigma,
            };
            table.insert(profile, expanded);
        }
        table
    }

    /// Inserts one evaluated cell.
    ///
    /// # Panics
    /// Panics if the profile is out of range or the arities are wrong.
    pub fn insert(&mut self, profile: Profile, stats: ProfileStats) {
        assert!(
            self.space.contains(&profile),
            "profile {profile:?} out of range"
        );
        assert_eq!(stats.utilities.len(), self.space.players());
        assert_eq!(stats.ci95.len(), self.space.players());
        self.cells.insert(profile, stats);
    }

    /// The profile space this table covers.
    pub fn space(&self) -> &ProfileSpace {
        &self.space
    }

    /// Whether every profile of the space has been evaluated.
    pub fn is_complete(&self) -> bool {
        self.cells.len() == self.space.len()
    }

    /// The cell for `profile`, if evaluated.
    pub fn get(&self, profile: &Profile) -> Option<&ProfileStats> {
        self.cells.get(profile)
    }

    /// All cells in lexicographic profile order.
    pub fn cells(&self) -> impl Iterator<Item = (&Profile, &ProfileStats)> {
        self.cells.iter()
    }

    /// Mean utility vector for a profile.
    ///
    /// # Panics
    /// Panics if the profile was never evaluated.
    pub fn utilities(&self, profile: &Profile) -> &[f64] {
        &self.stats(profile).utilities
    }

    fn stats(&self, profile: &Profile) -> &ProfileStats {
        self.cells
            .get(profile)
            .unwrap_or_else(|| panic!("profile {profile:?} not evaluated"))
    }

    /// `player`'s gain from unilaterally deviating to `alt` at `profile`
    /// (positive = the deviation pays).
    pub fn deviation_gain(&self, profile: &Profile, player: usize, alt: usize) -> f64 {
        let mut dev = profile.clone();
        dev[player] = alt;
        self.utilities(&dev)[player] - self.utilities(profile)[player]
    }

    /// The combined 95% noise margin of comparing `player`'s utility at
    /// `profile` against the cell where they deviate to `alt`.
    fn noise(&self, profile: &Profile, player: usize, alt: usize) -> f64 {
        let mut dev = profile.clone();
        dev[player] = alt;
        self.stats(profile).ci95[player] + self.stats(&dev).ci95[player]
    }

    /// `player`'s best response at `profile`: the strategy maximizing their
    /// utility holding everyone else fixed (ties break low), with its gain
    /// over the current strategy.
    pub fn best_response(&self, profile: &Profile, player: usize) -> (usize, f64) {
        let mut best = (profile[player], 0.0);
        for alt in 0..self.space.counts()[player] {
            let gain = self.deviation_gain(profile, player, alt);
            if gain > best.1 {
                best = (alt, gain);
            }
        }
        best
    }

    /// Whether `profile` is a pure Nash equilibrium at tolerance `eps`
    /// (point estimates only).
    pub fn is_nash(&self, profile: &Profile, eps: f64) -> bool {
        self.certify_nash(profile, eps).holds
    }

    /// All pure Nash equilibria, lexicographically ordered.
    pub fn nash_equilibria(&self, eps: f64) -> Vec<Profile> {
        self.space
            .profiles()
            .into_iter()
            .filter(|p| self.is_nash(p, eps))
            .collect()
    }

    /// Nash check with confidence: `holds` from the point estimates, and
    /// `Certified` only when the verdict survives pushing every compared
    /// pair of cells to the worst edge of their 95% intervals.
    pub fn certify_nash(&self, profile: &Profile, eps: f64) -> Certificate {
        let mut worst_gain = f64::NEG_INFINITY;
        let mut worst_case = None;
        let mut holds = true;
        let mut certified = true;
        for player in 0..self.space.players() {
            for alt in 0..self.space.counts()[player] {
                if alt == profile[player] {
                    continue;
                }
                let gain = self.deviation_gain(profile, player, alt);
                let noise = self.noise(profile, player, alt);
                if gain > worst_gain {
                    worst_gain = gain;
                    worst_case = Some((player, profile.clone(), alt));
                }
                if gain > eps {
                    holds = false;
                    // Refutation is certified only if the gain clears the
                    // noise band.
                    if gain - noise <= eps {
                        certified = false;
                    }
                } else if gain + noise > eps {
                    certified = false;
                }
            }
        }
        if worst_case.is_none() {
            // Single-profile spaces have no deviations at all.
            worst_gain = 0.0;
        }
        Certificate {
            holds,
            confidence: if certified {
                Confidence::Certified
            } else {
                Confidence::Tentative
            },
            worst_gain,
            worst_case,
        }
    }

    /// Whether `strategy` is weakly dominant for `player` at tolerance
    /// `eps` (point estimates; the DSIC condition when it holds with the
    /// honest strategy for every rational player).
    pub fn is_dominant(&self, player: usize, strategy: usize, eps: f64) -> bool {
        self.certify_dominant(player, strategy, eps).holds
    }

    /// Dominance check with confidence, analogous to
    /// [`UtilityTable::certify_nash`]: `worst_gain` is the best any rival
    /// strategy ever does over `strategy` across opponent profiles.
    pub fn certify_dominant(&self, player: usize, strategy: usize, eps: f64) -> Certificate {
        let mut worst_gain = f64::NEG_INFINITY;
        let mut worst_case = None;
        let mut holds = true;
        let mut certified = true;
        for profile in self.space.profiles() {
            if profile[player] == strategy {
                continue;
            }
            // gain = how much the rival strategy (as played in `profile`)
            // beats `strategy` against these opponents.
            let gain = -self.deviation_gain(&profile, player, strategy);
            let noise = self.noise(&profile, player, strategy);
            if gain > worst_gain {
                worst_gain = gain;
                worst_case = Some((player, profile.clone(), strategy));
            }
            if gain > eps {
                holds = false;
                if gain - noise <= eps {
                    certified = false;
                }
            } else if gain + noise > eps {
                certified = false;
            }
        }
        if worst_case.is_none() {
            worst_gain = 0.0;
        }
        Certificate {
            holds,
            confidence: if certified {
                Confidence::Certified
            } else {
                Confidence::Tentative
            },
            worst_gain,
            worst_case,
        }
    }

    /// The maximum regret of `player` committing to `strategy`: over every
    /// profile where they play it, how far below their best response they
    /// end up. Zero iff the strategy is weakly dominant.
    pub fn regret(&self, player: usize, strategy: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for profile in self.space.profiles() {
            if profile[player] != strategy {
                continue;
            }
            let (_, gain) = self.best_response(&profile, player);
            worst = worst.max(gain);
        }
        worst
    }

    /// The regret matrix: `matrix[player][strategy]` =
    /// [`UtilityTable::regret`].
    pub fn regret_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.space.players())
            .map(|p| {
                (0..self.space.counts()[p])
                    .map(|s| self.regret(p, s))
                    .collect()
            })
            .collect()
    }

    /// The table as an [`EmpiricalGame`] over the mean utilities, for the
    /// Pareto / focal-point analysis that crate already owns.
    pub fn to_game(&self) -> EmpiricalGame {
        let counts = self.space.counts().to_vec();
        EmpiricalGame::explore(counts, |p| self.utilities(p).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pd() -> UtilityTable {
        // Prisoner's dilemma: 0 = cooperate, 1 = defect.
        UtilityTable::exact(ProfileSpace::uniform(2, 2), |p| {
            let u = match (p[0], p[1]) {
                (0, 0) => vec![3.0, 3.0],
                (0, 1) => vec![0.0, 5.0],
                (1, 0) => vec![5.0, 0.0],
                (1, 1) => vec![1.0, 1.0],
                _ => unreachable!(),
            };
            (u, SystemState::HonestExecution)
        })
    }

    #[test]
    fn nash_and_dominance_match_the_classic_answers() {
        let t = pd();
        assert!(t.is_complete());
        assert_eq!(t.nash_equilibria(0.0), vec![vec![1, 1]]);
        assert!(t.is_dominant(0, 1, 0.0) && t.is_dominant(1, 1, 0.0));
        assert!(!t.is_dominant(0, 0, 0.0));
        let cert = t.certify_nash(&vec![1, 1], 0.0);
        assert!(cert.holds);
        assert_eq!(cert.confidence, Confidence::Certified);
        assert_eq!(cert.worst_gain, -1.0, "deviating to cooperate loses 1");
        let broken = t.certify_nash(&vec![0, 0], 0.0);
        assert!(!broken.holds);
        assert_eq!(broken.worst_gain, 2.0, "defection gains 2");
        assert_eq!(broken.confidence, Confidence::Certified);
    }

    #[test]
    fn best_response_and_regret() {
        let t = pd();
        assert_eq!(t.best_response(&vec![0, 0], 0), (1, 2.0));
        assert_eq!(t.best_response(&vec![1, 1], 0), (1, 0.0), "already best");
        // Defection is dominant, so its regret is 0; cooperation's worst
        // case is facing a defector: best response gains 1.
        assert_eq!(t.regret(0, 1), 0.0);
        assert_eq!(t.regret(0, 0), 2.0);
        assert_eq!(t.regret_matrix(), vec![vec![2.0, 0.0], vec![2.0, 0.0]]);
    }

    #[test]
    fn wide_cis_downgrade_to_tentative() {
        let mut t = pd();
        // Inflate the CI at the all-defect cell: the Nash verdict's point
        // estimate still holds but is no longer CI-robust.
        let mut stats = t.get(&vec![1, 1]).unwrap().clone();
        stats.ci95 = vec![3.0, 3.0];
        t.insert(vec![1, 1], stats);
        let cert = t.certify_nash(&vec![1, 1], 0.0);
        assert!(cert.holds);
        assert_eq!(cert.confidence, Confidence::Tentative);
        let dom = t.certify_dominant(0, 1, 0.0);
        assert!(dom.holds);
        assert_eq!(dom.confidence, Confidence::Tentative);
    }

    #[test]
    fn from_canonical_expands_a_symmetric_game() {
        // Fully symmetric 2×2 coordination game measured only on the 3
        // canonical profiles.
        let space = ProfileSpace::uniform(2, 2).fully_symmetric();
        let mut cells = BTreeMap::new();
        let eval = |p: &Profile| match (p[0], p[1]) {
            (0, 0) => vec![2.0, 2.0],
            (0, 1) => vec![0.0, 1.0],
            (1, 1) => vec![1.0, 1.0],
            _ => unreachable!("non-canonical"),
        };
        for profile in space.canonical_profiles() {
            let utilities = eval(&profile);
            cells.insert(
                profile,
                ProfileStats {
                    ci95: vec![0.0; 2],
                    seeds: 1,
                    utilities,
                    sigma: SystemState::HonestExecution,
                },
            );
        }
        let t = UtilityTable::from_canonical(space, &cells);
        assert!(t.is_complete());
        // The missing profile (1, 0) is the mirror of (0, 1).
        assert_eq!(t.utilities(&vec![1, 0]), &[1.0, 0.0]);
        assert_eq!(t.nash_equilibria(0.0), vec![vec![0, 0], vec![1, 1]]);
    }

    #[test]
    fn to_game_round_trips_utilities() {
        let t = pd();
        let g = t.to_game();
        assert_eq!(g.utilities(&vec![0, 1]), &[0.0, 5.0]);
        assert!(g.pareto_dominates_for(&vec![0, 0], &vec![1, 1], &[0, 1]));
    }

    #[test]
    #[should_panic(expected = "not evaluated")]
    fn missing_cell_panics() {
        let t = UtilityTable::new(ProfileSpace::uniform(2, 2));
        let _ = t.utilities(&vec![0, 0]);
    }
}
