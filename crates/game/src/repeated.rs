//! Repeated-round utilities and the grim-trigger analysis behind
//! Theorem 3.
//!
//! The paper's utility (Eq. 1) is a discounted stream
//! `U_i(π, θ) = Σ_{r≥0} δ^r · u_i(π, θ, r)`. Theorem 3's proof considers a
//! collusion playing grim trigger — "if one player of collusion baits, all
//! players will abandon collusion" — and shows that under it, forking every
//! round is a Nash equilibrium of the repeated game: a one-shot defection
//! to baiting trades the entire future fork stream for (at most) one
//! reward.

use crate::payoff::geometric_total;

/// The repeated-game payoff streams available to one rational collusion
/// member in a baiting-based protocol under grim trigger.
#[derive(Debug, Clone, Copy)]
pub struct GrimTrigger {
    /// Per-round fork dividend `G / k`.
    pub fork_per_round: f64,
    /// One-shot expected baiting reward `R · Pr(avert)`.
    pub bait_once: f64,
    /// Discount factor δ ∈ [0, 1).
    pub delta: f64,
}

impl GrimTrigger {
    /// Discounted utility of cooperating with the fork forever:
    /// `(G/k) / (1 − δ)`.
    pub fn forever_fork(&self) -> f64 {
        geometric_total(self.fork_per_round, self.delta)
    }

    /// Discounted utility of defecting to baiting at round `r`: the fork
    /// dividends up to `r`, plus the one-shot reward, plus nothing forever
    /// (the collusion dissolves — grim trigger).
    pub fn defect_at(&self, round: u32) -> f64 {
        let mut acc = 0.0;
        let mut w = 1.0;
        for _ in 0..round {
            acc += w * self.fork_per_round;
            w *= self.delta;
        }
        acc + w * self.bait_once
    }

    /// Whether eternal forking beats defecting at every round — the
    /// repeated-game condition for the fork equilibrium of Theorem 3.
    /// With `Pr(avert) = 0` for unilateral baiting (the `k > 2 + t0 − t`
    /// regime), `bait_once = 0` and this always holds for positive fork
    /// dividends.
    pub fn fork_is_stable(&self) -> bool {
        // Defection is best taken as early as possible if at all (the
        // reward is not discounted-growing), so round 0 is the binding
        // comparison; we still sweep a window for robustness.
        (0..50).all(|r| self.forever_fork() >= self.defect_at(r) - 1e-12)
    }

    /// The minimum one-shot bait reward that would destabilize the fork —
    /// what the mechanism designer would need to offer. From
    /// `forever_fork ≤ bait_once` at round 0: `R* = (G/k) / (1 − δ)`.
    pub fn destabilizing_reward(&self) -> f64 {
        self.forever_fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game(bait_once: f64) -> GrimTrigger {
        GrimTrigger {
            fork_per_round: 8.0 / 3.0,
            bait_once,
            delta: 0.9,
        }
    }

    #[test]
    fn forever_fork_matches_closed_form() {
        let g = game(0.0);
        assert!((g.forever_fork() - (8.0 / 3.0) / 0.1).abs() < 1e-9);
    }

    #[test]
    fn defecting_later_collects_more_dividends() {
        let g = game(2.0);
        assert!(g.defect_at(0) < g.defect_at(3));
        // But every defection stream is below eternal forking when the
        // reward is small.
        assert!(g.fork_is_stable());
    }

    #[test]
    fn unilateral_bait_in_theorem_3_regime_pays_zero() {
        // Pr(avert) = 0 ⇒ bait_once = 0 ⇒ fork trivially stable.
        let g = game(0.0);
        assert!(g.fork_is_stable());
        assert_eq!(g.defect_at(0), 0.0);
    }

    #[test]
    fn huge_reward_destabilizes() {
        let g = game(1_000.0);
        assert!(!g.fork_is_stable());
        // The threshold is exactly the eternal fork value.
        let edge = game(game(0.0).destabilizing_reward());
        assert!(edge.fork_is_stable(), "weakly stable at the threshold");
        let above = game(game(0.0).destabilizing_reward() + 1.0);
        assert!(!above.fork_is_stable());
    }

    #[test]
    fn destabilizing_reward_scales_with_patience() {
        // More patient players (higher δ) need a larger reward to defect —
        // the designer's problem gets harder, which is why TRAP's fixed R
        // cannot be sufficient in general.
        let impatient = GrimTrigger {
            fork_per_round: 1.0,
            bait_once: 0.0,
            delta: 0.5,
        };
        let patient = GrimTrigger {
            fork_per_round: 1.0,
            bait_once: 0.0,
            delta: 0.99,
        };
        assert!(patient.destabilizing_reward() > 10.0 * impatient.destabilizing_reward());
    }
}
