//! Edge cases for the baseline protocols: contested elections, Bracha's
//! ready-amplification path, Dolev–Strong with longer relay chains, and
//! pBFT's split-brain at the broken bound.

use prft_baselines::{bracha, pbft, raft_lite, sync_ba};
use prft_net::{AsynchronousNet, PartitionWindow, PartitionedNet, SynchronousNet};
use prft_sim::{SimTime, Simulation};
use prft_types::{Digest, NodeId};
use std::collections::BTreeSet;

/// Raft under contested elections (all candidates start together thanks to
/// randomized-but-close timeouts): exactly one leader wins each term and
/// the log still converges.
#[test]
fn raft_contested_elections_converge() {
    for seed in [1u64, 2, 3, 4, 5] {
        let cfg = raft_lite::RaftConfig::new(5, 3);
        let mut sim = Simulation::new(
            raft_lite::cluster(&cfg),
            Box::new(SynchronousNet::new(SimTime(50))), // slow net: more contention
            seed,
        );
        sim.run_until(SimTime(2_000_000));
        let logs: Vec<Vec<raft_lite::Entry>> = (0..5)
            .map(|i| sim.node(NodeId(i)).committed().to_vec())
            .collect();
        assert!(
            logs.iter().any(|l| l.len() >= 3),
            "seed {seed}: commits despite contention"
        );
        for a in &logs {
            for b in &logs {
                let m = a.len().min(b.len());
                assert_eq!(&a[..m], &b[..m], "seed {seed}: prefix agreement");
            }
        }
    }
}

/// Raft through a partition: the majority side commits; the minority side
/// cannot, and reconciles (truncates) after healing.
#[test]
fn raft_partition_majority_rules() {
    let cfg = raft_lite::RaftConfig::new(5, 4);
    let mut net = PartitionedNet::new(Box::new(SynchronousNet::new(SimTime(10))));
    net.add_window(PartitionWindow::split(
        SimTime(0),
        SimTime(5_000),
        vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(3), NodeId(4)],
        ],
    ));
    let mut sim = Simulation::new(raft_lite::cluster(&cfg), Box::new(net), 9);
    sim.run_until(SimTime(3_000_000));
    let logs: Vec<Vec<raft_lite::Entry>> = (0..5)
        .map(|i| sim.node(NodeId(i)).committed().to_vec())
        .collect();
    assert!(logs.iter().any(|l| l.len() >= 4), "majority side committed");
    for a in &logs {
        for b in &logs {
            let m = a.len().min(b.len());
            assert_eq!(&a[..m], &b[..m], "healed logs agree");
        }
    }
}

/// Bracha's amplification: a silent *sender* plus readys injected by honest
/// relays — delivery through the `t+1 readys → ready` path when echoes are
/// split. Here: sender equivocates, and no value reaches the echo quorum,
/// but consistency must hold across every async schedule.
#[test]
fn bracha_equivocation_under_many_schedules() {
    for seed in 0..10u64 {
        let mut modes = vec![bracha::BrachaMode::Honest; 7];
        modes[0] =
            bracha::BrachaMode::EquivocatingSender(Digest::of_bytes(b"x"), Digest::of_bytes(b"y"));
        let cfg = bracha::BrachaConfig {
            n: 7,
            t: 2,
            sender: NodeId(0),
            value: Digest::of_bytes(b"x"),
        };
        let mut sim = Simulation::new(
            bracha::committee(&cfg, &modes),
            Box::new(AsynchronousNet::new(SimTime(30), 0.4, SimTime(8_000))),
            seed,
        );
        sim.run_until(SimTime(30_000_000));
        let delivered: BTreeSet<Digest> = (1..7)
            .filter_map(|i| sim.node(NodeId(i)).delivered())
            .collect();
        assert!(delivered.len() <= 1, "seed {seed}: {delivered:?}");
    }
}

/// Dolev–Strong with a larger committee and t = 3: the relay chains grow to
/// t+1 signatures and agreement still holds with an equivocating sender.
#[test]
fn dolev_strong_long_chains() {
    let n = 9;
    let mut modes = vec![sync_ba::DsMode::Honest(7); n];
    modes[0] = sync_ba::DsMode::Equivocate(1, 2);
    let cfg = sync_ba::DsConfig::new(n, 3);
    let mut sim = Simulation::new(
        sync_ba::committee(&cfg, 5, &modes),
        Box::new(SynchronousNet::new(SimTime(10))),
        31,
    );
    sim.run_until(SimTime(1_000_000));
    let decisions: Vec<_> = (1..n)
        .map(|i| sim.node(NodeId(i)).decision().expect("terminated"))
        .collect();
    assert!(decisions.iter().all(|d| *d == decisions[0]), "agreement");
    // The equivocator's broadcast extracted ⊥ at every honest player.
    for i in 1..n {
        assert_eq!(sim.node(NodeId(i)).outputs().unwrap()[&NodeId(0)], None);
    }
}

/// pBFT at the broken bound: a committee misconfigured to f beyond
/// ⌊(n−1)/3⌋ with an equivocating primary and vote-all helpers *does*
/// split-brain — the 3t < n bound of Table 1 is tight in the mechanism,
/// not just the statement.
#[test]
fn pbft_split_brain_beyond_the_bound() {
    // n = 4 misconfigured to f = 2 (quorum n − f = 2, intersection 0):
    // the equivocating, vote-everything primary P0 hands {P1} a quorum for
    // block a and {P2, P3} a quorum for block b.
    let mut cfg = pbft::PbftConfig::new(4, 1);
    cfg.f = 2; // deliberately wrong: 3f = 6 ≥ n — quorums no longer intersect
    let modes = vec![
        pbft::PbftMode::EquivocatingPrimary,
        pbft::PbftMode::Honest,
        pbft::PbftMode::Honest,
        pbft::PbftMode::Honest,
    ];
    // The byzantine primary bridges a partition between the halves — the
    // classic split-brain schedule, legal in partial synchrony.
    let split_net = || {
        let mut net = PartitionedNet::new(Box::new(SynchronousNet::new(SimTime(10))));
        net.add_window(PartitionWindow::split_with_bridges(
            SimTime(0),
            SimTime(100_000),
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(3)]],
            vec![NodeId(0)],
        ));
        net
    };
    let (replicas, _) = pbft::committee(&cfg, 1, &modes);
    let mut sim = Simulation::new(replicas, Box::new(split_net()), 3);
    sim.run_until(SimTime(50_000));
    let d1 = sim.node(NodeId(1)).log();
    let d3 = sim.node(NodeId(3)).log();
    assert!(!d1.is_empty() && !d3.is_empty(), "both halves decided");
    assert_ne!(d1[0], d3[0], "split brain: the bound is tight");
    // The properly configured committee (f = 1, quorum 3) is immune to the
    // same attack and schedule.
    let cfg = pbft::PbftConfig::new(4, 1);
    let modes = vec![
        pbft::PbftMode::EquivocatingPrimary,
        pbft::PbftMode::Honest,
        pbft::PbftMode::Honest,
        pbft::PbftMode::Honest,
    ];
    let (replicas, _) = pbft::committee(&cfg, 1, &modes);
    let mut sim = Simulation::new(replicas, Box::new(split_net()), 3);
    sim.run_until(SimTime(50_000));
    let decided: Vec<Vec<Digest>> = (1..4).map(|i| sim.node(NodeId(i)).log()).collect();
    let first: BTreeSet<&Digest> = decided.iter().filter_map(|l| l.first()).collect();
    assert!(first.len() <= 1, "correct quorum never splits: {first:?}");
}
