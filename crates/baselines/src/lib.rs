//! Baseline protocols the paper compares against (Table 3) or cites as the
//! known bounds of Table 1 — every one runnable on the same simulation
//! kernel as pRFT, with the same message metering:
//!
//! * [`pbft`] — Practical BFT (Castro–Liskov), partially synchronous,
//!   `t < n/3`; with the `accountable` flag it becomes **Polygraph-style**
//!   accountable BFT (certificate cross-exchange + Proof-of-Fraud);
//! * [`hotstuff`] — leader-aggregated BFT with linear communication
//!   (Yin et al.), the low-cost non-accountable comparator;
//! * [`raft_lite`] — crash-fault-tolerant replication (Ongaro–Ousterhout
//!   essentials), the `CFT(c)`, `2c < n` column of Table 1;
//! * [`sync_ba`] — authenticated synchronous Byzantine agreement via
//!   Dolev–Strong broadcast, the `2t < n` synchronous column of Table 1;
//! * [`bracha`] — Bracha reliable broadcast, the `t < n/3` asynchronous
//!   column of Table 1;
//! * [`trap`] — the baiting game of Ranchal-Pedrosa & Gramoli's TRAP, at
//!   the level Theorem 3 analyses it (who baits, who forks, who pays).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bracha;
pub mod hotstuff;
pub mod pbft;
pub mod raft_lite;
pub mod sync_ba;
pub mod trap;
