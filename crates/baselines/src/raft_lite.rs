//! Raft-lite: crash-fault-tolerant replication — the `CFT(c)`, `2c < n`
//! column of Table 1 (Ongaro–Ousterhout essentials).
//!
//! Implements the parts that carry the bound: randomized election timeouts,
//! term-based leader election with majority votes, log replication with
//! majority commit, and the term/log-freshness vote rule. No snapshots, no
//! membership changes, no persistence — crash faults are modelled by the
//! simulation's crash switch, and the property under test is that committed
//! entries never diverge and progress requires a live majority.

use prft_sim::{Context, Node, SimTime, TimerId, WireMessage};
use prft_types::NodeId;
use std::collections::BTreeSet;

/// A replicated log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The term it was created in.
    pub term: u64,
    /// The command payload (opaque).
    pub command: u64,
}

/// Raft-lite wire messages.
#[derive(Debug, Clone)]
pub enum RaftMsg {
    /// Candidate → all.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Last log index of the candidate.
        last_index: usize,
        /// Last log term of the candidate.
        last_term: u64,
    },
    /// Voter → candidate.
    VoteGranted {
        /// The term the vote belongs to.
        term: u64,
    },
    /// Leader → all: heartbeat + replication.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry preceding `entries`.
        prev_index: usize,
        /// Term of the preceding entry.
        prev_term: u64,
        /// New entries (empty = heartbeat).
        entries: Vec<Entry>,
        /// Leader's commit index.
        leader_commit: usize,
    },
    /// Follower → leader.
    AppendAck {
        /// Follower's term.
        term: u64,
        /// Highest index now matching the leader's log, or `None` on
        /// mismatch.
        matched: Option<usize>,
    },
}

impl WireMessage for RaftMsg {
    fn kind(&self) -> &'static str {
        match self {
            RaftMsg::RequestVote { .. } => "RequestVote",
            RaftMsg::VoteGranted { .. } => "VoteGranted",
            RaftMsg::AppendEntries { .. } => "AppendEntries",
            RaftMsg::AppendAck { .. } => "AppendAck",
        }
    }

    fn wire_bytes(&self) -> usize {
        match self {
            RaftMsg::RequestVote { .. } => 24,
            RaftMsg::VoteGranted { .. } => 8,
            RaftMsg::AppendEntries { entries, .. } => 32 + entries.len() * 16,
            RaftMsg::AppendAck { .. } => 17,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// Cluster size.
    pub n: usize,
    /// Election timeout window `[min, 2·min)` (randomized per node).
    pub election_min: SimTime,
    /// Heartbeat interval (must be ≪ election timeout).
    pub heartbeat: SimTime,
    /// Commands to commit before the cluster goes quiet.
    pub max_commits: usize,
}

impl RaftConfig {
    /// Standard configuration.
    pub fn new(n: usize, max_commits: usize) -> Self {
        RaftConfig {
            n,
            election_min: SimTime(300),
            heartbeat: SimTime(60),
            max_commits,
        }
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }
}

/// One Raft-lite node.
pub struct RaftNode {
    cfg: RaftConfig,
    me: NodeId,
    role: Role,
    term: u64,
    voted_for: Option<NodeId>,
    votes: BTreeSet<NodeId>,
    log: Vec<Entry>,
    commit_index: usize,
    /// Leader bookkeeping: highest matched index per follower.
    match_index: Vec<usize>,
    next_command: u64,
    election_timer: Option<TimerId>,
    heartbeat_timer: Option<TimerId>,
}

impl RaftNode {
    /// Creates a node.
    pub fn new(cfg: RaftConfig, me: NodeId) -> Self {
        let n = cfg.n;
        RaftNode {
            cfg,
            me,
            role: Role::Follower,
            term: 0,
            voted_for: None,
            votes: BTreeSet::new(),
            log: Vec::new(),
            commit_index: 0,
            match_index: vec![0; n],
            next_command: 0,
            election_timer: None,
            heartbeat_timer: None,
        }
    }

    /// The committed prefix of the log.
    pub fn committed(&self) -> &[Entry] {
        &self.log[..self.commit_index]
    }

    /// The node's current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Whether this node currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    fn last(&self) -> (usize, u64) {
        (self.log.len(), self.log.last().map_or(0, |e| e.term))
    }

    fn reset_election_timer(&mut self, ctx: &mut Context<RaftMsg>) {
        if let Some(t) = self.election_timer.take() {
            ctx.cancel_timer(t);
        }
        let min = self.cfg.election_min.0;
        let delay = SimTime(ctx.rng().range(min, 2 * min - 1));
        self.election_timer = Some(ctx.set_timer(delay));
    }

    fn become_follower(&mut self, ctx: &mut Context<RaftMsg>, term: u64) {
        self.role = Role::Follower;
        self.term = term;
        self.voted_for = None;
        self.votes.clear();
        if let Some(t) = self.heartbeat_timer.take() {
            ctx.cancel_timer(t);
        }
        self.reset_election_timer(ctx);
    }

    fn start_election(&mut self, ctx: &mut Context<RaftMsg>) {
        self.role = Role::Candidate;
        self.term += 1;
        self.voted_for = Some(self.me);
        self.votes.clear();
        self.votes.insert(self.me);
        let (last_index, last_term) = self.last();
        ctx.broadcast_others(RaftMsg::RequestVote {
            term: self.term,
            last_index,
            last_term,
        });
        self.reset_election_timer(ctx);
    }

    fn become_leader(&mut self, ctx: &mut Context<RaftMsg>) {
        self.role = Role::Leader;
        self.match_index = vec![0; self.cfg.n];
        self.match_index[self.me.0] = self.log.len();
        if self.log.len() < self.cfg.max_commits {
            let command = (self.term << 16) | self.next_command;
            self.next_command += 1;
            let term = self.term;
            self.log.push(Entry { term, command });
            self.match_index[self.me.0] = self.log.len();
        }
        self.replicate(ctx);
        let hb = ctx.set_timer(self.cfg.heartbeat);
        self.heartbeat_timer = Some(hb);
    }

    fn replicate(&mut self, ctx: &mut Context<RaftMsg>) {
        // Simplified: always send the full suffix from each follower's
        // match index (logs are tiny in simulation).
        for i in 0..self.cfg.n {
            if i == self.me.0 {
                continue;
            }
            let from = self.match_index[i];
            let prev_term = if from == 0 {
                0
            } else {
                self.log[from - 1].term
            };
            ctx.send(
                NodeId(i),
                RaftMsg::AppendEntries {
                    term: self.term,
                    prev_index: from,
                    prev_term,
                    entries: self.log[from..].to_vec(),
                    leader_commit: self.commit_index,
                },
            );
        }
    }

    fn advance_commit(&mut self) {
        // Highest index replicated on a majority within the current term.
        for idx in (self.commit_index + 1..=self.log.len()).rev() {
            let replicated = 1
                + (0..self.cfg.n)
                    .filter(|&i| i != self.me.0 && self.match_index[i] >= idx)
                    .count();
            if replicated >= self.cfg.majority() && self.log[idx - 1].term == self.term {
                self.commit_index = idx;
                break;
            }
        }
    }
}

impl Node for RaftNode {
    type Msg = RaftMsg;

    fn on_start(&mut self, ctx: &mut Context<RaftMsg>) {
        self.reset_election_timer(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<RaftMsg>, from: NodeId, msg: RaftMsg) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_index,
                last_term,
            } => {
                if term > self.term {
                    self.become_follower(ctx, term);
                }
                let (my_index, my_term) = self.last();
                let up_to_date =
                    last_term > my_term || (last_term == my_term && last_index >= my_index);
                if term == self.term && self.voted_for.is_none() && up_to_date {
                    self.voted_for = Some(from);
                    self.reset_election_timer(ctx);
                    ctx.send(from, RaftMsg::VoteGranted { term });
                }
            }
            RaftMsg::VoteGranted { term } => {
                if self.role == Role::Candidate && term == self.term {
                    self.votes.insert(from);
                    if self.votes.len() >= self.cfg.majority() {
                        self.become_leader(ctx);
                    }
                }
            }
            RaftMsg::AppendEntries {
                term,
                prev_index,
                prev_term,
                entries,
                leader_commit,
            } => {
                if term < self.term {
                    return;
                }
                if term > self.term || self.role != Role::Follower {
                    self.become_follower(ctx, term);
                } else {
                    self.reset_election_timer(ctx);
                }
                let ok = prev_index == 0
                    || (prev_index <= self.log.len() && self.log[prev_index - 1].term == prev_term);
                if !ok {
                    ctx.send(
                        from,
                        RaftMsg::AppendAck {
                            term,
                            matched: None,
                        },
                    );
                    return;
                }
                self.log.truncate(prev_index);
                self.log.extend(entries);
                self.commit_index = leader_commit.min(self.log.len()).max(self.commit_index);
                ctx.send(
                    from,
                    RaftMsg::AppendAck {
                        term,
                        matched: Some(self.log.len()),
                    },
                );
            }
            RaftMsg::AppendAck { term, matched } => {
                if self.role != Role::Leader || term != self.term {
                    return;
                }
                match matched {
                    Some(idx) => {
                        self.match_index[from.0] = idx;
                        self.advance_commit();
                    }
                    None => {
                        self.match_index[from.0] = self.match_index[from.0].saturating_sub(1);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<RaftMsg>, timer: TimerId) {
        if Some(timer) == self.election_timer {
            self.election_timer = None;
            if self.role != Role::Leader {
                self.start_election(ctx);
            }
            return;
        }
        if Some(timer) == self.heartbeat_timer {
            self.heartbeat_timer = None;
            if self.role == Role::Leader {
                if self.commit_index >= self.cfg.max_commits {
                    return; // done: stop heartbeating so the run quiesces
                }
                if self.log.len() < self.cfg.max_commits && self.log.len() == self.commit_index {
                    let command = (self.term << 16) | self.next_command;
                    self.next_command += 1;
                    let term = self.term;
                    self.log.push(Entry { term, command });
                    self.match_index[self.me.0] = self.log.len();
                }
                self.replicate(ctx);
                let hb = ctx.set_timer(self.cfg.heartbeat);
                self.heartbeat_timer = Some(hb);
            }
        }
    }
}

/// Builds a Raft cluster.
pub fn cluster(cfg: &RaftConfig) -> Vec<RaftNode> {
    (0..cfg.n)
        .map(|i| RaftNode::new(cfg.clone(), NodeId(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_sim::Simulation;

    fn run(n: usize, commits: usize, crashes: &[usize], horizon: u64) -> Simulation<RaftNode> {
        let cfg = RaftConfig::new(n, commits);
        let mut sim = Simulation::new(
            cluster(&cfg),
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            17,
        );
        for &c in crashes {
            sim.crash(NodeId(c));
        }
        sim.run_until(SimTime(horizon));
        sim
    }

    fn committed_logs(sim: &Simulation<RaftNode>, skip: &[usize]) -> Vec<Vec<Entry>> {
        (0..sim.n())
            .filter(|i| !skip.contains(i))
            .map(|i| sim.node(NodeId(i)).committed().to_vec())
            .collect()
    }

    #[test]
    fn elects_leader_and_commits() {
        let sim = run(5, 3, &[], 1_000_000);
        let logs = committed_logs(&sim, &[]);
        assert!(logs.iter().any(|l| l.len() >= 3), "commands commit");
        for a in &logs {
            for b in &logs {
                let common = a.len().min(b.len());
                assert_eq!(&a[..common], &b[..common], "no committed divergence");
            }
        }
    }

    #[test]
    fn minority_crash_tolerated() {
        // 2c < n: two crashes of five leave a majority.
        let sim = run(5, 3, &[3, 4], 1_000_000);
        let logs = committed_logs(&sim, &[3, 4]);
        assert!(
            logs.iter().any(|l| l.len() >= 3),
            "live majority commits: {logs:?}"
        );
    }

    #[test]
    fn majority_crash_stalls() {
        // 2c ≥ n: three crashes of five kill the majority — no commits.
        let sim = run(5, 3, &[2, 3, 4], 300_000);
        let logs = committed_logs(&sim, &[2, 3, 4]);
        assert!(
            logs.iter().all(|l| l.is_empty()),
            "no majority, no commitment: {logs:?}"
        );
    }

    #[test]
    fn at_most_one_live_leader_per_term() {
        let sim = run(5, 2, &[], 1_000_000);
        let leaders: Vec<u64> = (0..5)
            .filter(|&i| sim.node(NodeId(i)).is_leader())
            .map(|i| sim.node(NodeId(i)).term())
            .collect();
        let mut sorted = leaders.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), leaders.len(), "one leader per term");
    }
}
