//! Bracha reliable broadcast — the `t < n/3` asynchronous column of
//! Table 1.
//!
//! The classic echo/ready protocol: on the sender's `Init`, broadcast
//! `Echo`; on `⌈(n+t+1)/2⌉` echoes (or `t+1` readys) for a value, broadcast
//! `Ready`; on `2t+1` readys, deliver. Works under full asynchrony with
//! `t < n/3`: all honest players deliver the same value or none do, and if
//! the sender is honest everyone delivers its value.

use prft_sim::{Context, Node, TimerId, WireMessage};
use prft_types::{Digest, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Bracha RBC wire messages (values are digests; one instance per run).
#[derive(Debug, Clone, Copy)]
pub enum BrachaMsg {
    /// Sender → all.
    Init(Digest),
    /// All → all, first response.
    Echo(Digest),
    /// All → all, amplification.
    Ready(Digest),
}

impl WireMessage for BrachaMsg {
    fn kind(&self) -> &'static str {
        match self {
            BrachaMsg::Init(_) => "Init",
            BrachaMsg::Echo(_) => "Echo",
            BrachaMsg::Ready(_) => "Ready",
        }
    }

    fn wire_bytes(&self) -> usize {
        33
    }
}

/// Node behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrachaMode {
    /// Follow the protocol (the designated sender broadcasts `value`).
    Honest,
    /// Byzantine sender: `Init` one value to the first half, another to the
    /// second half.
    EquivocatingSender(Digest, Digest),
    /// Byzantine: stay silent in every role.
    Silent,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct BrachaConfig {
    /// Committee size.
    pub n: usize,
    /// Fault bound.
    pub t: usize,
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's input (honest case).
    pub value: Digest,
}

impl BrachaConfig {
    /// Echo threshold `⌈(n + t + 1)/2⌉`.
    pub fn echo_quorum(&self) -> usize {
        (self.n + self.t + 1).div_ceil(2)
    }

    /// Ready amplification threshold `t + 1`.
    pub fn ready_amplify(&self) -> usize {
        self.t + 1
    }

    /// Delivery threshold `2t + 1`.
    pub fn deliver_quorum(&self) -> usize {
        2 * self.t + 1
    }
}

/// One Bracha RBC participant.
pub struct BrachaNode {
    cfg: BrachaConfig,
    me: NodeId,
    mode: BrachaMode,
    echoed: bool,
    readied: bool,
    echoes: BTreeMap<Digest, BTreeSet<NodeId>>,
    readys: BTreeMap<Digest, BTreeSet<NodeId>>,
    delivered: Option<Digest>,
}

impl BrachaNode {
    /// Creates a participant.
    pub fn new(cfg: BrachaConfig, me: NodeId, mode: BrachaMode) -> Self {
        BrachaNode {
            cfg,
            me,
            mode,
            echoed: false,
            readied: false,
            echoes: BTreeMap::new(),
            readys: BTreeMap::new(),
            delivered: None,
        }
    }

    /// The delivered value, if any.
    pub fn delivered(&self) -> Option<Digest> {
        self.delivered
    }

    fn maybe_ready(&mut self, ctx: &mut Context<BrachaMsg>, value: Digest) {
        if self.readied || self.mode == BrachaMode::Silent {
            return;
        }
        let echo_ok = self
            .echoes
            .get(&value)
            .is_some_and(|s| s.len() >= self.cfg.echo_quorum());
        let ready_ok = self
            .readys
            .get(&value)
            .is_some_and(|s| s.len() >= self.cfg.ready_amplify());
        if echo_ok || ready_ok {
            self.readied = true;
            ctx.broadcast(BrachaMsg::Ready(value));
        }
    }
}

impl Node for BrachaNode {
    type Msg = BrachaMsg;

    fn on_start(&mut self, ctx: &mut Context<BrachaMsg>) {
        if self.me != self.cfg.sender {
            return;
        }
        match self.mode {
            BrachaMode::Honest => ctx.broadcast(BrachaMsg::Init(self.cfg.value)),
            BrachaMode::EquivocatingSender(a, b) => {
                for i in 0..self.cfg.n {
                    let v = if i < self.cfg.n / 2 { a } else { b };
                    ctx.send(NodeId(i), BrachaMsg::Init(v));
                }
            }
            BrachaMode::Silent => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<BrachaMsg>, from: NodeId, msg: BrachaMsg) {
        if self.mode == BrachaMode::Silent {
            return;
        }
        match msg {
            BrachaMsg::Init(v) => {
                if from == self.cfg.sender && !self.echoed {
                    self.echoed = true;
                    ctx.broadcast(BrachaMsg::Echo(v));
                }
            }
            BrachaMsg::Echo(v) => {
                self.echoes.entry(v).or_default().insert(from);
                self.maybe_ready(ctx, v);
            }
            BrachaMsg::Ready(v) => {
                self.readys.entry(v).or_default().insert(from);
                self.maybe_ready(ctx, v);
                if self.delivered.is_none() && self.readys[&v].len() >= self.cfg.deliver_quorum() {
                    self.delivered = Some(v);
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<BrachaMsg>, _timer: TimerId) {}
}

/// Builds an RBC committee with one mode per node.
pub fn committee(cfg: &BrachaConfig, modes: &[BrachaMode]) -> Vec<BrachaNode> {
    assert_eq!(modes.len(), cfg.n);
    modes
        .iter()
        .enumerate()
        .map(|(i, &mode)| BrachaNode::new(cfg.clone(), NodeId(i), mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_net::AsynchronousNet;
    use prft_sim::{SimTime, Simulation};

    fn value(tag: u8) -> Digest {
        Digest::of_bytes(&[tag])
    }

    fn run(n: usize, t: usize, modes: Vec<BrachaMode>, seed: u64) -> Simulation<BrachaNode> {
        let cfg = BrachaConfig {
            n,
            t,
            sender: NodeId(0),
            value: value(7),
        };
        let mut sim = Simulation::new(
            committee(&cfg, &modes),
            Box::new(AsynchronousNet::new(SimTime(20), 0.3, SimTime(5_000))),
            seed,
        );
        sim.run_until(SimTime(10_000_000));
        sim
    }

    #[test]
    fn honest_sender_delivers_everywhere_under_asynchrony() {
        for seed in [1, 2, 3] {
            let sim = run(7, 2, vec![BrachaMode::Honest; 7], seed);
            for i in 0..7 {
                assert_eq!(
                    sim.node(NodeId(i)).delivered(),
                    Some(value(7)),
                    "seed {seed}, P{i}"
                );
            }
        }
    }

    #[test]
    fn silent_faults_within_t_tolerated() {
        let mut modes = vec![BrachaMode::Honest; 7];
        modes[5] = BrachaMode::Silent;
        modes[6] = BrachaMode::Silent;
        let sim = run(7, 2, modes, 4);
        for i in 0..5 {
            assert_eq!(sim.node(NodeId(i)).delivered(), Some(value(7)));
        }
    }

    #[test]
    fn equivocating_sender_never_splits_delivery() {
        for seed in [5, 6, 7, 8] {
            let mut modes = vec![BrachaMode::Honest; 7];
            modes[0] = BrachaMode::EquivocatingSender(value(1), value(2));
            let sim = run(7, 2, modes, seed);
            let delivered: BTreeSet<Digest> = (1..7)
                .filter_map(|i| sim.node(NodeId(i)).delivered())
                .collect();
            assert!(
                delivered.len() <= 1,
                "seed {seed}: consistency violated: {delivered:?}"
            );
        }
    }

    #[test]
    fn too_many_faults_stall_delivery() {
        // t_actual = 3 silent > t = 2 the protocol tolerates (n = 7):
        // the 2t+1 = 5 ready quorum needs 5 of the 4 live players.
        let mut modes = vec![BrachaMode::Honest; 7];
        for m in modes.iter_mut().take(7).skip(4) {
            *m = BrachaMode::Silent;
        }
        let sim = run(7, 2, modes, 9);
        for i in 0..4 {
            assert_eq!(sim.node(NodeId(i)).delivered(), None);
        }
    }

    #[test]
    fn thresholds_match_bracha() {
        let cfg = BrachaConfig {
            n: 7,
            t: 2,
            sender: NodeId(0),
            value: value(0),
        };
        assert_eq!(cfg.echo_quorum(), 5);
        assert_eq!(cfg.ready_amplify(), 3);
        assert_eq!(cfg.deliver_quorum(), 5);
    }
}
