//! Basic HotStuff (Yin et al., PODC'19): the linear-communication,
//! leader-aggregated comparator in Table 3.
//!
//! Per view: the leader broadcasts a proposal; replicas send votes *to the
//! leader only*; the leader aggregates a quorum certificate (2f+1
//! signatures) and broadcasts it to advance the phase. Four phases
//! (Prepare → PreCommit → Commit → Decide) give `O(n)` messages per
//! decision with `O(κ·n)` bytes per QC-carrying message — one factor of n
//! below pBFT in messages, two below the accountable protocols in bits.
//! No accountability: QCs prove agreement, not fraud.

use prft_crypto::{KeyRegistry, SecretKey, Signable, Signed, Slot, KAPPA};
use prft_sim::{Context, Node, SimTime, TimerId, WireMessage};
use prft_types::{Digest, Encoder, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// HotStuff's four phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HsPhase {
    /// Proposal + first vote round.
    Prepare,
    /// Locks the proposal.
    PreCommit,
    /// Commits the proposal.
    Commit,
    /// Executes.
    Decide,
}

impl HsPhase {
    fn slot_id(self) -> u8 {
        match self {
            HsPhase::Prepare => 0,
            HsPhase::PreCommit => 1,
            HsPhase::Commit => 2,
            HsPhase::Decide => 3,
        }
    }

    fn next(self) -> Option<HsPhase> {
        match self {
            HsPhase::Prepare => Some(HsPhase::PreCommit),
            HsPhase::PreCommit => Some(HsPhase::Commit),
            HsPhase::Commit => Some(HsPhase::Decide),
            HsPhase::Decide => None,
        }
    }
}

/// A vote: "`signer` endorses `value` in (`view`, `phase`)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HsVote {
    /// View number (one decision per view in basic HotStuff).
    pub view: u64,
    /// Phase.
    pub phase: HsPhase,
    /// Proposal digest.
    pub value: Digest,
}

impl Signable for HsVote {
    fn domain(&self) -> &'static str {
        "hotstuff/vote"
    }

    fn slot(&self) -> Slot {
        Slot {
            round: self.view,
            phase: self.phase.slot_id(),
        }
    }

    fn signable_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&self.value.0);
        e.into_bytes()
    }
}

/// A quorum certificate: 2f+1 votes on one (view, phase, value).
#[derive(Debug, Clone)]
pub struct Qc {
    /// The certified vote content.
    pub vote: HsVote,
    /// The 2f+1 signatures.
    pub sigs: Vec<Signed<HsVote>>,
}

const VOTE_BYTES: usize = 32 + 9 + KAPPA;

impl Qc {
    /// Validates the certificate.
    pub fn validate(&self, registry: &KeyRegistry, quorum: usize) -> bool {
        let mut signers = BTreeSet::new();
        for s in &self.sigs {
            if s.payload != self.vote || !s.verify(registry) {
                return false;
            }
            signers.insert(s.signer());
        }
        signers.len() >= quorum
    }

    fn wire_bytes(&self) -> usize {
        VOTE_BYTES * self.sigs.len()
    }
}

/// HotStuff wire messages.
#[derive(Debug, Clone)]
pub enum HsMsg {
    /// Leader → all: phase entry, carrying the justifying QC (absent only
    /// for the Prepare phase of view 0).
    Broadcast {
        /// The phase being entered.
        phase: HsPhase,
        /// View.
        view: u64,
        /// Proposal digest.
        value: Digest,
        /// Justifying QC from the previous phase.
        justify: Option<Qc>,
        /// Simulated payload (Prepare only).
        payload: usize,
    },
    /// Replica → leader.
    Vote {
        /// The signed vote.
        vote: Signed<HsVote>,
    },
    /// Pacemaker: next-view message on timeout (replica → next leader).
    NewView {
        /// The view being abandoned.
        view: u64,
        /// Signed marker vote.
        vote: Signed<HsVote>,
    },
}

impl WireMessage for HsMsg {
    fn kind(&self) -> &'static str {
        match self {
            HsMsg::Broadcast { .. } => "HsBroadcast",
            HsMsg::Vote { .. } => "HsVote",
            HsMsg::NewView { .. } => "HsNewView",
        }
    }

    fn wire_bytes(&self) -> usize {
        match self {
            HsMsg::Broadcast {
                justify, payload, ..
            } => 41 + justify.as_ref().map_or(0, Qc::wire_bytes) + payload,
            HsMsg::Vote { .. } => VOTE_BYTES,
            HsMsg::NewView { .. } => VOTE_BYTES,
        }
    }
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct HsConfig {
    /// Committee size.
    pub n: usize,
    /// Fault bound `f = ⌊(n−1)/3⌋`.
    pub f: usize,
    /// View timeout.
    pub timeout: SimTime,
    /// Views to decide before going passive.
    pub max_decides: u64,
    /// Proposal payload bytes.
    pub payload: usize,
}

impl HsConfig {
    /// Standard configuration.
    pub fn new(n: usize, max_decides: u64) -> Self {
        HsConfig {
            n,
            f: (n - 1) / 3,
            timeout: SimTime(600),
            max_decides,
            payload: 256,
        }
    }

    fn quorum(&self) -> usize {
        // n − f: the general BFT quorum (equals 2f+1 at n = 3f+1).
        self.n - self.f
    }
}

/// One HotStuff replica.
pub struct HsReplica {
    cfg: HsConfig,
    key: SecretKey,
    registry: KeyRegistry,

    view: u64,
    phase: HsPhase,
    value: Option<Digest>,
    decided: Vec<Digest>,
    passive: bool,
    timer: Option<(TimerId, u64)>,
    /// Leader-side vote aggregation: (phase → votes).
    tally: BTreeMap<u8, BTreeMap<NodeId, Signed<HsVote>>>,
    new_views: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Pacemaker bookkeeping.
    view_changes: u64,
}

impl HsReplica {
    /// Creates a replica.
    pub fn new(cfg: HsConfig, key: SecretKey, registry: KeyRegistry) -> Self {
        HsReplica {
            cfg,
            key,
            registry,
            view: 0,
            phase: HsPhase::Prepare,
            value: None,
            decided: Vec::new(),
            passive: false,
            timer: None,
            tally: BTreeMap::new(),
            new_views: BTreeMap::new(),
            view_changes: 0,
        }
    }

    /// The decided log.
    pub fn log(&self) -> &[Digest] {
        &self.decided
    }

    /// Number of pacemaker view changes.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    fn id(&self) -> NodeId {
        self.key.signer()
    }

    fn leader(&self, view: u64) -> NodeId {
        NodeId((view % self.cfg.n as u64) as usize)
    }

    fn start_view(&mut self, ctx: &mut Context<HsMsg>) {
        if self.decided.len() as u64 >= self.cfg.max_decides {
            self.passive = true;
            self.timer = None;
            return;
        }
        self.phase = HsPhase::Prepare;
        self.value = None;
        self.tally.clear();
        let id = ctx.set_timer(self.cfg.timeout);
        self.timer = Some((id, self.view));
        if self.leader(self.view) == self.id() {
            let value =
                Digest::of_bytes(&[b"hs-block".as_slice(), &self.view.to_le_bytes()].concat());
            ctx.broadcast(HsMsg::Broadcast {
                phase: HsPhase::Prepare,
                view: self.view,
                value,
                justify: None,
                payload: self.cfg.payload,
            });
        }
    }

    fn on_broadcast(
        &mut self,
        ctx: &mut Context<HsMsg>,
        phase: HsPhase,
        view: u64,
        value: Digest,
        justify: Option<Qc>,
    ) {
        if view != self.view || self.passive {
            return;
        }
        // Prepare needs no QC (simplified: no locking across views); later
        // phases must carry a valid QC for the previous phase.
        if phase != HsPhase::Prepare {
            let Some(qc) = justify else { return };
            let expect_prev = match phase {
                HsPhase::PreCommit => HsPhase::Prepare,
                HsPhase::Commit => HsPhase::PreCommit,
                HsPhase::Decide => HsPhase::Commit,
                HsPhase::Prepare => unreachable!(),
            };
            if qc.vote.phase != expect_prev
                || qc.vote.view != view
                || qc.vote.value != value
                || !qc.validate(&self.registry, self.cfg.quorum())
            {
                return;
            }
        }
        self.phase = phase;
        self.value = Some(value);
        if phase == HsPhase::Decide {
            self.decided.push(value);
            self.view += 1;
            self.start_view(ctx);
            return;
        }
        // Vote to the leader.
        let vote = Signed::sign(HsVote { view, phase, value }, &self.key);
        ctx.send(self.leader(view), HsMsg::Vote { vote });
    }

    fn on_vote(&mut self, ctx: &mut Context<HsMsg>, vote: Signed<HsVote>) {
        // Leader-side aggregation.
        if self.passive
            || vote.payload.view != self.view
            || self.leader(self.view) != self.id()
            || !vote.verify(&self.registry)
        {
            return;
        }
        let phase = vote.payload.phase;
        let value = vote.payload.value;
        let entry = self.tally.entry(phase.slot_id()).or_default();
        entry.insert(vote.signer(), vote);
        if entry.len() == self.cfg.quorum() {
            let sigs: Vec<Signed<HsVote>> = entry.values().cloned().collect();
            let qc = Qc {
                vote: HsVote {
                    view: self.view,
                    phase,
                    value,
                },
                sigs,
            };
            if let Some(next) = phase.next() {
                ctx.broadcast(HsMsg::Broadcast {
                    phase: next,
                    view: self.view,
                    value,
                    justify: Some(qc),
                    payload: 0,
                });
            }
        }
    }

    fn on_new_view(&mut self, ctx: &mut Context<HsMsg>, view: u64, vote: Signed<HsVote>) {
        if self.passive || view < self.view || !vote.verify(&self.registry) {
            return;
        }
        let entry = self.new_views.entry(view).or_default();
        entry.insert(vote.signer());
        if entry.len() >= self.cfg.quorum() && view >= self.view {
            self.view = view + 1;
            self.view_changes += 1;
            self.start_view(ctx);
        }
    }
}

impl Node for HsReplica {
    type Msg = HsMsg;

    fn on_start(&mut self, ctx: &mut Context<HsMsg>) {
        self.start_view(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<HsMsg>, _from: NodeId, msg: HsMsg) {
        match msg {
            HsMsg::Broadcast {
                phase,
                view,
                value,
                justify,
                ..
            } => self.on_broadcast(ctx, phase, view, value, justify),
            HsMsg::Vote { vote } => self.on_vote(ctx, vote),
            HsMsg::NewView { view, vote } => self.on_new_view(ctx, view, vote),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<HsMsg>, timer: TimerId) {
        if self.passive {
            return;
        }
        let Some((id, view)) = self.timer else { return };
        if id != timer || view != self.view {
            return;
        }
        // Pacemaker: tell everyone (suffices to tell all, cost O(n)) that we
        // want the next view.
        let vote = Signed::sign(
            HsVote {
                view: self.view,
                phase: HsPhase::Decide,
                value: Digest::ZERO,
            },
            &self.key,
        );
        ctx.broadcast(HsMsg::NewView {
            view: self.view,
            vote,
        });
        let tid = ctx.set_timer(self.cfg.timeout);
        self.timer = Some((tid, self.view));
    }
}

/// Builds a HotStuff committee.
pub fn committee(cfg: &HsConfig, seed: u64) -> Vec<HsReplica> {
    let (registry, keys) = KeyRegistry::trusted_setup(cfg.n, seed);
    keys.into_iter()
        .map(|key| HsReplica::new(cfg.clone(), key, registry.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_sim::Simulation;

    fn run(n: usize, decides: u64) -> Simulation<HsReplica> {
        let cfg = HsConfig::new(n, decides);
        let mut sim = Simulation::new(
            committee(&cfg, 11),
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            5,
        );
        sim.run_until(SimTime(1_000_000));
        sim
    }

    #[test]
    fn decides_in_agreement() {
        let sim = run(7, 4);
        let logs: Vec<Vec<Digest>> = (0..7).map(|i| sim.node(NodeId(i)).log().to_vec()).collect();
        assert!(logs.iter().all(|l| l.len() == 4));
        assert!(logs.iter().all(|l| *l == logs[0]));
    }

    #[test]
    fn crashed_leader_is_paced_over() {
        let cfg = HsConfig::new(7, 3);
        let mut sim = Simulation::new(
            committee(&cfg, 11),
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            5,
        );
        sim.crash(NodeId(0));
        sim.run_until(SimTime(1_000_000));
        let node = sim.node(NodeId(1));
        assert!(node.view_changes() > 0);
        assert_eq!(node.log().len(), 3);
    }

    #[test]
    fn linear_message_complexity() {
        let per_decide = |n: usize| {
            let sim = run(n, 4);
            sim.meter().total_messages() as f64 / 4.0
        };
        let m8 = per_decide(8);
        let m16 = per_decide(16);
        let ratio = m16 / m8;
        assert!(
            (1.5..3.0).contains(&ratio),
            "O(n) messages: doubling n ≈ 2× (got {ratio})"
        );
    }

    #[test]
    fn qc_validation_rejects_forgeries() {
        let (registry, keys) = KeyRegistry::trusted_setup(4, 1);
        let vote = HsVote {
            view: 1,
            phase: HsPhase::Prepare,
            value: Digest::of_bytes(b"v"),
        };
        let sigs: Vec<Signed<HsVote>> =
            keys.iter().take(3).map(|k| Signed::sign(vote, k)).collect();
        let qc = Qc { vote, sigs };
        assert!(qc.validate(&registry, 3));
        assert!(!qc.validate(&registry, 4));
        let mut bad = qc.clone();
        bad.vote.value = Digest::of_bytes(b"other");
        assert!(!bad.validate(&registry, 3), "sigs don't match the content");
    }

    #[test]
    fn hotstuff_is_cheaper_than_pbft_in_bytes() {
        use crate::pbft;
        let hs = run(8, 3);
        let cfg = pbft::PbftConfig::new(8, 3);
        let (replicas, _) = pbft::committee(&cfg, 1, &[pbft::PbftMode::Honest; 8]);
        let mut psim = Simulation::new(
            replicas,
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            5,
        );
        psim.run_until(SimTime(1_000_000));
        assert!(
            hs.meter().total_bytes() < psim.meter().total_bytes(),
            "Table 3 ranking: HotStuff < pBFT in bits"
        );
        assert!(
            hs.meter().total_messages() < psim.meter().total_messages(),
            "and in messages"
        );
    }
}
