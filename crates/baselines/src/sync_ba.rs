//! Authenticated synchronous Byzantine agreement via Dolev–Strong
//! broadcast — the `2t < n` synchronous BFT column of Table 1.
//!
//! Each player Dolev–Strong-broadcasts its input: lock-step rounds of a
//! known duration; a value is accepted in round `r` only with `r` distinct
//! signatures (chained relays), for `t + 1` rounds. A broadcast *extracts*
//! exactly one value at every honest player or `⊥` at all of them —
//! unforgeable signatures make equivocation self-defeating. Consensus then
//! outputs the majority over the `n` extracted values, which is correct
//! for `t < n/2` (honest majority) and demonstrably wrong beyond.

use prft_crypto::{KeyRegistry, SecretKey, Signable, Signed, Slot, KAPPA};
use prft_sim::{Context, Node, SimTime, TimerId, WireMessage};
use prft_types::{Digest, Encoder, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// The signed content of a Dolev–Strong relay: broadcast instance (the
/// originating sender) and the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DsValue {
    /// The broadcast instance = the original sender.
    pub origin: NodeId,
    /// The broadcast value.
    pub value: Digest,
}

impl Signable for DsValue {
    fn domain(&self) -> &'static str {
        "dolev-strong/value"
    }

    fn slot(&self) -> Slot {
        Slot {
            round: self.origin.0 as u64,
            phase: 0,
        }
    }

    fn signable_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&self.value.0);
        e.into_bytes()
    }
}

/// A relay message: the value plus its signature chain.
#[derive(Debug, Clone)]
pub struct DsMsg {
    /// The signed content (all signatures are over the same content).
    pub content: DsValue,
    /// The chain: first signature must be the origin's.
    pub sigs: Vec<Signed<DsValue>>,
}

impl WireMessage for DsMsg {
    fn kind(&self) -> &'static str {
        "DsRelay"
    }

    fn wire_bytes(&self) -> usize {
        40 + self.sigs.len() * KAPPA
    }
}

/// Per-node behaviour for boundary experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsMode {
    /// Follow the protocol; broadcast the given input value tag.
    Honest(u8),
    /// Equivocate: send tag `a` to the first half, tag `b` to the rest.
    Equivocate(u8, u8),
    /// Send nothing as sender; relay honestly.
    SilentSender,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct DsConfig {
    /// Committee size.
    pub n: usize,
    /// Fault bound `t` (protocol runs `t + 1` rounds).
    pub t: usize,
    /// Lock-step round duration (must exceed the network bound Δ).
    pub round_len: SimTime,
}

impl DsConfig {
    /// Standard configuration.
    pub fn new(n: usize, t: usize) -> Self {
        DsConfig {
            n,
            t,
            round_len: SimTime(50),
        }
    }
}

/// One player running `n` parallel Dolev–Strong broadcasts + majority vote.
pub struct DsNode {
    cfg: DsConfig,
    key: SecretKey,
    registry: KeyRegistry,
    mode: DsMode,
    round: usize,
    /// Extracted values per origin.
    extracted: BTreeMap<NodeId, BTreeSet<Digest>>,
    /// Messages received this round, processed at the next boundary.
    inbox: Vec<DsMsg>,
    /// Final per-origin outputs (None = ⊥).
    outputs: Option<BTreeMap<NodeId, Option<Digest>>>,
    decision: Option<Option<Digest>>,
}

impl DsNode {
    /// Creates a node.
    pub fn new(cfg: DsConfig, key: SecretKey, registry: KeyRegistry, mode: DsMode) -> Self {
        DsNode {
            cfg,
            key,
            registry,
            mode,
            round: 0,
            extracted: BTreeMap::new(),
            inbox: Vec::new(),
            outputs: None,
            decision: None,
        }
    }

    /// The consensus decision: `Some(Some(v))` once decided, `Some(None)`
    /// for ⊥, `None` while running.
    pub fn decision(&self) -> Option<Option<Digest>> {
        self.decision
    }

    /// Per-origin broadcast outputs after termination.
    pub fn outputs(&self) -> Option<&BTreeMap<NodeId, Option<Digest>>> {
        self.outputs.as_ref()
    }

    fn id(&self) -> NodeId {
        self.key.signer()
    }

    fn tagged(&self, tag: u8) -> Digest {
        Digest::of_bytes(&[b"ds-input".as_slice(), &[tag]].concat())
    }

    fn send_initial(&mut self, ctx: &mut Context<DsMsg>) {
        let make = |key: &SecretKey, origin: NodeId, value: Digest| {
            let content = DsValue { origin, value };
            DsMsg {
                content,
                sigs: vec![Signed::sign(content, key)],
            }
        };
        match self.mode {
            DsMode::Honest(tag) => {
                let v = self.tagged(tag);
                ctx.broadcast(make(&self.key, self.id(), v));
            }
            DsMode::Equivocate(a, b) => {
                let va = self.tagged(a);
                let vb = self.tagged(b);
                let ma = make(&self.key, self.id(), va);
                let mb = make(&self.key, self.id(), vb);
                for i in 0..self.cfg.n {
                    let msg = if i < self.cfg.n / 2 {
                        ma.clone()
                    } else {
                        mb.clone()
                    };
                    ctx.send(NodeId(i), msg);
                }
            }
            DsMode::SilentSender => {}
        }
    }

    fn valid_chain(&self, msg: &DsMsg, round: usize) -> bool {
        if msg.sigs.is_empty() || msg.sigs.len() < round {
            return false;
        }
        let mut signers = BTreeSet::new();
        for s in &msg.sigs {
            if s.payload != msg.content || !s.verify(&self.registry) {
                return false;
            }
            signers.insert(s.signer());
        }
        // Distinct signers, the first being the origin.
        signers.len() == msg.sigs.len() && msg.sigs[0].signer() == msg.content.origin
    }

    fn process_round(&mut self, ctx: &mut Context<DsMsg>) {
        let round = self.round;
        let inbox = std::mem::take(&mut self.inbox);
        for msg in inbox {
            if !self.valid_chain(&msg, round) {
                continue;
            }
            let set = self.extracted.entry(msg.content.origin).or_default();
            if !set.insert(msg.content.value) {
                continue; // already extracted
            }
            // Relay with our signature appended (rounds 1..=t only).
            if round <= self.cfg.t && !msg.sigs.iter().any(|s| s.signer() == self.id()) {
                let mut sigs = msg.sigs.clone();
                sigs.push(Signed::sign(msg.content, &self.key));
                ctx.broadcast(DsMsg {
                    content: msg.content,
                    sigs,
                });
            }
        }
    }

    fn decide(&mut self) {
        let mut outputs = BTreeMap::new();
        for i in 0..self.cfg.n {
            let origin = NodeId(i);
            let out = match self.extracted.get(&origin) {
                Some(set) if set.len() == 1 => Some(*set.iter().next().expect("len 1")),
                _ => None, // none or equivocation ⇒ ⊥
            };
            outputs.insert(origin, out);
        }
        // Majority over non-⊥ outputs.
        let mut tally: BTreeMap<Digest, usize> = BTreeMap::new();
        for out in outputs.values().flatten() {
            *tally.entry(*out).or_default() += 1;
        }
        let decision = tally
            .iter()
            .max_by_key(|(d, c)| (**c, std::cmp::Reverse(**d)))
            .filter(|(_, &c)| 2 * c > self.cfg.n)
            .map(|(d, _)| *d);
        self.outputs = Some(outputs);
        self.decision = Some(decision);
    }
}

impl Node for DsNode {
    type Msg = DsMsg;

    fn on_start(&mut self, ctx: &mut Context<DsMsg>) {
        self.send_initial(ctx);
        ctx.set_timer(self.cfg.round_len);
    }

    fn on_message(&mut self, _ctx: &mut Context<DsMsg>, _from: NodeId, msg: DsMsg) {
        if self.decision.is_none() {
            self.inbox.push(msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<DsMsg>, _timer: TimerId) {
        self.round += 1;
        self.process_round(ctx);
        if self.round > self.cfg.t + 1 {
            self.decide();
        } else {
            ctx.set_timer(self.cfg.round_len);
        }
    }
}

/// Builds a committee with the given modes.
pub fn committee(cfg: &DsConfig, seed: u64, modes: &[DsMode]) -> Vec<DsNode> {
    assert_eq!(modes.len(), cfg.n);
    let (registry, keys) = KeyRegistry::trusted_setup(cfg.n, seed);
    keys.into_iter()
        .zip(modes)
        .map(|(key, &mode)| DsNode::new(cfg.clone(), key, registry.clone(), mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_sim::Simulation;

    fn run(n: usize, t: usize, modes: Vec<DsMode>) -> Simulation<DsNode> {
        let cfg = DsConfig::new(n, t);
        let mut sim = Simulation::new(
            committee(&cfg, 5, &modes),
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            23,
        );
        sim.run_until(SimTime(1_000_000));
        sim
    }

    fn decisions(sim: &Simulation<DsNode>, honest: &[usize]) -> Vec<Option<Digest>> {
        honest
            .iter()
            .map(|&i| sim.node(NodeId(i)).decision().expect("terminated"))
            .collect()
    }

    #[test]
    fn all_honest_same_input_agree_on_it() {
        let sim = run(5, 1, vec![DsMode::Honest(7); 5]);
        let ds = decisions(&sim, &[0, 1, 2, 3, 4]);
        assert!(ds.iter().all(|d| d.is_some()));
        assert!(ds.iter().all(|d| *d == ds[0]), "validity + agreement");
    }

    #[test]
    fn equivocating_sender_extracts_bottom_everywhere() {
        // One equivocator among five, t = 1 honest majority intact.
        let mut modes = vec![DsMode::Honest(7); 5];
        modes[0] = DsMode::Equivocate(1, 2);
        let sim = run(5, 1, modes);
        for i in 1..5 {
            let outputs = sim.node(NodeId(i)).outputs().unwrap();
            assert_eq!(outputs[&NodeId(0)], None, "equivocation ⇒ ⊥ at P{i}");
        }
        let ds = decisions(&sim, &[1, 2, 3, 4]);
        assert!(ds.iter().all(|d| *d == ds[0]), "agreement survives");
        assert_eq!(
            ds[0],
            Some(Digest::of_bytes(&[b"ds-input".as_slice(), &[7]].concat()))
        );
    }

    #[test]
    fn silent_senders_within_t_under_half_keep_majority() {
        // n = 5, two silent byzantine senders (t = 2 < n/2): honest majority
        // still carries the honest value.
        let mut modes = vec![DsMode::Honest(7); 5];
        modes[3] = DsMode::SilentSender;
        modes[4] = DsMode::SilentSender;
        let sim = run(5, 2, modes);
        let ds = decisions(&sim, &[0, 1, 2]);
        assert!(ds.iter().all(|d| d.is_some()));
        assert!(ds.iter().all(|d| *d == ds[0]));
    }

    #[test]
    fn byzantine_majority_flips_the_outcome() {
        // n = 5, t = 3 ≥ n/2: three byzantine senders input a different
        // value and the majority vote follows them — the 2t < n bound is
        // tight.
        let honest_val = Digest::of_bytes(&[b"ds-input".as_slice(), &[7]].concat());
        let byz_val = Digest::of_bytes(&[b"ds-input".as_slice(), &[9]].concat());
        let mut modes = vec![DsMode::Honest(7); 5];
        for m in modes.iter_mut().take(5).skip(2) {
            *m = DsMode::Honest(9); // byzantine here = coordinated wrong input
        }
        let sim = run(5, 3, modes);
        let ds = decisions(&sim, &[0, 1]);
        assert!(
            ds.iter().all(|d| *d == Some(byz_val)),
            "validity broken: {ds:?}"
        );
        assert_ne!(ds[0], Some(honest_val));
    }

    #[test]
    fn signature_chains_reject_forgery() {
        let (registry, keys) = KeyRegistry::trusted_setup(3, 1);
        let cfg = DsConfig::new(3, 1);
        let node = DsNode::new(cfg, keys[1].clone(), registry, DsMode::Honest(0));
        let content = DsValue {
            origin: NodeId(0),
            value: Digest::of_bytes(b"v"),
        };
        let good = DsMsg {
            content,
            sigs: vec![Signed::sign(content, &keys[0])],
        };
        assert!(node.valid_chain(&good, 1));
        // Chain not starting with the origin's signature.
        let bad = DsMsg {
            content,
            sigs: vec![Signed::sign(content, &keys[2])],
        };
        assert!(!node.valid_chain(&bad, 1));
        // Too-short chain for the round.
        assert!(!node.valid_chain(&good, 2));
    }
}
