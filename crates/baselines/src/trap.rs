//! The TRAP baiting game (Ranchal-Pedrosa & Gramoli, AsiaCCS'22), at the
//! level Theorem 3 analyses it.
//!
//! TRAP overlays a baiting mechanism on a BFT core: a rational member of a
//! forking collusion may defect and submit Proof-of-Fraud ("bait") for a
//! reward `R`; if enough members bait, the fork is averted and the
//! deviators are slashed. The paper's Theorem 3 shows the mechanism has a
//! second Nash equilibrium — everybody forks — that Pareto-dominates
//! baiting for the rational players whenever `k > 2 + t0 − t`, because a
//! *unilateral* bait cannot avert the fork once
//! `m > t0 + k + t − n/2` baiters would be needed.
//!
//! [`TrapGame::play`] resolves one round of that game for a strategy
//! profile; combined with `prft_game::EmpiricalGame` it enumerates the
//! equilibria the theorem talks about.

use prft_game::{analytic, SystemState, UtilityParams};

/// A rational collusion member's choice in the TRAP game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapStrategy {
    /// Join the fork (`π_fork`).
    Fork,
    /// Defect and submit Proof-of-Fraud (`π_bait`).
    Bait,
    /// Leave the collusion and follow the protocol (`π_0`).
    Honest,
}

/// Outcome of one round of the game.
#[derive(Debug, Clone)]
pub struct TrapOutcome {
    /// The resulting system state.
    pub state: SystemState,
    /// Utility per rational player (aligned with the strategy profile).
    pub utilities: Vec<f64>,
    /// Whether the forking players were slashed.
    pub slashed: bool,
}

/// The TRAP game parameters.
#[derive(Debug, Clone)]
pub struct TrapGame {
    /// Committee size.
    pub n: usize,
    /// TRAP's byzantine bound `t0 = ⌈n/3⌉ − 1`.
    pub t0: usize,
    /// Actual byzantine count (always fork).
    pub t: usize,
    /// Rational collusion size.
    pub k: usize,
    /// Economic parameters (`R`, `G`, `L`, α, δ).
    pub params: UtilityParams,
}

impl TrapGame {
    /// Standard TRAP parameterization for `n` players.
    pub fn new(n: usize, t: usize, k: usize, params: UtilityParams) -> Self {
        TrapGame {
            n,
            t0: n.div_ceil(3) - 1,
            t,
            k,
            params,
        }
    }

    /// Whether the fork physically succeeds given `forkers` rational
    /// players forking: the byzantine + forking colluders must hand *both*
    /// halves of the remaining players a quorum `n − t0`.
    pub fn fork_succeeds(&self, forkers: usize) -> bool {
        let attackers = self.t + forkers;
        let others = self.n - attackers;
        let side = others / 2;
        side + attackers >= self.n - self.t0
    }

    /// Resolves the game for a strategy profile (one entry per rational
    /// collusion member).
    ///
    /// # Panics
    /// Panics if the profile length differs from `k`.
    pub fn play(&self, profile: &[TrapStrategy]) -> TrapOutcome {
        assert_eq!(profile.len(), self.k, "one strategy per rational player");
        let forkers = profile.iter().filter(|s| **s == TrapStrategy::Fork).count();
        let baiters = profile.iter().filter(|s| **s == TrapStrategy::Bait).count();

        let fork_attempted = forkers > 0 || self.t > 0;
        let forked = fork_attempted && self.fork_succeeds(forkers);

        // A successful bait requires an actual fork attempt to produce the
        // conflicting signatures, and enough baiters that the remaining
        // collusion loses its double quorum.
        let averted = fork_attempted && !forked;
        let slashed = averted && baiters > 0;

        let state = if forked {
            SystemState::Fork
        } else {
            SystemState::HonestExecution
        };

        let utilities = profile
            .iter()
            .map(|s| match (s, forked) {
                // Fork pays the collusion's gain, split among colluders.
                (TrapStrategy::Fork, true) => self.params.gain_g / forkers as f64,
                // A caught forker is slashed.
                (TrapStrategy::Fork, false) => {
                    if slashed {
                        -self.params.penalty_l
                    } else {
                        0.0
                    }
                }
                // Baiters get nothing if the fork happened anyway…
                (TrapStrategy::Bait, true) => 0.0,
                // …and share the reward in expectation if it was averted.
                (TrapStrategy::Bait, false) => {
                    if slashed {
                        self.params.reward_r / baiters as f64
                    } else {
                        0.0
                    }
                }
                (TrapStrategy::Honest, _) => 0.0,
            })
            .collect();

        TrapOutcome {
            state,
            utilities,
            slashed,
        }
    }

    /// The minimum baiters needed to avert the fork (Theorem 3's bound
    /// `m > t0 + k + t − n/2`).
    pub fn min_baiters(&self) -> f64 {
        analytic::trap_min_baiters(self.n, self.t0, self.k, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_game::EmpiricalGame;

    /// Theorem 3's regime: n = 20, t0 = 6, t = 6, k = 3 — inside TRAP's
    /// advertised tolerance (3t < n, 2(k+t) < n) with k > 2 + t0 − t.
    fn game() -> TrapGame {
        let params = UtilityParams {
            gain_g: 8.0,
            reward_r: 2.0,
            penalty_l: 10.0,
            ..UtilityParams::default()
        };
        let g = TrapGame::new(20, 6, 3, params);
        assert!(analytic::trap_tolerates(g.n, g.k, g.t));
        assert!(analytic::trap_fork_is_nash(g.k, g.t, g.t0));
        g
    }

    #[test]
    fn all_fork_succeeds_in_the_regime() {
        let g = game();
        let out = g.play(&[TrapStrategy::Fork; 3]);
        assert_eq!(out.state, SystemState::Fork);
        assert!(!out.slashed);
        for u in out.utilities {
            assert!((u - 8.0 / 3.0).abs() < 1e-12, "G/k each");
        }
    }

    #[test]
    fn unilateral_bait_cannot_avert() {
        let g = game();
        assert!(g.min_baiters() > 1.0, "m > {}", g.min_baiters());
        let out = g.play(&[TrapStrategy::Bait, TrapStrategy::Fork, TrapStrategy::Fork]);
        assert_eq!(out.state, SystemState::Fork, "fork survives one defection");
        assert_eq!(out.utilities[0], 0.0, "the baiter walks away with nothing");
        assert!(out.utilities[1] > 0.0);
    }

    #[test]
    fn mass_baiting_averts_and_slashes() {
        let g = game();
        let out = g.play(&[TrapStrategy::Bait, TrapStrategy::Bait, TrapStrategy::Bait]);
        assert_eq!(out.state, SystemState::HonestExecution);
        assert!(out.slashed);
        for u in out.utilities {
            assert!((u - 2.0 / 3.0).abs() < 1e-12, "R/m each");
        }
    }

    #[test]
    fn theorem_3_both_equilibria_exist_and_fork_is_focal() {
        let g = game();
        // Strategy space per rational player: 0 = Fork, 1 = Bait.
        let strategies = [TrapStrategy::Fork, TrapStrategy::Bait];
        let eg = EmpiricalGame::explore(vec![2; g.k], |profile| {
            let chosen: Vec<TrapStrategy> = profile.iter().map(|&i| strategies[i]).collect();
            g.play(&chosen).utilities
        });
        let ne = eg.nash_equilibria(1e-9);
        let all_fork = vec![0usize; g.k];
        let all_bait = vec![1usize; g.k];
        assert!(ne.contains(&all_fork), "π_fork is a NE (Theorem 3)");
        assert!(ne.contains(&all_bait), "TRAP's secure NE also exists");
        // The fork NE Pareto-dominates for the rational players: G/k > R/k.
        let players: Vec<usize> = (0..g.k).collect();
        assert!(eg.pareto_dominates_for(&all_fork, &all_bait, &players));
        let focal = eg.focal_among(&ne, &players).unwrap();
        assert_eq!(focal, &all_fork, "the insecure equilibrium is focal");
    }

    #[test]
    fn outside_the_regime_bait_dominates() {
        // Small collusion: k = 1, t = 0 in n = 10 — a single forker cannot
        // double-quorum, so forking only invites the slash.
        let g = TrapGame::new(10, 0, 1, UtilityParams::default());
        assert!(!analytic::trap_fork_is_nash(g.k, g.t, g.t0));
        let fork = g.play(&[TrapStrategy::Fork]);
        assert_eq!(fork.state, SystemState::HonestExecution);
        let bait = g.play(&[TrapStrategy::Bait]);
        // Nothing to bait (no fork materializes), but forking alone yields
        // zero too — and with any baiter present it would be slashed.
        assert!(bait.utilities[0] >= fork.utilities[0]);
    }

    #[test]
    #[should_panic(expected = "one strategy per rational player")]
    fn wrong_arity_panics() {
        game().play(&[TrapStrategy::Fork]);
    }
}
